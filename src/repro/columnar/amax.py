"""The AMAX layout (AsterixDB Mega Attributes Across), §4.3 and §4.5.2.

A mega leaf node spans multiple physical pages:

* **Page 0** stores the leaf header (tuple count, column count), a fixed-size
  min/max prefix pair per column, a directory of the megapages' extents, and
  the encoded primary keys.  ``COUNT(*)`` queries and reconciliation touch only
  Page 0, which is where the layout's order-of-magnitude scan wins come from.
* **Megapages** — one per column — hold the column's encoded definition levels
  and values and may span several physical pages.  Megapages are written from
  the largest column to the smallest; a smaller column may share the last
  physical page of the previous column unless the remaining space is within
  the ``empty-page tolerance``, in which case the space is left empty so the
  column starts on a fresh page (fewer pages to read per column).

The number of records per mega leaf is capped (15,000 by default in the paper)
to keep point lookups over Page 0 tractable (§4.5.2).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from ..core.columns import ShreddedColumn
from ..core.schema import ColumnInfo, Schema
from ..encoding import get_codec
from ..encoding.varint import decode_uvarint, encode_uvarint
from ..model.errors import StorageError
from ..lsm.component import ComponentMetadata, write_component_footer
from .base import ColumnarComponent, ColumnarComponentBuilder, ColumnGroup
from .common import (
    PREFIX_LENGTH,
    compute_min_max,
    decode_column_chunk,
    decode_keys,
    encode_column_chunk,
    encode_keys,
    prefix_range_may_overlap,
    value_prefix,
)

LAYOUT_NAME = "amax"

#: Extent of one megapage slice: (physical page id, offset in page, length).
Extent = Tuple[int, int, int]


def _encode_page_zero(
    record_count: int,
    directory: Dict[int, List[Extent]],
    prefixes: Dict[int, Tuple[bytes, bytes]],
    keys_payload: bytes,
) -> bytes:
    out = bytearray()
    encode_uvarint(record_count, out)
    encode_uvarint(len(directory), out)
    for column_id in sorted(directory):
        encode_uvarint(column_id, out)
        min_prefix, max_prefix = prefixes.get(
            column_id, (b"\x00" * PREFIX_LENGTH, b"\x00" * PREFIX_LENGTH)
        )
        out.extend(min_prefix)
        out.extend(max_prefix)
        extents = directory[column_id]
        encode_uvarint(len(extents), out)
        for page_id, offset, length in extents:
            encode_uvarint(page_id, out)
            encode_uvarint(offset, out)
            encode_uvarint(length, out)
    encode_uvarint(len(keys_payload), out)
    out.extend(keys_payload)
    return bytes(out)


def _decode_page_zero(data: bytes):
    record_count, offset = decode_uvarint(data, 0)
    column_count, offset = decode_uvarint(data, offset)
    directory: Dict[int, List[Extent]] = {}
    prefixes: Dict[int, Tuple[bytes, bytes]] = {}
    for _ in range(column_count):
        column_id, offset = decode_uvarint(data, offset)
        min_prefix = data[offset:offset + PREFIX_LENGTH]
        offset += PREFIX_LENGTH
        max_prefix = data[offset:offset + PREFIX_LENGTH]
        offset += PREFIX_LENGTH
        extent_count, offset = decode_uvarint(data, offset)
        extents: List[Extent] = []
        for _ in range(extent_count):
            page_id, offset = decode_uvarint(data, offset)
            page_offset, offset = decode_uvarint(data, offset)
            length, offset = decode_uvarint(data, offset)
            extents.append((page_id, page_offset, length))
        directory[column_id] = extents
        prefixes[column_id] = (min_prefix, max_prefix)
    key_length, offset = decode_uvarint(data, offset)
    keys_payload = data[offset:offset + key_length]
    return record_count, directory, prefixes, keys_payload


class AmaxGroup(ColumnGroup):
    """One AMAX mega leaf node."""

    def __init__(
        self,
        component: "AmaxComponent",
        page_zero_id: int,
        record_count: int,
        min_key,
        max_key,
        antimatter_defs_extent: Optional[Extent] = None,
        antimatter_count: Optional[int] = None,
    ) -> None:
        self.component = component
        self.page_zero_id = page_zero_id
        self.record_count = record_count
        self.min_key = min_key
        self.max_key = max_key
        self.antimatter_count = antimatter_count
        self._page_zero_parse: Optional[Tuple[bytes, tuple]] = None

    # -- page-zero access -------------------------------------------------------------
    def _load_page_zero(self):
        # Page 0 is read through the buffer cache on every access so that page
        # touch counts stay truthful, but the (pure) parse of the directory
        # and prefixes is memoized per returned page object: predicate
        # pruning, key reads, and column reads within one scan would otherwise
        # re-decode the whole directory several times per group.  Eviction
        # hands back a fresh bytes object, which transparently invalidates
        # the memo.
        data = self.component.buffer_cache.read_page(
            self.component.file, self.page_zero_id
        )
        memo = self._page_zero_parse
        if memo is not None and memo[0] is data:
            return memo[1]
        parsed = _decode_page_zero(data)
        self._page_zero_parse = (data, parsed)
        return parsed

    def read_keys(self) -> Tuple[list, List[bool]]:
        schema = self.component.schema
        defs, values = self.read_column(schema.pk_column)
        return values, [definition_level == 0 for definition_level in defs]

    def _decode_keys_payload(self, keys_payload: bytes) -> Tuple[List[int], list]:
        bits_length, offset = decode_uvarint(keys_payload, 0)
        antimatter_bits = keys_payload[offset:offset + bits_length]
        offset += bits_length
        keys, _ = decode_keys(keys_payload[offset:])
        defs = [0 if bit else 1 for bit in antimatter_bits]
        return defs, keys

    def read_column(self, column: ColumnInfo) -> Tuple[List[int], list]:
        return self.read_columns([column])[column.column_id]

    def read_columns(self, columns) -> dict:
        """Decode several megapages with a single Page 0 parse.

        Each column still touches its own megapage extents (that is the
        layout's point — unrequested columns cost no I/O), but the shared
        leaf directory is read once per batch instead of once per column.
        """
        if not columns:
            return {}
        record_count, directory, prefixes, keys_payload = self._load_page_zero()
        out = {}
        for column in columns:
            if column.is_primary_key:
                # The primary keys (and anti-matter flags) live on Page 0 (§4.3).
                out[column.column_id] = self._decode_keys_payload(keys_payload)
                continue
            extents = directory.get(column.column_id)
            if extents is None:
                out[column.column_id] = ([0] * record_count, [])
                continue
            raw = bytearray()
            for page_id, offset, length in extents:
                page = self.component.buffer_cache.read_page(self.component.file, page_id)
                raw.extend(page[offset:offset + length])
            data = self.component.codec.decompress(bytes(raw))
            defs, values, _ = decode_column_chunk(column, data)
            out[column.column_id] = (defs, values)
        return out

    def column_prefixes(self, column: ColumnInfo) -> Tuple[bytes, bytes]:
        _, _, prefixes, _ = self._load_page_zero()
        return prefixes.get(
            column.column_id, (b"\x00" * PREFIX_LENGTH, b"\xff" * PREFIX_LENGTH)
        )

    def column_range_overlaps(self, column: ColumnInfo, low, high) -> bool:
        """Predicate pruning from the fixed-size min/max prefixes on Page 0."""
        _, directory, prefixes, _ = self._load_page_zero()
        if column.column_id not in directory:
            return False  # the column holds no entries in this mega leaf
        min_prefix, max_prefix = prefixes.get(
            column.column_id, (b"\x00" * PREFIX_LENGTH, b"\xff" * PREFIX_LENGTH)
        )
        return prefix_range_may_overlap(min_prefix, max_prefix, low, high)

    def pages_for_columns(self, columns) -> int:
        """How many distinct physical pages the given columns touch (plus Page 0)."""
        _, directory, _, _ = self._load_page_zero()
        pages = {self.page_zero_id}
        for column in columns:
            for page_id, _, _ in directory.get(column.column_id, ()):
                pages.add(page_id)
        return len(pages)


class AmaxComponent(ColumnarComponent):
    """An on-disk component whose leaves are AMAX mega leaf nodes."""

    def __init__(self, metadata, component_file, buffer_cache, schema, groups, codec):
        super().__init__(metadata, component_file, buffer_cache, schema, groups)
        self.codec = codec

    @classmethod
    def load(cls, metadata, component_file, buffer_cache) -> "AmaxComponent":
        """Rebuild an AMAX component from its persisted footer (recovery)."""
        schema = Schema.from_dict(metadata.extra["schema"])
        codec = get_codec(metadata.extra.get("compression", "none"))
        component = cls(metadata, component_file, buffer_cache, schema, [], codec)
        component.groups = [
            AmaxGroup(
                component,
                info["page_zero_id"],
                info["record_count"],
                info["min_key"],
                info["max_key"],
                antimatter_count=info.get("antimatter_count"),
            )
            for info in metadata.extra["groups"]
        ]
        return component


class AmaxComponentBuilder(ColumnarComponentBuilder):
    """Builds AMAX components: Page 0 + size-ordered megapages per mega leaf."""

    layout = LAYOUT_NAME

    def __init__(
        self,
        component_id: str,
        device,
        buffer_cache,
        schema: Schema,
        compression: str = "snappy",
        max_records_per_leaf: int = 15000,
        empty_page_tolerance: float = 0.15,
    ) -> None:
        super().__init__(component_id, device, buffer_cache, schema, compression)
        self.max_records_per_leaf = max_records_per_leaf
        self.empty_page_tolerance = empty_page_tolerance

    def _records_per_group(self, columns, record_count) -> int:
        return self.max_records_per_leaf

    def _write_groups(self, groups: List[Dict[int, ShreddedColumn]]) -> AmaxComponent:
        codec = get_codec(self.compression)
        component_file = self.device.create_file(self.component_id)
        metadata = ComponentMetadata(self.component_id, LAYOUT_NAME)
        metadata.extra["schema"] = self.schema.to_dict()
        metadata.extra["compression"] = self.compression
        metadata.column_stats = self.pending_column_stats

        group_infos = []
        component = AmaxComponent(
            metadata, component_file, self.buffer_cache, self.schema.clone(), [], codec
        )
        for group in groups:
            info = self._write_mega_leaf(component_file, group, codec)
            group_infos.append(info)
            metadata.record_count += info["record_count"]
            metadata.antimatter_count += info["antimatter_count"]
            if metadata.min_key is None:
                metadata.min_key = info["min_key"]
            metadata.max_key = info["max_key"]
        metadata.extra["groups"] = group_infos
        write_component_footer(component_file, metadata)
        component.groups = [
            AmaxGroup(
                component,
                info["page_zero_id"],
                info["record_count"],
                info["min_key"],
                info["max_key"],
                antimatter_count=info.get("antimatter_count"),
            )
            for info in group_infos
        ]
        component.mark_valid()
        return component

    # -- mega leaf writing ---------------------------------------------------------------
    def _write_mega_leaf(
        self, component_file, group: Dict[int, ShreddedColumn], codec
    ) -> dict:
        keys, antimatter_count, min_key, max_key = self.group_key_stats(group)
        pk_column_id = self.schema.pk_column.column_id
        pk = group[pk_column_id]
        page_size = self.device.page_size

        # Encode every value column's megapage payload (compressed column chunk).
        payloads: List[Tuple[int, bytes]] = []
        prefixes: Dict[int, Tuple[bytes, bytes]] = {}
        for column_id, shredded in group.items():
            if column_id == pk_column_id:
                continue
            payloads.append((column_id, codec.compress(encode_column_chunk(shredded))))
            low, high = compute_min_max(shredded.values)
            if low is not None:
                prefixes[column_id] = (value_prefix(low), value_prefix(high))
        # Megapages are written largest first so smaller columns can share the
        # tail pages (§4.3).
        payloads.sort(key=lambda item: len(item[1]), reverse=True)

        # Page 0 carries the header, prefixes, directory and the primary keys.
        # Its size must be known before data pages are appended, so the
        # directory is laid out first (page ids are relative to the leaf start
        # and fixed up after Page 0 is written).
        keys_chunk = bytearray()
        # Store the pk defs (anti-matter flags) next to the keys.
        antimatter_bits = bytes(
            1 if definition_level == 0 else 0 for definition_level in pk.defs
        )
        encode_uvarint(len(antimatter_bits), keys_chunk)
        keys_chunk.extend(antimatter_bits)
        keys_chunk.extend(encode_keys(pk.values))

        # The AMAX writer buffers megapages in pages confiscated from the
        # buffer cache rather than a dedicated budget (§4.5.2).
        confiscated = max(1, sum(len(p) for _, p in payloads) // page_size + 1)
        self.buffer_cache.confiscate(confiscated)
        try:
            directory: Dict[int, List[Extent]] = {}
            data_pages: List[bytearray] = []
            tolerance_bytes = int(page_size * self.empty_page_tolerance)

            def current_remaining() -> int:
                if not data_pages:
                    return 0
                return page_size - len(data_pages[-1])

            for column_id, payload in payloads:
                remaining = current_remaining()
                if remaining <= 0 or (
                    len(payload) > remaining and remaining <= tolerance_bytes
                ):
                    # Start the column on a fresh physical page, tolerating the
                    # empty tail of the previous one.
                    data_pages.append(bytearray())
                extents: List[Extent] = []
                cursor = 0
                while cursor < len(payload):
                    if not data_pages or len(data_pages[-1]) >= page_size:
                        data_pages.append(bytearray())
                    page = data_pages[-1]
                    space = page_size - len(page)
                    take = min(space, len(payload) - cursor)
                    extents.append((len(data_pages) - 1, len(page), take))
                    page.extend(payload[cursor:cursor + take])
                    cursor += take
                directory[column_id] = extents
                if not payload:
                    directory[column_id] = []
        finally:
            self.buffer_cache.return_confiscated(confiscated)

        # Write Page 0 followed by the data pages, fixing up page ids.
        page_zero_placeholder = _encode_page_zero(
            len(pk.defs), directory, prefixes, bytes(keys_chunk)
        )
        if len(page_zero_placeholder) > page_size:
            raise StorageError(
                "AMAX Page 0 exceeds the physical page size; lower "
                "max_records_per_leaf or raise the page size"
            )
        page_zero_id = component_file.append_page(b"")  # reserve the slot
        first_data_page_id = page_zero_id + 1
        fixed_directory = {
            column_id: [
                (first_data_page_id + page_index, offset, length)
                for page_index, offset, length in extents
            ]
            for column_id, extents in directory.items()
        }
        page_zero = _encode_page_zero(
            len(pk.defs), fixed_directory, prefixes, bytes(keys_chunk)
        )
        component_file.rewrite_page(page_zero_id, page_zero)
        for page in data_pages:
            component_file.append_page(bytes(page))
        return {
            "page_zero_id": page_zero_id,
            "record_count": len(pk.defs),
            "antimatter_count": antimatter_count,
            "min_key": min_key,
            "max_key": max_key,
            "num_data_pages": len(data_pages),
        }
