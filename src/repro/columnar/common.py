"""Shared building blocks for the APAX and AMAX layouts.

Both layouts store, per column, an encoded definition-level stream followed by
the encoded present values (§4.2: "the reader will read the first four bytes
to determine the size of the encoded definition level, then pass both the
encoded definition levels and the encoded values to the appropriate
decoders").  This module implements that column-chunk serialization, the
primary-key codec, and small helpers shared by both page layouts.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Sequence, Tuple

from ..core.columns import ShreddedColumn
from ..core.schema import ColumnInfo
from ..encoding import bitpacking, decode_values, encode_values, rle
from ..encoding.varint import decode_uvarint, encode_uvarint
from ..model.errors import EncodingError, StorageError
from ..model.values import TYPE_INT64, TYPE_STRING

# -- primary keys --------------------------------------------------------------------

_KEY_INT = 0
_KEY_STRING = 1


def encode_keys(keys: Sequence) -> bytes:
    """Encode primary-key values (homogeneous int64 or string keys)."""
    out = bytearray()
    encode_uvarint(len(keys), out)
    if not keys:
        return bytes(out)
    if all(isinstance(key, int) and not isinstance(key, bool) for key in keys):
        out.append(_KEY_INT)
        encoding_id, payload = encode_values(TYPE_INT64, list(keys))
        out.append(encoding_id)
        out.extend(payload)
        return bytes(out)
    if all(isinstance(key, str) for key in keys):
        out.append(_KEY_STRING)
        encoding_id, payload = encode_values(TYPE_STRING, list(keys))
        out.append(encoding_id)
        out.extend(payload)
        return bytes(out)
    raise StorageError("primary keys must be homogeneous int64 or string values")


def decode_keys(data: bytes, offset: int = 0) -> Tuple[list, int]:
    """Decode primary keys; returns ``(keys, next_offset)``."""
    count, offset = decode_uvarint(data, offset)
    if count == 0:
        return [], offset
    kind = data[offset]
    encoding_id = data[offset + 1]
    offset += 2
    type_tag = TYPE_INT64 if kind == _KEY_INT else TYPE_STRING
    keys = decode_values(type_tag, encoding_id, data[offset:], count)
    # The key payload consumes the rest of the buffer handed to us; callers
    # always slice the exact chunk before calling.
    return keys, len(data)


# -- column chunks --------------------------------------------------------------------


def encode_column_chunk(shredded: ShreddedColumn) -> bytes:
    """Serialize one column's definition levels and values.

    Layout::

        [entry count uvarint][value count uvarint]
        [def bit width byte][def stream size uvarint][RLE-encoded def levels]
        [value encoding byte][value stream size uvarint][encoded values]
    """
    column = shredded.column
    out = bytearray()
    encode_uvarint(len(shredded.defs), out)
    encode_uvarint(len(shredded.values), out)
    bit_width = bitpacking.bit_width_for(column.max_level_value)
    def_stream = rle.encode(shredded.defs, bit_width)
    out.append(bit_width)
    encode_uvarint(len(def_stream), out)
    out.extend(def_stream)
    if column.is_primary_key:
        payload = encode_keys(shredded.values)
        out.append(255)
        encode_uvarint(len(payload), out)
        out.extend(payload)
        return bytes(out)
    encoding_id, payload = encode_values(column.type_tag, shredded.values)
    out.append(encoding_id)
    encode_uvarint(len(payload), out)
    out.extend(payload)
    return bytes(out)


def decode_column_chunk(
    column: ColumnInfo, data: bytes, offset: int = 0
) -> Tuple[List[int], list, int]:
    """Decode a column chunk; returns ``(defs, values, next_offset)``."""
    entry_count, offset = decode_uvarint(data, offset)
    value_count, offset = decode_uvarint(data, offset)
    bit_width = data[offset]
    offset += 1
    def_size, offset = decode_uvarint(data, offset)
    defs = rle.decode(data[offset:offset + def_size], bit_width, entry_count)
    offset += def_size
    encoding_id = data[offset]
    offset += 1
    value_size, offset = decode_uvarint(data, offset)
    payload = data[offset:offset + value_size]
    offset += value_size
    if column.is_primary_key:
        if encoding_id != 255:
            raise EncodingError("primary-key chunk has a non-key encoding id")
        values, _ = decode_keys(payload)
    else:
        values = decode_values(column.type_tag, encoding_id, payload, value_count)
    return defs, values, offset


def chunk_from_streams(column: ColumnInfo, defs: List[int], values: list) -> ShreddedColumn:
    """Wrap pre-existing streams in a :class:`ShreddedColumn` (used by merges)."""
    shredded = ShreddedColumn(column)
    shredded.defs = list(defs)
    shredded.values = list(values)
    return shredded


# -- min/max statistics ---------------------------------------------------------------

#: Length of the fixed-size min/max prefixes stored on AMAX Page 0 (§4.3).
PREFIX_LENGTH = 8


def value_prefix(value) -> bytes:
    """A fixed-length, order-preserving prefix of a value (8 bytes)."""
    if value is None:
        return b"\x00" * PREFIX_LENGTH
    if isinstance(value, bool):
        value = int(value)
    if isinstance(value, int):
        # Bias into the unsigned range so byte-wise comparison preserves order
        # for negative values.
        clamped = max(min(value, 2**63 - 1), -(2**63))
        return struct.pack(">Q", clamped + 2**63)
    if isinstance(value, float):
        # Order-preserving transform of IEEE-754 doubles.
        raw = struct.unpack(">Q", struct.pack(">d", value))[0]
        if raw & (1 << 63):
            raw = ~raw & 0xFFFFFFFFFFFFFFFF
        else:
            raw |= 1 << 63
        return struct.pack(">Q", raw)
    if isinstance(value, str):
        return value.encode("utf-8", "ignore")[:PREFIX_LENGTH].ljust(PREFIX_LENGTH, b"\x00")
    return b"\x00" * PREFIX_LENGTH


def prefix_range_may_overlap(
    min_prefix: bytes, max_prefix: bytes, low, high
) -> bool:
    """Can a column whose values span [min_prefix, max_prefix] satisfy [low, high]?

    Prefixes are not decisive for variable-length values (§4.3), so the check
    errs on the side of reading: it only returns False when the prefixes prove
    the ranges are disjoint.
    """
    if low is not None:
        low_prefix = value_prefix(low)
        if max_prefix < low_prefix:
            return False
    if high is not None:
        high_prefix = value_prefix(high)
        # A shared prefix is inconclusive, so only prune on strict inequality
        # beyond the prefix length.
        if min_prefix > high_prefix:
            return False
    return True


def compute_min_max(values: list) -> Tuple[Optional[object], Optional[object]]:
    """Minimum and maximum of a value list (None, None when empty or mixed types).

    NaN is excluded: it is unordered, so it would silently poison ``min``/
    ``max`` (and therefore the pruning prefixes) depending on its position in
    the list.  Dropping it from the statistics is safe — NaN can never satisfy
    a range or equality predicate, so a group's match-ability is decided by
    its finite values alone.
    """
    if not values:
        return None, None
    if isinstance(values[0], float):
        values = [value for value in values if value == value]
        if not values:
            return None, None
    try:
        return min(values), max(values)
    except TypeError:
        return None, None
