"""Columnar LSM component layouts: APAX and AMAX (and their shared plumbing)."""

from .amax import AmaxComponent, AmaxComponentBuilder, AmaxGroup
from .apax import ApaxComponent, ApaxComponentBuilder, ApaxGroup
from .base import ColumnarComponent, ColumnarComponentBuilder, MultiGroupColumnCursor
from .common import decode_column_chunk, encode_column_chunk

__all__ = [
    "AmaxComponent",
    "AmaxComponentBuilder",
    "AmaxGroup",
    "ApaxComponent",
    "ApaxComponentBuilder",
    "ApaxGroup",
    "ColumnarComponent",
    "ColumnarComponentBuilder",
    "MultiGroupColumnCursor",
    "decode_column_chunk",
    "encode_column_chunk",
]
