"""The APAX layout (AsterixDB Partitioned Attributes Across), §4.2.

Every leaf of the primary index is a single physical page holding *all*
columns of a group of records as minipages: the page header stores the tuple
count, the column count and the min/max primary keys; each minipage stores the
size of the encoded definition levels, the value count, the encoded definition
levels, and the encoded values.

Because every column of a record group must share one page, datasets with very
many columns fit only a handful of records per page, which hurts both encoding
effectiveness and ingestion cost — the behaviour the paper reports for
``tweet_1`` (933 columns).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..core.columns import ShreddedColumn
from ..core.schema import ColumnInfo, Schema
from ..encoding import get_codec
from ..encoding.varint import decode_uvarint, encode_uvarint
from ..model.errors import StorageError
from ..lsm.component import ComponentMetadata, write_component_footer
from .base import ColumnarComponent, ColumnarComponentBuilder, ColumnGroup
from .common import compute_min_max, decode_column_chunk, encode_column_chunk

LAYOUT_NAME = "apax"


def _encode_group_page(
    schema: Schema, group: Dict[int, ShreddedColumn], codec_name: str
) -> bytes:
    """Serialize one APAX leaf page: header + one minipage per column."""
    codec = get_codec(codec_name)
    pk = group[schema.pk_column.column_id]
    body = bytearray()
    encode_uvarint(len(pk.defs), body)
    encode_uvarint(len(group), body)
    for column_id in sorted(group):
        chunk = codec.compress(encode_column_chunk(group[column_id]))
        encode_uvarint(column_id, body)
        encode_uvarint(len(chunk), body)
        body.extend(chunk)
    return bytes(body)


def _decode_group_page(data: bytes) -> Tuple[int, Dict[int, bytes]]:
    """Parse an APAX page into ``(record_count, {column_id: compressed chunk})``."""
    record_count, offset = decode_uvarint(data, 0)
    column_count, offset = decode_uvarint(data, offset)
    chunks: Dict[int, bytes] = {}
    for _ in range(column_count):
        column_id, offset = decode_uvarint(data, offset)
        length, offset = decode_uvarint(data, offset)
        chunks[column_id] = data[offset:offset + length]
        offset += length
    return record_count, chunks


class ApaxGroup(ColumnGroup):
    """One APAX leaf page."""

    def __init__(
        self,
        component: "ApaxComponent",
        page_id: int,
        record_count: int,
        min_key,
        max_key,
        column_min_max: Optional[dict] = None,
        antimatter_count: Optional[int] = None,
    ) -> None:
        self.component = component
        self.page_id = page_id
        self.record_count = record_count
        self.min_key = min_key
        self.max_key = max_key
        self._column_min_max = column_min_max or {}
        self.antimatter_count = antimatter_count

    def _load(self) -> Dict[int, bytes]:
        # Reading any column of an APAX leaf reads the whole page: minipages
        # cannot be fetched independently (§4.3 motivation for AMAX).  The page
        # itself is served by the buffer cache; nothing is cached on the group
        # so that I/O accounting stays truthful across queries.
        page = self.component.buffer_cache.read_page(self.component.file, self.page_id)
        _, chunks = _decode_group_page(page)
        return chunks

    def read_keys(self) -> Tuple[list, List[bool]]:
        schema = self.component.schema
        defs, values = self.read_column(schema.pk_column)
        return values, [definition_level == 0 for definition_level in defs]

    def read_column(self, column: ColumnInfo) -> Tuple[List[int], list]:
        return self.read_columns([column])[column.column_id]

    def read_columns(self, columns) -> dict:
        """Decode several minipages with a single page access.

        An APAX leaf is one physical page, so requesting N columns must not be
        charged as N page touches; the whole page is fetched once and only the
        requested minipages are decompressed and decoded.
        """
        chunks = self._load()
        out = {}
        for column in columns:
            raw = chunks.get(column.column_id)
            if raw is None:
                # Column did not exist when this component was written: every
                # record reads as missing (definition level 0).
                out[column.column_id] = ([0] * self.record_count, [])
                continue
            data = self.component.codec.decompress(raw)
            defs, values, _ = decode_column_chunk(column, data)
            out[column.column_id] = (defs, values)
        return out

    def column_min_max(self, column: ColumnInfo):
        return tuple(self._column_min_max.get(str(column.column_id), (None, None)))

    def column_range_overlaps(self, column: ColumnInfo, low, high) -> bool:
        minimum, maximum = self.column_min_max(column)
        if minimum is None:
            # No recorded stats means the column holds no values in this leaf
            # (per-column values are homogeneous, so min/max always exists
            # when any value does) — nothing here can satisfy the predicate.
            return False
        try:
            if low is not None and maximum < low:
                return False
            if high is not None and minimum > high:
                return False
        except TypeError:
            return True  # cross-type comparison: stats are inconclusive
        return True


class ApaxComponent(ColumnarComponent):
    """An on-disk component whose leaves are APAX pages."""

    def __init__(self, metadata, component_file, buffer_cache, schema, groups, codec):
        super().__init__(metadata, component_file, buffer_cache, schema, groups)
        self.codec = codec

    @classmethod
    def load(cls, metadata, component_file, buffer_cache) -> "ApaxComponent":
        """Rebuild an APAX component from its persisted footer (recovery)."""
        schema = Schema.from_dict(metadata.extra["schema"])
        codec = get_codec(metadata.extra.get("compression", "none"))
        component = cls(metadata, component_file, buffer_cache, schema, [], codec)
        component.groups = [
            ApaxGroup(
                component,
                info["page_id"],
                info["record_count"],
                info["min_key"],
                info["max_key"],
                info.get("column_min_max"),
                antimatter_count=info.get("antimatter_count"),
            )
            for info in metadata.extra["groups"]
        ]
        return component


class ApaxComponentBuilder(ColumnarComponentBuilder):
    """Builds APAX components from flush entries or from pre-shredded columns."""

    layout = LAYOUT_NAME

    def __init__(
        self,
        component_id: str,
        device,
        buffer_cache,
        schema: Schema,
        compression: str = "snappy",
        fill_fraction: float = 0.9,
    ) -> None:
        super().__init__(component_id, device, buffer_cache, schema, compression)
        self.fill_fraction = fill_fraction

    #: Encoding + page compression typically shrink the raw values severalfold;
    #: the group estimator anticipates that so pages end up well filled (the
    #: recursive split in ``_encode_group_recursive`` is the overflow safety net).
    ENCODING_SHRINK_FACTOR = 3.0

    def _records_per_group(self, columns, record_count) -> int:
        estimated = self.estimated_bytes(columns)
        per_record = max(1, estimated // max(record_count, 1))
        budget = int(self.device.page_size * self.fill_fraction * self.ENCODING_SHRINK_FACTOR)
        return max(1, budget // per_record)

    def _write_groups(self, groups: List[Dict[int, ShreddedColumn]]) -> ApaxComponent:
        codec = get_codec(self.compression)
        component_file = self.device.create_file(self.component_id)
        metadata = ComponentMetadata(self.component_id, LAYOUT_NAME)
        metadata.extra["schema"] = self.schema.to_dict()
        metadata.extra["compression"] = self.compression
        metadata.column_stats = self.pending_column_stats

        encoded_pages: List[Tuple[bytes, dict]] = []
        for group in groups:
            encoded_pages.extend(self._encode_group_recursive(group))

        # Leaf pages first (ids start at 0); the footer carrying the schema,
        # the group directory, and the statistics is appended at the end once
        # every count is known.
        group_infos = []
        for page_bytes, info in encoded_pages:
            page_id = component_file.append_page(page_bytes)
            info["page_id"] = page_id
            group_infos.append(info)
            metadata.record_count += info["record_count"]
            metadata.antimatter_count += info["antimatter_count"]
            if metadata.min_key is None:
                metadata.min_key = info["min_key"]
            metadata.max_key = info["max_key"]
        metadata.extra["groups"] = group_infos
        write_component_footer(component_file, metadata)

        component = ApaxComponent(
            metadata, component_file, self.buffer_cache, self.schema.clone(), [], codec
        )
        component.groups = [
            ApaxGroup(
                component,
                info["page_id"],
                info["record_count"],
                info["min_key"],
                info["max_key"],
                info.get("column_min_max"),
                antimatter_count=info.get("antimatter_count"),
            )
            for info in group_infos
        ]
        component.mark_valid()
        return component

    def _encode_group_recursive(
        self, group: Dict[int, ShreddedColumn]
    ) -> Iterator[Tuple[bytes, dict]]:
        """Encode a group, splitting it in half if it overflows the page size."""
        page = _encode_group_page(self.schema, group, self.compression)
        keys, antimatter, min_key, max_key = self.group_key_stats(group)
        if len(page) <= self.device.page_size or len(keys) <= 1:
            if len(page) > self.device.page_size:
                raise StorageError(
                    "a single record's columns exceed the APAX page size; "
                    "increase the page size"
                )
            column_min_max = {}
            for column_id, shredded in group.items():
                if shredded.column.is_primary_key:
                    continue
                low, high = compute_min_max(shredded.values)
                if low is not None:
                    column_min_max[str(column_id)] = (low, high)
            yield page, {
                "record_count": len(keys),
                "antimatter_count": antimatter,
                "min_key": min_key,
                "max_key": max_key,
                "column_min_max": column_min_max,
            }
            return
        left, right = self._split_group(group, len(keys) // 2)
        yield from self._encode_group_recursive(left)
        yield from self._encode_group_recursive(right)

    def _split_group(
        self, group: Dict[int, ShreddedColumn], first_half: int
    ) -> Tuple[Dict[int, ShreddedColumn], Dict[int, ShreddedColumn]]:
        halves = list(self._resplit(group, first_half))
        return halves[0], halves[1]

    def _resplit(self, group, first_half):
        from ..core.columns import ColumnCursor
        from .common import chunk_from_streams

        # The primary-key column has exactly one entry per record.
        total = len(group[self.schema.pk_column.column_id].defs)
        counts = [first_half, total - first_half]
        cursors = {
            column_id: ColumnCursor(shredded.column, shredded.defs, shredded.values)
            for column_id, shredded in group.items()
        }
        for take in counts:
            half: Dict[int, ShreddedColumn] = {}
            for column_id, cursor in cursors.items():
                defs: List[int] = []
                values: list = []
                for _ in range(take):
                    for definition_level, value, is_delimiter in cursor.next_record():
                        defs.append(definition_level)
                        if not is_delimiter and cursor._has_value(definition_level, False):
                            values.append(value)
                half[column_id] = chunk_from_streams(cursor.column, defs, values)
            yield half
