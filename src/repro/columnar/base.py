"""Shared machinery for the APAX and AMAX columnar components.

Both layouts store groups of records ("leaf nodes" of the primary B+-tree): a
group of an APAX component is one leaf page holding every column's minipage;
a group of an AMAX component is a mega leaf node (Page 0 plus megapages).
This module hosts the group abstraction, the component/cursor classes built on
top of it, and the record-grouping logic shared by both builders — the layout
classes only implement how a group's bytes are arranged in pages.

Reading follows §4.4: scans decode the primary keys of a group eagerly (they
drive reconciliation and ``COUNT(*)``), while value columns are decoded only
when a document is actually requested, and skipped records are applied to each
column's cursor in one batch right before the next read.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.assembly import assemble_document
from ..core.columns import ColumnCursor, ShreddedColumn
from ..core.schema import ARRAY_PATH_STEP, ColumnInfo, Schema, field_name_steps
from ..core.shredder import RecordShredder
from ..model.errors import StorageError
from ..model.values import TYPE_NULL
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from ..storage.stats import ColumnStatistics, ColumnStatisticsBuilder
from .common import chunk_from_streams
from ..lsm.component import (
    ComponentCursor,
    ComponentMetadata,
    DiskComponent,
    FlushEntry,
)


class ColumnGroup:
    """One leaf group of a columnar component (abstract)."""

    record_count: int
    min_key: object
    max_key: object
    #: Number of anti-matter records in the group, when the layout persisted
    #: it (None = unknown).  Zero lets batch scans skip decoding the key
    #: column entirely when only value columns are needed.
    antimatter_count: Optional[int] = None

    def read_keys(self) -> Tuple[list, List[bool]]:
        """Decode the primary keys and anti-matter flags of the group."""
        raise NotImplementedError  # pragma: no cover - interface

    def read_column(self, column: ColumnInfo) -> Tuple[List[int], list]:
        """Decode one column's (definition levels, values) for the group."""
        raise NotImplementedError  # pragma: no cover - interface

    def read_columns(self, columns) -> dict:
        """Decode several columns; layouts may override to batch page accesses."""
        return {column.column_id: self.read_column(column) for column in columns}

    def column_min_max(self, column: ColumnInfo) -> Tuple[object, object]:
        """Min/max statistics for predicate skipping (None, None when unknown)."""
        return None, None

    def column_range_overlaps(self, column: ColumnInfo, low, high) -> bool:
        """Can this group hold a value of ``column`` within [low, high]?

        Layouts override this with their min/max statistics (APAX keeps exact
        per-page values, AMAX keeps fixed-size prefixes on Page 0); the
        default errs on the side of reading the column.
        """
        return True


class ColumnarComponent(DiskComponent):
    """A component whose leaf groups store columns (APAX or AMAX)."""

    def __init__(
        self,
        metadata: ComponentMetadata,
        component_file,
        buffer_cache: BufferCache,
        schema: Schema,
        groups: Sequence[ColumnGroup],
    ) -> None:
        super().__init__(metadata, component_file, buffer_cache)
        self.schema = schema
        self.groups = list(groups)

    # -- cursors -----------------------------------------------------------------
    def cursor(
        self, fields: Optional[Sequence[str]] = None, pushdown=None
    ) -> "ColumnarComponentCursor":
        return ColumnarComponentCursor(self, fields, pushdown)

    def iter_key_entries(self) -> Iterator[Tuple[object, bool]]:
        """Yield ``(key, antimatter)`` for every record, touching only the keys."""
        for group in self.groups:
            keys, antimatter_flags = group.read_keys()
            yield from zip(keys, antimatter_flags)

    def column_record_cursor(self, column: ColumnInfo) -> "MultiGroupColumnCursor":
        """A per-record cursor over one column across every group (vertical merge)."""
        return MultiGroupColumnCursor(self, column)

    def columns_for_fields(self, fields: Optional[Sequence[str]]) -> List[ColumnInfo]:
        if fields is None:
            return list(self.schema.columns)
        return self.schema.columns_for_fields(fields)

    # -- point lookups -------------------------------------------------------------
    def point_lookup(
        self, key, fields: Optional[Sequence[str]] = None
    ) -> Optional[Tuple[bool, Optional[dict]]]:
        if not self.key_range_overlaps(key):
            return None
        for group in self.groups:
            if group.min_key is None or key < group.min_key or key > group.max_key:
                continue
            keys, antimatter_flags = group.read_keys()
            # Keys in columnar leaves are searched linearly after decoding
            # (§4.6) — the very cost the primary-key index exists to avoid.
            for index, candidate in enumerate(keys):
                if candidate == key:
                    if antimatter_flags[index]:
                        return True, None
                    return False, self._assemble_at(group, index, fields)
        return None

    def _assemble_at(
        self, group: ColumnGroup, index: int, fields: Optional[Sequence[str]] = None
    ) -> dict:
        """Assemble the record at ``index`` of ``group``.

        ``fields`` restricts the decode to the projected columns; the whole
        definition/value streams of each needed column are still decoded and
        skipped up to ``index`` — that per-lookup leaf cost is inherent to the
        layouts (§4.6) and is exactly what the cost-based optimizer charges
        index-to-primary fetches for.
        """
        columns = [
            column
            for column in self.columns_for_fields(fields)
            if not column.is_primary_key
        ]
        chunk = {}
        streams = group.read_columns(columns)
        for column in columns:
            cursor = ColumnCursor(column, *streams[column.column_id])
            cursor.skip_records(index)
            chunk[column.column_id] = cursor.next_record()
        keys, _ = group.read_keys()
        return assemble_document(
            self.schema,
            chunk,
            key=keys[index],
            fields=list(fields) if fields is not None else None,
        )


class ColumnarComponentCursor(ComponentCursor):
    """Merged cursor over a columnar component's groups with lazy value decoding.

    When a :class:`~repro.query.pushdown.PushdownSpec` is supplied, the cursor

    * prunes the assembled columns to the spec's path set (finer than the
      top-level-field projection), and
    * pre-filters each leaf group: pushed predicates are compiled against this
      component's schema snapshot and evaluated over the decoded column
      batches into one pass-vector per group, *before* any document is
      assembled.  Groups whose min/max statistics cannot satisfy a predicate
      are skipped without decoding any value column at all.

    The pass-vector only gates :attr:`passes_pushdown`; iteration still visits
    every key so LSM reconciliation (newest version wins) sees the full key
    stream.
    """

    def __init__(
        self,
        component: ColumnarComponent,
        fields: Optional[Sequence[str]],
        pushdown=None,
    ):
        self.component = component
        self.pushdown = pushdown
        if pushdown is not None and pushdown.fields is not None and fields is None:
            fields = pushdown.fields
        self.fields = list(fields) if fields is not None else None
        if pushdown is not None and pushdown.paths is not None:
            wanted = component.schema.columns_for_paths(pushdown.paths)
        else:
            wanted = component.columns_for_fields(fields)
        self._wanted_columns = [
            column for column in wanted if not column.is_primary_key
        ]
        self._compiled_predicates = []
        if pushdown is not None and pushdown.predicates:
            # Imported lazily: the query layer depends on core/columnar, not
            # the other way around — except for this one read-path hook.
            from ..query.pushdown import compile_predicates

            self._compiled_predicates = compile_predicates(
                component.schema, pushdown.predicates
            )
        self._group_index = -1
        self._keys: list = []
        self._antimatter: List[bool] = []
        self._pass: Optional[List[bool]] = None
        self._predicate_streams: Dict[int, tuple] = {}
        self._position = -1
        self._value_cursors: Optional[Dict[int, ColumnCursor]] = None
        self._assembled_position = -1

    # -- iteration ------------------------------------------------------------------
    def advance(self) -> bool:
        self._position += 1
        while self._position >= len(self._keys):
            self._group_index += 1
            if self._group_index >= len(self.component.groups):
                return False
            group = self.component.groups[self._group_index]
            self._keys, self._antimatter = group.read_keys()
            self._predicate_streams = {}
            self._pass = self._compute_group_pass(group) if self._compiled_predicates else None
            self._position = 0
            self._value_cursors = None
            self._assembled_position = -1
        return True

    def _compute_group_pass(self, group: ColumnGroup) -> List[bool]:
        """Evaluate the pushed predicates over this group's column batches."""
        record_count = len(self._keys)
        for compiled in self._compiled_predicates:
            if not compiled.group_may_match(group):
                # Min/max pruning: nothing in this leaf can pass; no value
                # column (not even the predicate's) needs to be decoded.
                return [False] * record_count
        needed: Dict[int, object] = {}
        for compiled in self._compiled_predicates:
            for column in compiled.columns:
                needed[column.column_id] = column
        streams = group.read_columns(list(needed.values()))
        # Decoded predicate batches are kept so that document assembly does
        # not decode the same columns a second time.
        self._predicate_streams = streams
        passes: Optional[List[bool]] = None
        for compiled in self._compiled_predicates:
            vector = compiled.evaluate(streams, record_count)
            if passes is None:
                passes = vector
            else:
                passes = [a and b for a, b in zip(passes, vector)]
        return passes if passes is not None else [True] * record_count

    @property
    def passes_pushdown(self) -> bool:
        return self._pass is None or self._pass[self._position]

    @property
    def key(self):
        return self._keys[self._position]

    @property
    def is_antimatter(self) -> bool:
        return self._antimatter[self._position]

    def document(self) -> Optional[dict]:
        if self.is_antimatter:
            return None
        group = self.component.groups[self._group_index]
        if self._value_cursors is None:
            # Value columns are decoded lazily, only for groups where at least
            # one document is actually requested, and fetched as a batch so
            # page-per-leaf layouts (APAX) touch their page only once.  Columns
            # already decoded for predicate evaluation are reused as-is.
            missing = [
                column
                for column in self._wanted_columns
                if column.column_id not in self._predicate_streams
            ]
            streams = dict(self._predicate_streams)
            if missing or not streams:
                streams.update(group.read_columns(missing))
            self._value_cursors = {
                column.column_id: ColumnCursor(column, *streams[column.column_id])
                for column in self._wanted_columns
            }
            self._assembled_position = -1
        skip = self._position - self._assembled_position - 1
        chunk = {}
        for column_id, cursor in self._value_cursors.items():
            if skip:
                cursor.skip_records(skip)
            chunk[column_id] = cursor.next_record()
        self._assembled_position = self._position
        return assemble_document(
            self.component.schema, chunk, key=self.key, fields=self.fields
        )


class MultiGroupColumnCursor:
    """Per-record entry cursor for one column spanning every group of a component."""

    def __init__(self, component: ColumnarComponent, column: ColumnInfo) -> None:
        self.component = component
        self.column = column
        self._group_index = -1
        self._cursor: Optional[ColumnCursor] = None

    def next_record(self):
        while self._cursor is None or self._cursor.exhausted:
            self._group_index += 1
            if self._group_index >= len(self.component.groups):
                raise StorageError("column cursor exhausted")
            group = self.component.groups[self._group_index]
            defs, values = group.read_column(self.column)
            self._cursor = ColumnCursor(self.column, defs, values)
        return self._cursor.next_record()


# ======================================================================================
# Builders
# ======================================================================================


class ColumnarComponentBuilder:
    """Shared flush/merge entry points for APAX and AMAX builders."""

    layout: str = "columnar"

    def __init__(
        self,
        component_id: str,
        device: StorageDevice,
        buffer_cache: BufferCache,
        schema: Schema,
        compression: str = "snappy",
    ) -> None:
        self.component_id = component_id
        self.device = device
        self.buffer_cache = buffer_cache
        self.schema = schema
        self.compression = compression
        #: Filled by :meth:`build_from_columns`; consumed by the layouts'
        #: ``_write_groups`` when they create the component metadata.
        self.pending_column_stats: Dict[str, ColumnStatistics] = {}

    # -- entry points --------------------------------------------------------------
    def build(self, entries: Iterable[FlushEntry]) -> ColumnarComponent:
        """Flush path: shred row-major records and lay the columns out in pages."""
        shredder = RecordShredder(self.schema)
        for key, antimatter, document in entries:
            shredder.shred(key, document, antimatter=antimatter)
        columns = shredder.finish()
        return self.build_from_columns(columns, shredder.record_count)

    def build_from_columns(
        self, columns: Dict[int, ShreddedColumn], record_count: int
    ) -> ColumnarComponent:
        """Merge path: the columns already exist; regroup and write them.

        Column statistics are collected here (both flush and merge funnel
        through this method) so they are recomputed exactly on every merge —
        no approximate on-disk merging of histograms is ever needed.
        """
        self.pending_column_stats = self._collect_column_stats(columns)
        groups = list(self._split_into_groups(columns, record_count))
        return self._write_groups(groups)

    def _collect_column_stats(
        self, columns: Dict[int, ShreddedColumn]
    ) -> Dict[str, ColumnStatistics]:
        """Per-path statistics straight from the shredded column buffers.

        Array columns are skipped (predicates on array paths are never pushed
        or index-planned); union columns sharing one dotted path fold into a
        single entry, matching how the optimizer looks statistics up.
        """
        builders: Dict[str, ColumnStatisticsBuilder] = {}
        for shredded in columns.values():
            column = shredded.column
            if ARRAY_PATH_STEP in column.path:
                continue
            path = ".".join(field_name_steps(column.path))
            if not path:
                continue
            builder = builders.get(path)
            if builder is None:
                builder = builders[path] = ColumnStatisticsBuilder(path)
            if column.is_primary_key:
                # The key column materializes a value for anti-matter entries
                # too (definition level 0); only live keys are statistics.
                for definition_level, value in zip(shredded.defs, shredded.values):
                    if definition_level != 0:
                        builder.observe(value)
            elif column.type_tag == TYPE_NULL:
                for definition_level in shredded.defs:
                    if definition_level == column.max_def:
                        builder.observe(None)
            else:
                for value in shredded.values:
                    builder.observe(value)
        return {path: builder.finish() for path, builder in builders.items()}

    # -- grouping --------------------------------------------------------------------
    def _records_per_group(
        self, columns: Dict[int, ShreddedColumn], record_count: int
    ) -> int:
        raise NotImplementedError  # pragma: no cover - layout specific

    def _write_groups(self, groups: List[Dict[int, ShreddedColumn]]) -> ColumnarComponent:
        raise NotImplementedError  # pragma: no cover - layout specific

    def _split_into_groups(
        self, columns: Dict[int, ShreddedColumn], record_count: int
    ) -> Iterator[Dict[int, ShreddedColumn]]:
        if record_count == 0:
            return
        per_group = max(1, self._records_per_group(columns, record_count))
        if per_group >= record_count:
            yield columns
            return
        cursors = {
            column_id: ColumnCursor(shredded.column, shredded.defs, shredded.values)
            for column_id, shredded in columns.items()
        }
        remaining = record_count
        while remaining > 0:
            take = min(per_group, remaining)
            group: Dict[int, ShreddedColumn] = {}
            for column_id, cursor in cursors.items():
                defs: List[int] = []
                values: list = []
                for _ in range(take):
                    for definition_level, value, is_delimiter in cursor.next_record():
                        defs.append(definition_level)
                        if not is_delimiter and cursor._has_value(definition_level, False):
                            values.append(value)
                group[column_id] = chunk_from_streams(cursor.column, defs, values)
            remaining -= take
            yield group

    # -- helpers shared by subclasses ---------------------------------------------------
    @staticmethod
    def estimated_bytes(columns: Dict[int, ShreddedColumn]) -> int:
        total = 0
        for shredded in columns.values():
            total += len(shredded.defs)  # roughly one byte per level after RLE? keep coarse
            for value in shredded.values:
                if isinstance(value, str):
                    total += len(value) + 1
                elif isinstance(value, bool):
                    total += 1
                else:
                    total += 8
        return total

    def group_key_stats(self, group: Dict[int, ShreddedColumn]):
        pk = group[self.schema.pk_column.column_id]
        keys = pk.values
        antimatter = sum(1 for definition_level in pk.defs if definition_level == 0)
        min_key = keys[0] if keys else None
        max_key = keys[-1] if keys else None
        return keys, antimatter, min_key, max_key
