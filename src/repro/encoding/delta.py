"""DELTA_BINARY_PACKED integer encoding (Parquet's delta encoding).

Layout (simplified but faithful to the Parquet design):

* header: ``block_size`` (uvarint), ``miniblocks_per_block`` (uvarint),
  ``total_count`` (uvarint), ``first_value`` (svarint);
* blocks: each block stores ``min_delta`` (svarint), then per miniblock a
  bit width byte followed by the bit-packed ``delta - min_delta`` values.

Monotonic sequences (timestamps, ids, sensor readings in the same domain)
collapse to a few bytes, which is what gives the columnar layouts their large
advantage on the ``sensors`` dataset in the paper.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model.errors import EncodingError
from . import bitpacking
from .varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)

_BLOCK_SIZE = 128
_MINIBLOCKS_PER_BLOCK = 4
_MINIBLOCK_SIZE = _BLOCK_SIZE // _MINIBLOCKS_PER_BLOCK


def encode(values: Sequence[int]) -> bytes:
    """Encode signed 64-bit integers with delta binary packing."""
    out = bytearray()
    encode_uvarint(_BLOCK_SIZE, out)
    encode_uvarint(_MINIBLOCKS_PER_BLOCK, out)
    encode_uvarint(len(values), out)
    if not values:
        return bytes(out)
    encode_svarint(values[0], out)
    deltas = [values[i] - values[i - 1] for i in range(1, len(values))]
    position = 0
    while position < len(deltas):
        block = deltas[position:position + _BLOCK_SIZE]
        position += len(block)
        min_delta = min(block)
        encode_svarint(min_delta, out)
        adjusted = [delta - min_delta for delta in block]
        # Pad the last block so each miniblock is complete.
        adjusted.extend([0] * (_BLOCK_SIZE - len(adjusted)))
        widths = []
        payloads = []
        for mb in range(_MINIBLOCKS_PER_BLOCK):
            chunk = adjusted[mb * _MINIBLOCK_SIZE:(mb + 1) * _MINIBLOCK_SIZE]
            width = bitpacking.bit_width_for(max(chunk) if chunk else 0)
            widths.append(width)
            payloads.append(bitpacking.pack(chunk, width))
        out.extend(widths)
        for payload in payloads:
            out.extend(payload)
    return bytes(out)


def decode(data: bytes, offset: int = 0) -> List[int]:
    """Decode a delta-binary-packed stream produced by :func:`encode`."""
    position = offset
    block_size, position = decode_uvarint(data, position)
    miniblocks, position = decode_uvarint(data, position)
    if block_size <= 0 or miniblocks <= 0 or block_size % miniblocks:
        raise EncodingError("corrupt delta header")
    miniblock_size = block_size // miniblocks
    count, position = decode_uvarint(data, position)
    if count == 0:
        return []
    first, position = decode_svarint(data, position)
    values = [first]
    remaining = count - 1
    while remaining > 0:
        min_delta, position = decode_svarint(data, position)
        widths = list(data[position:position + miniblocks])
        position += miniblocks
        deltas: List[int] = []
        for width in widths:
            chunk = bitpacking.unpack(data, width, miniblock_size, position)
            position += bitpacking.packed_size(miniblock_size, width)
            deltas.extend(chunk)
        for delta in deltas[:remaining]:
            values.append(values[-1] + delta + min_delta)
        remaining -= min(remaining, block_size)
    return values
