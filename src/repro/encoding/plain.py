"""PLAIN encodings: fixed-width integers/doubles, length-prefixed strings, booleans.

These are the fallback encodings (Parquet PLAIN) and the reference point for
measuring how much the smarter encodings save.
"""

from __future__ import annotations

import struct
from typing import List, Sequence

from ..model.errors import EncodingError
from .varint import decode_uvarint, encode_uvarint


def encode_int64(values: Sequence[int]) -> bytes:
    """Encode 64-bit signed integers little endian."""
    try:
        return struct.pack(f"<{len(values)}q", *values)
    except struct.error as exc:
        raise EncodingError(f"int64 out of range: {exc}") from exc


def decode_int64(data: bytes, count: int, offset: int = 0) -> List[int]:
    """Decode ``count`` 64-bit signed integers."""
    end = offset + 8 * count
    if end > len(data):
        raise EncodingError("truncated int64 payload")
    return list(struct.unpack_from(f"<{count}q", data, offset))


def encode_double(values: Sequence[float]) -> bytes:
    """Encode IEEE-754 doubles little endian."""
    return struct.pack(f"<{len(values)}d", *values)


def decode_double(data: bytes, count: int, offset: int = 0) -> List[float]:
    """Decode ``count`` doubles."""
    end = offset + 8 * count
    if end > len(data):
        raise EncodingError("truncated double payload")
    return list(struct.unpack_from(f"<{count}d", data, offset))


def encode_boolean(values: Sequence[bool]) -> bytes:
    """Encode booleans packed one bit each (LSB first)."""
    out = bytearray((len(values) + 7) // 8)
    for index, value in enumerate(values):
        if value:
            out[index >> 3] |= 1 << (index & 7)
    return bytes(out)


def decode_boolean(data: bytes, count: int, offset: int = 0) -> List[bool]:
    """Decode ``count`` bit-packed booleans."""
    if offset + (count + 7) // 8 > len(data):
        raise EncodingError("truncated boolean payload")
    return [bool(data[offset + (i >> 3)] >> (i & 7) & 1) for i in range(count)]


def encode_strings(values: Sequence[str]) -> bytes:
    """Encode strings as ULEB128 length + UTF-8 bytes."""
    out = bytearray()
    for value in values:
        raw = value.encode("utf-8")
        encode_uvarint(len(raw), out)
        out.extend(raw)
    return bytes(out)


def decode_strings(data: bytes, count: int, offset: int = 0) -> List[str]:
    """Decode ``count`` length-prefixed UTF-8 strings."""
    values: List[str] = []
    position = offset
    for _ in range(count):
        length, position = decode_uvarint(data, position)
        end = position + length
        if end > len(data):
            raise EncodingError("truncated string payload")
        values.append(data[position:end].decode("utf-8"))
        position = end
    return values
