"""Bit-packing of small unsigned integers.

Packs each value into ``bit_width`` bits, LSB-first within each byte, matching
Parquet's bit-packed run layout.  A bit width of zero packs to zero bytes (all
values are implicitly zero), which is how all-zero definition levels collapse
to nothing.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model.errors import EncodingError


def bit_width_for(max_value: int) -> int:
    """Number of bits needed to represent ``max_value`` (0 needs 0 bits)."""
    if max_value < 0:
        raise EncodingError("bit width undefined for negative values")
    return max_value.bit_length()


def pack(values: Sequence[int], bit_width: int) -> bytes:
    """Bit-pack ``values`` using ``bit_width`` bits per value."""
    if bit_width == 0:
        return b""
    limit = 1 << bit_width
    buffer = 0
    bits_in_buffer = 0
    out = bytearray()
    for value in values:
        if value < 0 or value >= limit:
            raise EncodingError(
                f"value {value} does not fit in {bit_width} bits"
            )
        buffer |= value << bits_in_buffer
        bits_in_buffer += bit_width
        while bits_in_buffer >= 8:
            out.append(buffer & 0xFF)
            buffer >>= 8
            bits_in_buffer -= 8
    if bits_in_buffer:
        out.append(buffer & 0xFF)
    return bytes(out)


def unpack(data: bytes, bit_width: int, count: int, offset: int = 0) -> List[int]:
    """Unpack ``count`` values of ``bit_width`` bits starting at byte ``offset``."""
    if bit_width == 0:
        return [0] * count
    mask = (1 << bit_width) - 1
    values: List[int] = []
    buffer = 0
    bits_in_buffer = 0
    position = offset
    for _ in range(count):
        while bits_in_buffer < bit_width:
            if position >= len(data):
                raise EncodingError("truncated bit-packed run")
            buffer |= data[position] << bits_in_buffer
            position += 1
            bits_in_buffer += 8
        values.append(buffer & mask)
        buffer >>= bit_width
        bits_in_buffer -= bit_width
    return values


def packed_size(count: int, bit_width: int) -> int:
    """Number of bytes produced by packing ``count`` values."""
    return (count * bit_width + 7) // 8
