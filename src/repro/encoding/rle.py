"""RLE / bit-packing hybrid encoding (Parquet's RLE encoding).

The hybrid stream is a sequence of runs.  Each run starts with a ULEB128
header ``h``:

* if ``h & 1 == 0`` the run is an *RLE run*: ``h >> 1`` repetitions of a single
  value stored in ``ceil(bit_width / 8)`` bytes (little endian);
* if ``h & 1 == 1`` the run is a *bit-packed run*: ``h >> 1`` groups of 8
  values, bit-packed with ``bit_width`` bits each.

This is the encoding used for definition levels (and delimiters) in both the
APAX and AMAX layouts, and as the dictionary-free fallback for small-domain
integer columns.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model.errors import EncodingError
from . import bitpacking
from .varint import decode_uvarint, encode_uvarint

#: Minimum length of a repeated value before we emit an RLE run instead of
#: folding the values into the current bit-packed group.
_MIN_RLE_RUN = 8


def encode(values: Sequence[int], bit_width: int) -> bytes:
    """Encode non-negative integers with the RLE / bit-packed hybrid."""
    out = bytearray()
    if not values:
        return bytes(out)
    if bit_width == 0:
        # All values are zero; a single RLE run covers everything.
        encode_uvarint(len(values) << 1, out)
        return bytes(out)

    value_byte_width = (bit_width + 7) // 8
    index = 0
    total = len(values)
    pending: List[int] = []

    def flush_pending() -> None:
        """Emit the buffered non-run values as bit-packed groups of 8.

        Padding to a whole group of 8 is only legal at the very end of the
        stream (the decoder drops the excess values there); mid-stream flushes
        are therefore only performed when the pending buffer length is a
        multiple of 8 — the encoding loop below guarantees that.
        """
        if not pending:
            return
        groups = (len(pending) + 7) // 8
        padded = list(pending) + [0] * (groups * 8 - len(pending))
        encode_uvarint((groups << 1) | 1, out)
        out.extend(bitpacking.pack(padded, bit_width))
        pending.clear()

    while index < total:
        value = values[index]
        run_length = 1
        while index + run_length < total and values[index + run_length] == value:
            run_length += 1
        if run_length >= _MIN_RLE_RUN:
            # Top the pending buffer up to an 8-value boundary before flushing
            # so that no padding values are injected mid-stream.
            boundary_fill = (-len(pending)) % 8
            if boundary_fill:
                take = min(boundary_fill, run_length)
                pending.extend([value] * take)
                index += take
                run_length -= take
                if len(pending) % 8 or run_length < _MIN_RLE_RUN:
                    pending.extend(values[index:index + run_length])
                    index += run_length
                    continue
            flush_pending()
            encode_uvarint(run_length << 1, out)
            out.extend(int(value).to_bytes(value_byte_width, "little"))
            index += run_length
        else:
            pending.extend(values[index:index + run_length])
            index += run_length
    flush_pending()
    return bytes(out)


def decode(data: bytes, bit_width: int, count: int, offset: int = 0) -> List[int]:
    """Decode ``count`` values from an RLE / bit-packed hybrid stream."""
    values: List[int] = []
    position = offset
    if bit_width == 0:
        return [0] * count
    value_byte_width = (bit_width + 7) // 8
    while len(values) < count:
        if position >= len(data):
            raise EncodingError(
                f"truncated RLE stream: decoded {len(values)} of {count} values"
            )
        header, position = decode_uvarint(data, position)
        if header & 1:
            groups = header >> 1
            packed_bytes = bitpacking.packed_size(groups * 8, bit_width)
            run = bitpacking.unpack(data, bit_width, groups * 8, position)
            position += packed_bytes
            values.extend(run)
        else:
            run_length = header >> 1
            value = int.from_bytes(
                data[position:position + value_byte_width], "little"
            )
            position += value_byte_width
            values.extend([value] * run_length)
    del values[count:]
    return values


def encoded_with_width(values: Sequence[int]) -> tuple[bytes, int]:
    """Encode and return ``(payload, bit_width)`` computed from the maximum value."""
    max_value = max(values) if values else 0
    width = bitpacking.bit_width_for(max_value)
    return encode(values, width), width
