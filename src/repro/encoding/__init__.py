"""Parquet-style value encodings and page compression codecs."""

from . import bitpacking, delta, delta_string, plain, rle, varint
from .compression import (
    Codec,
    NoopCodec,
    SnappyLikeCodec,
    ZlibCodec,
    get_codec,
    register_codec,
)
from .registry import (
    ENC_BOOLEAN_BITPACK,
    ENC_DELTA,
    ENC_DELTA_LENGTH,
    ENC_DELTA_STRINGS,
    ENC_NONE,
    ENC_PLAIN,
    ENC_RLE_INT,
    ENCODING_NAMES,
    decode_values,
    encode_values,
)

__all__ = [
    "Codec",
    "NoopCodec",
    "SnappyLikeCodec",
    "ZlibCodec",
    "get_codec",
    "register_codec",
    "bitpacking",
    "delta",
    "delta_string",
    "plain",
    "rle",
    "varint",
    "ENC_BOOLEAN_BITPACK",
    "ENC_DELTA",
    "ENC_DELTA_LENGTH",
    "ENC_DELTA_STRINGS",
    "ENC_NONE",
    "ENC_PLAIN",
    "ENC_RLE_INT",
    "ENCODING_NAMES",
    "decode_values",
    "encode_values",
]
