"""Variable-length integer primitives (ULEB128) and ZigZag mapping.

These are the low-level building blocks shared by the Parquet-style encoders:
unsigned LEB128 for lengths and counts, and ZigZag to map signed integers to
unsigned ones before delta/bit-packing.
"""

from __future__ import annotations

from ..model.errors import EncodingError


def encode_uvarint(value: int, out: bytearray) -> None:
    """Append the ULEB128 encoding of a non-negative integer to ``out``."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def decode_uvarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a ULEB128 integer starting at ``offset``.

    Returns ``(value, new_offset)``.
    """
    result = 0
    shift = 0
    position = offset
    while True:
        if position >= len(data):
            raise EncodingError("truncated uvarint")
        byte = data[position]
        position += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, position
        shift += 7
        if shift > 70:
            raise EncodingError("uvarint too long")


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto an unsigned one (small magnitudes stay small)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


def encode_svarint(value: int, out: bytearray) -> None:
    """Append a ZigZag + ULEB128 encoded signed integer."""
    encode_uvarint(zigzag_encode(value), out)


def decode_svarint(data: bytes, offset: int) -> tuple[int, int]:
    """Decode a ZigZag + ULEB128 signed integer; returns ``(value, new_offset)``."""
    raw, offset = decode_uvarint(data, offset)
    return zigzag_decode(raw), offset
