"""Delta string encodings.

Two Parquet-style encodings for byte-array (string) columns:

* ``DELTA_LENGTH_BYTE_ARRAY``: all string lengths are delta-binary-packed in a
  header, followed by the concatenated UTF-8 payloads.  Decoding a value does
  not require scanning the previous values' bytes.
* ``DELTA_BYTE_ARRAY`` (a.k.a. *delta strings* / incremental encoding): each
  value stores the length of the prefix shared with the previous value plus
  its suffix.  Sorted or templated strings (URLs, timestamps-as-text, country
  names) compress well.
"""

from __future__ import annotations

from typing import List, Sequence

from ..model.errors import EncodingError
from . import delta
from .varint import decode_uvarint, encode_uvarint


def encode_delta_length(values: Sequence[str]) -> bytes:
    """DELTA_LENGTH_BYTE_ARRAY: delta-packed lengths, then concatenated bytes."""
    raw_values = [value.encode("utf-8") for value in values]
    lengths = delta.encode([len(raw) for raw in raw_values])
    out = bytearray()
    encode_uvarint(len(lengths), out)
    out.extend(lengths)
    for raw in raw_values:
        out.extend(raw)
    return bytes(out)


def decode_delta_length(data: bytes, count: int, offset: int = 0) -> List[str]:
    """Decode DELTA_LENGTH_BYTE_ARRAY."""
    header_size, position = decode_uvarint(data, offset)
    lengths = delta.decode(data, position)
    if len(lengths) != count:
        raise EncodingError(
            f"delta-length header has {len(lengths)} lengths, expected {count}"
        )
    position += header_size
    values: List[str] = []
    for length in lengths:
        end = position + length
        if end > len(data):
            raise EncodingError("truncated delta-length payload")
        values.append(data[position:end].decode("utf-8"))
        position = end
    return values


def _shared_prefix_length(left: bytes, right: bytes) -> int:
    limit = min(len(left), len(right))
    index = 0
    while index < limit and left[index] == right[index]:
        index += 1
    return index


def encode_delta_strings(values: Sequence[str]) -> bytes:
    """DELTA_BYTE_ARRAY: prefix lengths + suffix lengths (delta packed) + suffixes."""
    raw_values = [value.encode("utf-8") for value in values]
    prefix_lengths: List[int] = []
    suffixes: List[bytes] = []
    previous = b""
    for raw in raw_values:
        prefix = _shared_prefix_length(previous, raw)
        prefix_lengths.append(prefix)
        suffixes.append(raw[prefix:])
        previous = raw
    prefix_block = delta.encode(prefix_lengths)
    suffix_block = delta.encode([len(suffix) for suffix in suffixes])
    out = bytearray()
    encode_uvarint(len(prefix_block), out)
    out.extend(prefix_block)
    encode_uvarint(len(suffix_block), out)
    out.extend(suffix_block)
    for suffix in suffixes:
        out.extend(suffix)
    return bytes(out)


def decode_delta_strings(data: bytes, count: int, offset: int = 0) -> List[str]:
    """Decode DELTA_BYTE_ARRAY."""
    prefix_size, position = decode_uvarint(data, offset)
    prefix_lengths = delta.decode(data, position)
    position += prefix_size
    suffix_size, position2 = decode_uvarint(data, position)
    suffix_lengths = delta.decode(data, position2)
    position = position2 + suffix_size
    if len(prefix_lengths) != count or len(suffix_lengths) != count:
        raise EncodingError("delta-strings header count mismatch")
    values: List[str] = []
    previous = b""
    for prefix_length, suffix_length in zip(prefix_lengths, suffix_lengths):
        end = position + suffix_length
        if end > len(data):
            raise EncodingError("truncated delta-strings payload")
        raw = previous[:prefix_length] + data[position:end]
        values.append(raw.decode("utf-8"))
        previous = raw
        position = end
    return values
