"""Page-level compression codecs.

The paper's evaluation enables AsterixDB page-level compression with Snappy
for every layout.  Snappy itself is not available offline, so we provide:

* :class:`SnappyLikeCodec` — a pure-Python byte-oriented LZ77 variant with a
  Snappy-like format (literal runs + back-references with a 64 KiB window).
  It is intentionally simple; what matters for the reproduction is the
  *relative* compressibility of row-major pages (field names repeated in every
  record) versus columnar pages (already-encoded homogeneous values).
* :class:`ZlibCodec` — stdlib zlib, for users who prefer a stronger codec.
* :class:`NoopCodec` — disables compression.

Codecs are looked up by name through :func:`get_codec`.
"""

from __future__ import annotations

import zlib
from typing import Dict, Protocol

from ..model.errors import EncodingError
from .varint import decode_uvarint, encode_uvarint

_WINDOW = 1 << 16
_MIN_MATCH = 4
_MAX_MATCH = 64
_HASH_BYTES = 4


class Codec(Protocol):
    """Protocol implemented by all page codecs."""

    name: str

    def compress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...

    def decompress(self, data: bytes) -> bytes:  # pragma: no cover - protocol
        ...


class NoopCodec:
    """Identity codec."""

    name = "none"

    def compress(self, data: bytes) -> bytes:
        return bytes(data)

    def decompress(self, data: bytes) -> bytes:
        return bytes(data)


class ZlibCodec:
    """zlib (DEFLATE) codec at a fast compression level."""

    name = "zlib"

    def __init__(self, level: int = 1) -> None:
        self.level = level

    def compress(self, data: bytes) -> bytes:
        return zlib.compress(data, self.level)

    def decompress(self, data: bytes) -> bytes:
        return zlib.decompress(data)


class SnappyLikeCodec:
    """A greedy LZ77 codec with a Snappy-flavoured token stream.

    Token stream: ``[uncompressed_length uvarint]`` then tokens; each token is
    a uvarint ``t``: if ``t & 1 == 0`` it is a literal run of ``t >> 1`` bytes
    that follow verbatim, otherwise it is a copy of ``(t >> 1) copy-length``
    bytes starting at a uvarint back-distance.
    """

    name = "snappy"

    def compress(self, data: bytes) -> bytes:
        out = bytearray()
        encode_uvarint(len(data), out)
        length = len(data)
        if length == 0:
            return bytes(out)
        table: Dict[bytes, int] = {}
        position = 0
        literal_start = 0

        def flush_literals(end: int) -> None:
            run = end - literal_start
            if run <= 0:
                return
            encode_uvarint(run << 1, out)
            out.extend(data[literal_start:end])

        while position + _HASH_BYTES <= length:
            key = data[position:position + _HASH_BYTES]
            candidate = table.get(key)
            table[key] = position
            if candidate is not None and position - candidate <= _WINDOW:
                match_length = _HASH_BYTES
                limit = min(_MAX_MATCH, length - position)
                while (
                    match_length < limit
                    and data[candidate + match_length] == data[position + match_length]
                ):
                    match_length += 1
                flush_literals(position)
                encode_uvarint((match_length << 1) | 1, out)
                encode_uvarint(position - candidate, out)
                position += match_length
                literal_start = position
            else:
                position += 1
        flush_literals(length)
        return bytes(out)

    def decompress(self, data: bytes) -> bytes:
        expected, position = decode_uvarint(data, 0)
        out = bytearray()
        while len(out) < expected:
            if position >= len(data):
                raise EncodingError("truncated snappy-like stream")
            token, position = decode_uvarint(data, position)
            size = token >> 1
            if token & 1:
                distance, position = decode_uvarint(data, position)
                if distance <= 0 or distance > len(out):
                    raise EncodingError("invalid back-reference")
                start = len(out) - distance
                for index in range(size):
                    out.append(out[start + index])
            else:
                end = position + size
                if end > len(data):
                    raise EncodingError("truncated literal run")
                out.extend(data[position:end])
                position = end
        if len(out) != expected:
            raise EncodingError("snappy-like length mismatch")
        return bytes(out)


_CODECS: Dict[str, Codec] = {
    "none": NoopCodec(),
    "zlib": ZlibCodec(),
    "snappy": SnappyLikeCodec(),
}


def get_codec(name: str) -> Codec:
    """Return a codec by name (``"none"``, ``"zlib"``, ``"snappy"``)."""
    try:
        return _CODECS[name]
    except KeyError as exc:
        raise EncodingError(f"unknown compression codec {name!r}") from exc


def register_codec(codec: Codec) -> None:
    """Register a custom codec (used by tests and extensions)."""
    _CODECS[codec.name] = codec
