"""Value-encoding registry.

A columnar minipage/megapage stores, for one column, an encoded definition
level stream plus an encoded value stream.  This module selects a value
encoding per atomic type (mirroring Parquet's encoder selection, §4.1 of the
paper: bit-packing, RLE, delta, delta strings — everything except dictionary
encoding) and serializes the choice so readers can pick the right decoder.

The chooser is size-driven: candidate encodings are produced and the smallest
payload wins, which reproduces the paper's observation that encoding helps a
lot for numeric domains and much less (sometimes negatively, once per-column
overheads are included) for long text values.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..model.errors import EncodingError
from ..model.values import (
    TYPE_BOOLEAN,
    TYPE_DOUBLE,
    TYPE_INT64,
    TYPE_NULL,
    TYPE_STRING,
)
from . import delta, delta_string, plain, rle

# Encoding identifiers (stable on-page byte values).
ENC_PLAIN = 0
ENC_DELTA = 1
ENC_DELTA_LENGTH = 2
ENC_DELTA_STRINGS = 3
ENC_RLE_INT = 4
ENC_BOOLEAN_BITPACK = 5
ENC_NONE = 6

ENCODING_NAMES = {
    ENC_PLAIN: "plain",
    ENC_DELTA: "delta",
    ENC_DELTA_LENGTH: "delta_length",
    ENC_DELTA_STRINGS: "delta_strings",
    ENC_RLE_INT: "rle",
    ENC_BOOLEAN_BITPACK: "boolean",
    ENC_NONE: "none",
}


def _encode_int64_candidates(values: Sequence[int]) -> List[Tuple[int, bytes]]:
    candidates = [(ENC_PLAIN, plain.encode_int64(values))]
    try:
        candidates.append((ENC_DELTA, delta.encode(values)))
    except EncodingError:
        pass
    non_negative = all(value >= 0 for value in values) if values else True
    if non_negative and values:
        payload, width = rle.encoded_with_width(values)
        # Prefix the bit width so the decoder can reconstruct values.
        candidates.append((ENC_RLE_INT, bytes([width]) + payload))
    return candidates


def _encode_string_candidates(values: Sequence[str]) -> List[Tuple[int, bytes]]:
    return [
        (ENC_PLAIN, plain.encode_strings(values)),
        (ENC_DELTA_LENGTH, delta_string.encode_delta_length(values)),
        (ENC_DELTA_STRINGS, delta_string.encode_delta_strings(values)),
    ]


def encode_values(type_tag: str, values: Sequence) -> Tuple[int, bytes]:
    """Encode a column's present values; returns ``(encoding_id, payload)``."""
    if type_tag == TYPE_NULL or not values:
        return ENC_NONE, b""
    if type_tag == TYPE_INT64:
        candidates = _encode_int64_candidates(values)
    elif type_tag == TYPE_DOUBLE:
        candidates = [(ENC_PLAIN, plain.encode_double(values))]
    elif type_tag == TYPE_STRING:
        candidates = _encode_string_candidates(values)
    elif type_tag == TYPE_BOOLEAN:
        candidates = [(ENC_BOOLEAN_BITPACK, plain.encode_boolean(values))]
    else:
        raise EncodingError(f"cannot encode values of type {type_tag!r}")
    return min(candidates, key=lambda item: len(item[1]))


_DECODERS: Dict[Tuple[str, int], Callable[[bytes, int], list]] = {
    (TYPE_INT64, ENC_PLAIN): lambda data, count: plain.decode_int64(data, count),
    (TYPE_INT64, ENC_DELTA): lambda data, count: delta.decode(data),
    (TYPE_INT64, ENC_RLE_INT): lambda data, count: rle.decode(data[1:], data[0], count)
    if count
    else [],
    (TYPE_DOUBLE, ENC_PLAIN): lambda data, count: plain.decode_double(data, count),
    (TYPE_STRING, ENC_PLAIN): lambda data, count: plain.decode_strings(data, count),
    (TYPE_STRING, ENC_DELTA_LENGTH): lambda data, count: delta_string.decode_delta_length(
        data, count
    ),
    (TYPE_STRING, ENC_DELTA_STRINGS): lambda data, count: delta_string.decode_delta_strings(
        data, count
    ),
    (TYPE_BOOLEAN, ENC_BOOLEAN_BITPACK): lambda data, count: plain.decode_boolean(
        data, count
    ),
}


def decode_values(type_tag: str, encoding_id: int, payload: bytes, count: int) -> list:
    """Decode ``count`` values previously produced by :func:`encode_values`."""
    if encoding_id == ENC_NONE or count == 0:
        if type_tag == TYPE_NULL:
            return [None] * count
        return []
    try:
        decoder = _DECODERS[(type_tag, encoding_id)]
    except KeyError as exc:
        raise EncodingError(
            f"no decoder for type {type_tag!r} / encoding "
            f"{ENCODING_NAMES.get(encoding_id, encoding_id)!r}"
        ) from exc
    values = decoder(payload, count)
    if len(values) != count:
        raise EncodingError(
            f"decoded {len(values)} values, expected {count} "
            f"({type_tag}/{ENCODING_NAMES.get(encoding_id)})"
        )
    return values
