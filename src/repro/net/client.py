"""Blocking wire client: one TCP connection speaking the frame protocol.

Used by the shell's ``--connect`` mode, the shard coordinator (one pooled
connection per shard), and the benchmarks.  A client is *not* thread-safe —
one request/response exchange at a time; the coordinator pools clients and
checks them out exclusively.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..model.errors import ReproError
from .protocol import check_hello, decode_body, encode_frame, frame_length, HEADER

#: Default per-read socket timeout; generous so slow differential-test hosts
#: fail loud instead of flaking, while a hung server still surfaces.
DEFAULT_TIMEOUT = 120.0


class RemoteError(ReproError):
    """A statement failed on the server; carries the remote error class name
    and, when the server tagged the request, the ``query_id`` to correlate
    the failure with server-side traces and slow-query-log entries."""

    def __init__(
        self,
        message: str,
        code: str = "ReproError",
        query_id: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.query_id = query_id


@dataclass
class StatementResult:
    """One request's full response: streamed rows plus the done frame."""

    rows: List[object] = field(default_factory=list)
    done: dict = field(default_factory=dict)
    notices: List[str] = field(default_factory=list)

    @property
    def status(self) -> Optional[str]:
        return self.done.get("status")

    @property
    def sequence(self) -> Optional[int]:
        return self.done.get("sequence")

    @property
    def io(self) -> dict:
        return self.done.get("io") or {}

    @property
    def query_id(self) -> Optional[str]:
        return self.done.get("query_id")

    @property
    def trace(self) -> Optional[dict]:
        """Serialized span tree from the done frame (when traced)."""
        return self.done.get("trace")


class WireClient:
    """A connected client with the handshake already exchanged."""

    def __init__(
        self, host: str, port: int, timeout: float = DEFAULT_TIMEOUT
    ) -> None:
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._closed = False
        self.server_hello = check_hello(self._read_frame(), "server")
        self._send({"type": "hello", "version": self.server_hello["version"]})

    # -- framing -----------------------------------------------------------------------
    def _send(self, payload: dict) -> None:
        try:
            self._sock.sendall(encode_frame(payload))
        except OSError as exc:
            raise RemoteError(
                f"connection to {self.host}:{self.port} lost: {exc}",
                code="ConnectionError",
            )

    def _read_exact(self, size: int) -> Optional[bytes]:
        chunks = []
        remaining = size
        while remaining:
            try:
                chunk = self._sock.recv(remaining)
            except socket.timeout as exc:
                raise RemoteError(
                    f"timed out waiting for {self.host}:{self.port}",
                    code="ConnectionError",
                ) from exc
            except OSError as exc:
                raise RemoteError(
                    f"connection to {self.host}:{self.port} lost: {exc}",
                    code="ConnectionError",
                ) from exc
            if not chunk:
                if chunks:
                    raise RemoteError(
                        f"connection to {self.host}:{self.port} closed mid-frame",
                        code="ConnectionError",
                    )
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _read_frame(self) -> Optional[dict]:
        header = self._read_exact(HEADER.size)
        if header is None:
            return None
        return decode_body(self._read_exact(frame_length(header)))

    # -- requests ----------------------------------------------------------------------
    def request(
        self, payload: dict, on_notice: Optional[Callable[[str], None]] = None
    ) -> StatementResult:
        """Send one request and consume its response stream.

        ``rows`` frames accumulate into the result; ``notice`` frames are
        collected (and passed to ``on_notice`` when given); an ``error``
        frame raises :class:`RemoteError` with the server's message.
        """
        self._send(payload)
        result = StatementResult()
        while True:
            frame = self._read_frame()
            if frame is None:
                raise RemoteError(
                    f"server {self.host}:{self.port} closed the connection "
                    "before answering",
                    code="ConnectionError",
                )
            kind = frame.get("type")
            if kind == "rows":
                result.rows.extend(frame.get("rows", []))
            elif kind == "notice":
                message = frame.get("message", "")
                result.notices.append(message)
                if on_notice is not None:
                    on_notice(message)
            elif kind == "done":
                result.done = frame
                return result
            elif kind == "error":
                raise RemoteError(
                    frame.get("error", "unknown server error"),
                    code=frame.get("code", "ReproError"),
                    query_id=frame.get("query_id"),
                )
            elif kind == "goodbye":
                raise RemoteError(
                    f"server {self.host}:{self.port} is shutting down: "
                    f"{frame.get('reason', '')}",
                    code="ServerShutdown",
                )
            else:
                raise RemoteError(f"unexpected frame type {kind!r} from server")

    # -- convenience ops ---------------------------------------------------------------
    def statement(
        self,
        text: str,
        executor: str = "codegen",
        mode: str = "full",
        pushdown: bool = True,
        batch_size: Optional[int] = None,
        explain: bool = False,
        trace: bool = False,
        query_id: Optional[str] = None,
        on_notice: Optional[Callable[[str], None]] = None,
    ) -> StatementResult:
        payload = {
            "op": "statement",
            "text": text,
            "executor": executor,
            "mode": mode,
            "pushdown": pushdown,
        }
        if explain:
            payload["explain"] = True
        if trace:
            payload["trace"] = True
        if query_id is not None:
            payload["query_id"] = query_id
        if batch_size is not None:
            payload["batch_size"] = batch_size
        return self.request(payload, on_notice=on_notice)

    def explain(self, text: str, executor: str = "codegen") -> str:
        return self.request({"op": "explain", "text": text, "executor": executor}).done[
            "text"
        ]

    def create_dataset(
        self,
        name: str,
        layout: str = "amax",
        primary_key_field: Optional[str] = None,
    ) -> None:
        self.request(
            {
                "op": "create_dataset",
                "name": name,
                "layout": layout,
                "primary_key_field": primary_key_field,
            }
        )

    def insert(self, dataset: str, documents: List[dict]) -> StatementResult:
        return self.request(
            {"op": "insert", "dataset": dataset, "documents": documents}
        )

    def delete(self, dataset: str, key) -> StatementResult:
        return self.request({"op": "delete", "dataset": dataset, "key": key})

    def lookup(self, dataset: str, key, fields: Optional[List[str]] = None):
        result = self.request(
            {"op": "lookup", "dataset": dataset, "key": key, "fields": fields}
        )
        return result.done.get("document")

    def count(self, dataset: str) -> int:
        return self.request({"op": "count", "dataset": dataset}).done["count"]

    def list_datasets(self) -> List[dict]:
        return self.request({"op": "list_datasets"}).rows

    def checkpoint(self) -> None:
        self.request({"op": "checkpoint"})

    def recovery_info(self) -> Optional[dict]:
        return self.request({"op": "recovery_info"}).done.get("recovery")

    def metrics(self) -> str:
        """The server's metrics in Prometheus text exposition format."""
        return self.request({"op": "metrics"}).done.get("text", "")

    def ping(self) -> None:
        self.request({"op": "ping"})

    def shutdown(self) -> None:
        """Ask the server to shut down gracefully (drain, rollback, close)."""
        self.request({"op": "shutdown"})

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WireClient":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
