"""Asyncio wire server: many concurrent clients over one statement backend.

The server owns the sockets and the frame protocol; *what* a request does is
delegated to a per-connection session handler produced by a factory — the
:class:`EngineSessionHandler` here (one snapshot-isolated
:class:`~repro.store.datastore.Datastore` shared by every connection), or
the coordinator-mode handler from :mod:`repro.shard.coordinator`.

Concurrency model: the asyncio loop multiplexes connections; each request's
(blocking, GIL-releasing on I/O) execution is offloaded to a thread pool, so
many clients' statements genuinely overlap on the engine's thread-safe
snapshot/commit machinery.  Requests on one connection stay strictly
ordered — a session's transaction state needs no extra locking.

Graceful shutdown (SIGTERM/SIGINT or a client ``shutdown`` op): the server
stops accepting connections, rejects new statements, drains in-flight ones,
rolls back every session's open transaction — sending each client the same
rollback notice the shell prints — and finally closes the backend store
through its checkpoint path, so a restarted shard replays an empty WAL tail.
"""

from __future__ import annotations

import asyncio
import signal
import sys
import traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict
from typing import Callable, List, Optional, Tuple

from ..model.errors import ReproError
from ..obs import MetricsRegistry, new_query_id
from .protocol import (
    HEADER,
    ROWS_PER_FRAME,
    WireError,
    check_hello,
    decode_body,
    encode_frame,
    frame_length,
    hello_frame,
)
from .session import StatementSession

#: Default size of the statement-execution thread pool.
DEFAULT_EXECUTOR_WORKERS = 8

#: Default seconds to wait for in-flight statements during shutdown.
DEFAULT_DRAIN_TIMEOUT = 10.0


class EngineSessionHandler:
    """Request handler for one connection against a local datastore.

    ``handle`` runs on a worker thread; it returns ``(rows, done_payload)``
    where ``rows`` is None for status-only responses.  Statement-level I/O is
    measured as a delta over the store's shared device counters, so the done
    frame reports the pages the statement touched (including parallel
    scan-pool workers; overlapping statements may overcount, never
    undercount).
    """

    def __init__(self, store) -> None:
        self.store = store
        self.session = StatementSession(store)
        #: The in-flight request's query identifier — the dispatch loop reads
        #: it when building error frames, so failures correlate with traces.
        self.current_query_id: Optional[str] = None

    # -- dispatch ----------------------------------------------------------------------
    def handle(self, request: dict) -> Tuple[Optional[list], dict]:
        op = request.get("op", "statement")
        self.current_query_id = request.get("query_id") or new_query_id()
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise WireError(f"unknown request op {op!r}")
        rows, done = handler(request)
        done.setdefault("query_id", self.current_query_id)
        return rows, done

    def close(self) -> Optional[str]:
        """End the session; returns the open-transaction rollback notice."""
        return self.session.close()

    # -- ops ---------------------------------------------------------------------------
    def _op_statement(self, request: dict) -> Tuple[Optional[list], dict]:
        text = request["text"]
        executor = request.get("executor", "codegen")
        pushdown = request.get("pushdown", True)
        batch_size = request.get("batch_size")
        before = self.store.io_snapshot()
        if request.get("mode", "full") == "partial":
            # Shard-side fragments are always traced: the coordinator stitches
            # the returned span tree under its own scatter span.
            with self.store.traced_statement(
                text, executor=executor, query_id=self.current_query_id
            ) as trace:
                rows = self._partial_rows(text, executor, pushdown, batch_size)
            status = sequence = explain_text = None
            trace_dict = trace.to_dict() if trace is not None else None
        else:
            outcome = self.session.execute(
                text,
                executor=executor,
                explain=request.get("explain", False),
                pushdown=pushdown,
                batch_size=batch_size,
                query_id=self.current_query_id,
            )
            rows = outcome.rows
            status = outcome.status
            sequence = outcome.sequence
            explain_text = outcome.explain_text
            trace_dict = outcome.trace if request.get("trace") else None
        delta = self.store.io_stats.delta_since(before)
        done = {"type": "done", "io": delta.as_dict()}
        if trace_dict is not None:
            done["trace"] = trace_dict
        if rows is not None:
            done["result"] = "rows"
            done["rows_returned"] = len(rows)
        else:
            done["result"] = "status"
            done["status"] = status
        if sequence is not None:
            done["sequence"] = sequence
        if explain_text is not None:
            done["explain"] = explain_text
        return rows, done

    def _partial_rows(
        self, text: str, executor: str, pushdown: bool, batch_size
    ) -> list:
        """Execute the shard-local fragment of a scatter-gather statement.

        Coordinator and shard derive the *same* split from the statement text
        (:func:`repro.shard.partial.split_query` is deterministic), so no
        plan serialization crosses the wire — only SQL++ text and partial
        rows.
        """
        from ..model.errors import QueryError
        from ..shard.partial import split_query
        from ..sqlpp import compile_query

        compiled = compile_query(text)
        if compiled.query is None:
            # FROM-less statements are evaluated at the coordinator; answering
            # them here too keeps the op total rather than erroring.
            return compiled.execute(None, executor=executor)
        split = split_query(compiled.query, pk_fields=self._pk_fields())
        if split.kind == "fetch":
            raise QueryError(
                "joins and subqueries run at the coordinator over fetched "
                "datasets; this shard cannot execute a partial fragment"
            )
        return split.local_query.execute(
            self.store, executor=executor, pushdown=pushdown, batch_size=batch_size
        )

    def _pk_fields(self) -> dict:
        """Dataset → primary-key field, for split derivation (co-hashed joins)."""
        return {
            name: dataset.primary_key_field
            for name, dataset in self.store.datasets.items()
        }

    def _op_explain(self, request: dict) -> Tuple[Optional[list], dict]:
        if request.get("mode") == "partial":
            # Distributed EXPLAIN: render the plan of this shard's *local
            # fragment* (the coordinator glues on the merge fragment).
            from ..shard.partial import split_query
            from ..sqlpp import compile_query

            compiled = compile_query(request["text"])
            if compiled.query is None:
                text = compiled.explain(None)
            elif (
                split := split_query(compiled.query, pk_fields=self._pk_fields())
            ).kind == "fetch":
                text = "FETCH (executed at the coordinator; no shard fragment)"
            else:
                text = split.local_query.explain(
                    self.store,
                    executor=request.get("executor", "codegen"),
                    analyze=request.get("analyze", False),
                )
            return None, {"type": "done", "text": text}
        text = self.store.explain(
            request["text"],
            executor=request.get("executor", "codegen"),
            analyze=request.get("analyze", False),
        )
        return None, {"type": "done", "text": text}

    def _op_create_dataset(self, request: dict) -> Tuple[Optional[list], dict]:
        self.store.create_dataset(
            request["name"],
            layout=request.get("layout", "amax"),
            primary_key_field=request.get("primary_key_field"),
        )
        return None, {"type": "done"}

    def _op_insert(self, request: dict) -> Tuple[Optional[list], dict]:
        dataset = self.store.dataset(request["dataset"])
        before = self.store.io_snapshot()
        sequences: List[Optional[int]] = [
            dataset.insert(document) for document in request["documents"]
        ]
        delta = self.store.io_stats.delta_since(before)
        return None, {
            "type": "done",
            "count": len(sequences),
            "sequence": sequences[-1] if len(sequences) == 1 else None,
            "sequences": sequences,
            "io": delta.as_dict(),
        }

    def _op_delete(self, request: dict) -> Tuple[Optional[list], dict]:
        dataset = self.store.dataset(request["dataset"])
        sequence = dataset.delete(request["key"])
        return None, {"type": "done", "sequence": sequence}

    def _op_lookup(self, request: dict) -> Tuple[Optional[list], dict]:
        dataset = self.store.dataset(request["dataset"])
        before = self.store.io_snapshot()
        document = dataset.point_lookup(request["key"], request.get("fields"))
        delta = self.store.io_stats.delta_since(before)
        return None, {
            "type": "done",
            "found": document is not None,
            "document": document,
            "io": delta.as_dict(),
        }

    def _op_count(self, request: dict) -> Tuple[Optional[list], dict]:
        dataset = self.store.dataset(request["dataset"])
        return None, {"type": "done", "count": dataset.count()}

    def _op_list_datasets(self, request: dict) -> Tuple[Optional[list], dict]:
        rows = [
            {
                "name": name,
                "layout": dataset.layout,
                "records": dataset.count(),
                "primary_key": dataset.primary_key_field,
            }
            for name, dataset in sorted(self.store.datasets.items())
        ]
        return rows, {"type": "done", "result": "rows", "rows_returned": len(rows)}

    def _op_checkpoint(self, request: dict) -> Tuple[Optional[list], dict]:
        self.store.checkpoint()
        return None, {"type": "done"}

    def _op_recovery_info(self, request: dict) -> Tuple[Optional[list], dict]:
        info = self.store.last_recovery
        return None, {
            "type": "done",
            "recovery": None if info is None else asdict(info),
        }

    def _op_metrics(self, request: dict) -> Tuple[Optional[list], dict]:
        """The store's metrics in Prometheus text exposition format."""
        return None, {"type": "done", "text": self.store.metrics_text()}


class _Connection:
    """Per-connection state: streams, session handler, and a write lock."""

    __slots__ = ("reader", "writer", "handler", "write_lock", "closed")

    def __init__(self, reader, writer, handler) -> None:
        self.reader = reader
        self.writer = writer
        self.handler = handler
        self.write_lock = asyncio.Lock()
        self.closed = False


class WireServer:
    """The asyncio server: sockets, handshakes, dispatch, graceful shutdown.

    Args:
        session_factory: Produces one request handler per connection (e.g.
            ``lambda: EngineSessionHandler(store)``).
        host/port: Bind address; port 0 picks a free port (``bound_port``
            holds the real one after :meth:`start`).
        role: Advertised in the hello frame (``"engine"``/``"coordinator"``).
        backend_close: Called once during shutdown, after every session is
            closed — this is where the datastore's checkpoint-and-close runs.
        drain_timeout: Seconds to wait for in-flight statements on shutdown.
        executor_workers: Size of the statement-execution thread pool.
        metrics: Registry to count wire frames/bytes against (typically the
            backend store's); None counts nothing.
    """

    def __init__(
        self,
        session_factory: Callable[[], object],
        host: str = "127.0.0.1",
        port: int = 0,
        role: str = "engine",
        backend_close: Optional[Callable[[], None]] = None,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        executor_workers: int = DEFAULT_EXECUTOR_WORKERS,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._session_factory = session_factory
        registry = metrics if metrics is not None else MetricsRegistry(enabled=False)
        frames = registry.counter("repro_wire_frames_total")
        wire_bytes = registry.counter("repro_wire_bytes_total")
        self._frames_in = frames.labels(direction="in")
        self._frames_out = frames.labels(direction="out")
        self._bytes_in = wire_bytes.labels(direction="in")
        self._bytes_out = wire_bytes.labels(direction="out")
        self.host = host
        self.port = port
        self.role = role
        self._backend_close = backend_close
        self.drain_timeout = drain_timeout
        self._pool = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="wire-exec"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._connections: "set[_Connection]" = set()
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self._draining = False
        self._shutdown_started = False
        self._closed: Optional[asyncio.Event] = None
        self.bound_host: Optional[str] = None
        self.bound_port: Optional[int] = None

    # -- lifecycle ---------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        address = self._server.sockets[0].getsockname()
        self.bound_host, self.bound_port = address[0], address[1]

    async def wait_closed(self) -> None:
        await self._closed.wait()

    async def serve(self) -> None:
        """Start and run until shutdown completes."""
        await self.start()
        await self.wait_closed()

    def install_signal_handlers(self) -> bool:
        """SIGTERM/SIGINT → graceful shutdown; False when unsupported here.

        Signal handlers only attach on the main thread of the main
        interpreter (tests running the server on a side thread shut it down
        via :meth:`request_shutdown` or the ``shutdown`` op instead).
        """
        assert self._loop is not None, "call start() first"
        try:
            for signum in (signal.SIGTERM, signal.SIGINT):
                self._loop.add_signal_handler(
                    signum,
                    self._begin_shutdown,
                    f"received {signal.Signals(signum).name}",
                )
        except (NotImplementedError, RuntimeError, ValueError):
            return False
        return True

    def request_shutdown(self, reason: str = "shutdown requested") -> None:
        """Begin graceful shutdown from any thread."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(self._begin_shutdown, reason)

    def _begin_shutdown(self, reason: str) -> None:
        if self._shutdown_started:
            return
        self._shutdown_started = True
        assert self._loop is not None
        self._loop.create_task(self._shutdown(reason))

    async def _shutdown(self, reason: str) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain: every already-dispatched statement finishes (bounded).
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=self.drain_timeout)
        except asyncio.TimeoutError:
            print(
                f"wire server: drain timed out after {self.drain_timeout}s; "
                "closing with statements in flight",
                file=sys.stderr,
            )
        # Roll back every session's open transaction, telling its client why.
        loop = asyncio.get_running_loop()
        for connection in list(self._connections):
            try:
                notice = await loop.run_in_executor(
                    self._pool, connection.handler.close
                )
            except Exception:  # session teardown must never abort shutdown
                traceback.print_exc()
                notice = None
            if notice:
                await self._send(connection, {"type": "notice", "message": notice})
            await self._send(connection, {"type": "goodbye", "reason": reason})
            self._close_connection(connection)
        if self._backend_close is not None:
            await loop.run_in_executor(None, self._backend_close)
        self._pool.shutdown(wait=False)
        self._closed.set()

    # -- connections -------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        connection = _Connection(reader, writer, self._session_factory())
        self._connections.add(connection)
        try:
            await self._send(
                connection, hello_frame(self.role, server="repro-datastore")
            )
            check_hello(await self._read_frame(reader), "client")
            while True:
                request = await self._read_frame(reader)
                if request is None:
                    break
                await self._dispatch(connection, request)
        except WireError as error:
            await self._send(
                connection,
                {"type": "error", "error": str(error), "code": "WireError"},
            )
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.discard(connection)
            try:
                notice = connection.handler.close()
            except Exception:
                traceback.print_exc()
                notice = None
            if notice:
                await self._send(connection, {"type": "notice", "message": notice})
            self._close_connection(connection)

    async def _read_frame(self, reader) -> Optional[dict]:
        try:
            header = await reader.readexactly(HEADER.size)
            body = await reader.readexactly(frame_length(header))
        except (asyncio.IncompleteReadError, ConnectionResetError):
            return None
        self._frames_in.inc()
        self._bytes_in.inc(HEADER.size + len(body))
        return decode_body(body)

    async def _send(self, connection: _Connection, payload: dict) -> None:
        if connection.closed:
            return
        encoded = encode_frame(payload)
        self._frames_out.inc()
        self._bytes_out.inc(len(encoded))
        async with connection.write_lock:
            try:
                connection.writer.write(encoded)
                await connection.writer.drain()
            except (ConnectionResetError, BrokenPipeError, OSError):
                connection.closed = True

    def _close_connection(self, connection: _Connection) -> None:
        connection.closed = True
        try:
            connection.writer.close()
        except (ConnectionResetError, OSError):
            pass

    # -- dispatch ----------------------------------------------------------------------
    async def _dispatch(self, connection: _Connection, request: dict) -> None:
        op = request.get("op", "statement")
        if op == "ping":
            await self._send(connection, {"type": "done"})
            return
        if op == "shutdown":
            await self._send(connection, {"type": "done", "status": "shutting down"})
            self._begin_shutdown("shutdown requested by client")
            return
        if self._draining:
            await self._send(
                connection,
                {
                    "type": "error",
                    "error": "server is shutting down; statement rejected",
                    "code": "WireError",
                },
            )
            return
        self._inflight += 1
        self._idle.clear()
        try:
            assert self._loop is not None
            rows, done = await self._loop.run_in_executor(
                self._pool, connection.handler.handle, request
            )
        except ReproError as error:
            frame = {
                "type": "error",
                "error": str(error),
                "code": type(error).__name__,
            }
            query_id = getattr(connection.handler, "current_query_id", None)
            if query_id is not None:
                frame["query_id"] = query_id
            await self._send(connection, frame)
            return
        except Exception as error:  # engine bug: report, keep serving
            traceback.print_exc()
            frame = {
                "type": "error",
                "error": f"internal server error: {error}",
                "code": "InternalError",
            }
            query_id = getattr(connection.handler, "current_query_id", None)
            if query_id is not None:
                frame["query_id"] = query_id
            await self._send(connection, frame)
            return
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
        if rows is not None:
            # Zero rows sends no rows frames: the done frame alone answers.
            for start in range(0, len(rows), ROWS_PER_FRAME):
                await self._send(
                    connection,
                    {"type": "rows", "rows": rows[start : start + ROWS_PER_FRAME]},
                )
        await self._send(connection, done)
