"""One client's statement-execution session against a local datastore.

This is the statement engine behind both the interactive shell
(:mod:`repro.shell`) and the wire server (:mod:`repro.net.server`): it
parses any statement kind (SELECT, INSERT, DELETE, BEGIN/COMMIT/ROLLBACK),
tracks the session's open transaction, and renders the exact status strings
the shell has always printed.  Transaction misuse raises
:class:`~repro.model.errors.SqlppError` with the statement's source
position, in the same style as parse and bind errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass
class StatementOutcome:
    """What one statement produced.

    Exactly one of ``rows``/``status`` is set: SELECT statements produce
    ``rows`` (dicts, or bare values for ``SELECT VALUE``); DML and
    transaction control produce a ``status`` line.  ``sequence`` carries the
    engine commit sequence for auto-committed single-document writes and for
    COMMIT, so wire clients can record write histories
    (:mod:`repro.verify.history`).  ``explain_text`` is filled only when the
    caller asked for the plan of a dataset-reading SELECT.
    """

    rows: Optional[list] = None
    status: Optional[str] = None
    sequence: Optional[int] = None
    explain_text: Optional[str] = None
    #: Identifier of the traced statement (queries only; None when the
    #: store's observability is off or the statement was DML/transaction
    #: control, where the caller's own query_id still names the request).
    query_id: Optional[str] = None
    #: Serialized span tree (:meth:`repro.obs.QueryTrace.to_dict`), for wire
    #: done frames; None when not traced.
    trace: Optional[dict] = None


class StatementSession:
    """Statement execution with per-session transaction state.

    One instance per shell session or wire connection; the underlying store
    is shared and thread-safe, the session itself must be driven by one
    statement at a time (the server serializes requests per connection).
    """

    def __init__(self, store) -> None:
        self.store = store
        #: The session's open transaction (None between BEGIN/COMMIT pairs).
        self.txn = None

    def execute(
        self,
        text: str,
        executor: str = "codegen",
        explain: bool = False,
        pushdown: bool = True,
        batch_size: Optional[int] = None,
        query_id: Optional[str] = None,
    ) -> StatementOutcome:
        """Parse and execute one statement of any kind.

        Query statements run inside the store's
        :meth:`~repro.store.datastore.Datastore.traced_statement` (under
        ``query_id`` when given), so the outcome carries the serialized span
        tree for wire clients.

        Raises :class:`~repro.model.errors.ReproError` subclasses on failure.
        """
        import time

        from ..model.errors import SqlppError
        from ..obs import record_span, span
        from ..sqlpp import (
            BeginStatement,
            CommitStatement,
            DeleteStatement,
            InsertStatement,
            RollbackStatement,
            compile_statement,
            constant_value,
            parse_any,
        )

        parse_started = time.perf_counter()
        statement = parse_any(text)
        parse_elapsed = time.perf_counter() - parse_started
        if isinstance(statement, BeginStatement):
            if self.txn is not None:
                raise SqlppError(
                    "nested BEGIN: a transaction is already open (COMMIT or "
                    f"ROLLBACK it first) at {statement.where}",
                    statement.line,
                    statement.column,
                )
            self.txn = self.store.begin()
            return StatementOutcome(status=f"BEGIN (transaction #{self.txn.id})")
        if isinstance(statement, CommitStatement):
            if self.txn is None:
                raise SqlppError(
                    f"COMMIT outside a transaction at {statement.where}",
                    statement.line,
                    statement.column,
                )
            txn, self.txn = self.txn, None
            sequence = txn.commit()  # TransactionConflictError propagates
            if sequence is None:
                return StatementOutcome(status="COMMIT (read-only)")
            return StatementOutcome(
                status=f"COMMIT (sequence {sequence})", sequence=sequence
            )
        if isinstance(statement, RollbackStatement):
            if self.txn is None:
                raise SqlppError(
                    f"ROLLBACK outside a transaction at {statement.where}",
                    statement.line,
                    statement.column,
                )
            txn, self.txn = self.txn, None
            txn.abort()
            return StatementOutcome(status="ROLLBACK")
        if isinstance(statement, InsertStatement):
            value = constant_value(statement.documents)
            documents = value if isinstance(value, list) else [value]
            if not documents or not all(
                isinstance(document, dict) for document in documents
            ):
                raise SqlppError(
                    "INSERT expects an object literal or a non-empty array of "
                    f"objects at {statement.documents.where}",
                    statement.documents.line,
                    statement.documents.column,
                )
            if self.txn is not None:
                for document in documents:
                    self.txn.insert(statement.dataset, document)
                return StatementOutcome(
                    status=f"INSERT {len(documents)} (buffered in transaction)"
                )
            dataset = self.store.dataset(statement.dataset)
            sequence = None
            for document in documents:
                sequence = dataset.insert(document)
            return StatementOutcome(
                status=f"INSERT {len(documents)}",
                sequence=sequence if len(documents) == 1 else None,
            )
        if isinstance(statement, DeleteStatement):
            dataset = self.store.dataset(statement.dataset)
            if statement.key_field != dataset.primary_key_field:
                raise SqlppError(
                    f"DELETE key field `{statement.key_field}` is not the "
                    f"primary key `{dataset.primary_key_field}` of dataset "
                    f"{statement.dataset!r} at {statement.where}",
                    statement.line,
                    statement.column,
                )
            key = constant_value(statement.key)
            if self.txn is not None:
                self.txn.delete(statement.dataset, key)
                return StatementOutcome(status="DELETE 1 (buffered in transaction)")
            sequence = dataset.delete(key)
            return StatementOutcome(status="DELETE 1", sequence=sequence)
        with self.store.traced_statement(
            text, executor=executor, query_id=query_id
        ) as trace:
            if trace is not None:
                record_span("parse", parse_elapsed)
            with span("bind"):
                compiled = compile_statement(statement)
            explain_text = None
            if explain and compiled.query is not None:
                explain_text = compiled.explain(self.store, executor=executor)
            rows = compiled.execute(
                self.store,
                executor=executor,
                pushdown=pushdown,
                batch_size=batch_size,
            )
        return StatementOutcome(
            rows=rows,
            explain_text=explain_text,
            query_id=trace.query_id if trace is not None else query_id,
            trace=trace.to_dict() if trace is not None else None,
        )

    def close(self) -> Optional[str]:
        """Roll back an open transaction; returns the rollback notice, if any.

        Ending a session without a COMMIT is equivalent to a ROLLBACK — the
        buffered writes were never applied.
        """
        if self.txn is None:
            return None
        txn, self.txn = self.txn, None
        txn.abort()
        return (
            f"rolled back open transaction #{txn.id} (session ended "
            "without COMMIT)"
        )
