"""Networking layer: length-prefixed JSON wire protocol, server, client.

The wire frontend turns the single-process engine into a served datastore:
``python -m repro.server`` speaks the frame protocol of
:mod:`repro.net.protocol` over TCP, multiplexing many concurrent clients
onto one snapshot-isolated :class:`~repro.store.datastore.Datastore` (or, in
coordinator mode, onto a :class:`~repro.shard.coordinator.ShardedDatastore`).
``python -m repro.shell --connect HOST:PORT`` is the interactive client.
"""

from .client import RemoteError, StatementResult, WireClient
from .protocol import PROTOCOL_VERSION, WireError
from .session import StatementOutcome, StatementSession

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteError",
    "StatementOutcome",
    "StatementResult",
    "StatementSession",
    "WireClient",
    "WireError",
]
