"""The wire protocol: length-prefixed JSON frames with a versioned handshake.

Every message on the wire is one *frame*: a 4-byte big-endian payload length
followed by that many bytes of UTF-8 JSON.  Frames are small and
self-contained, so both the asyncio server and the blocking client read them
with two exact-length reads; the length prefix caps at
:data:`MAX_FRAME_BYTES` to bound allocation on a corrupt or hostile peer.

Connection lifecycle::

    server -> client   {"type": "hello", "version": 1, "role": ..., ...}
    client -> server   {"type": "hello", "version": 1}
    client -> server   {"op": "statement", "text": "SELECT ...", ...}
    server -> client   {"type": "rows", "rows": [...]}     (zero or more)
    server -> client   {"type": "done", "status": ..., "io": {...}, ...}

Requests are dicts with an ``"op"`` key; responses to one request are a
stream of ``rows`` frames (result batches of :data:`ROWS_PER_FRAME` rows)
terminated by exactly one ``done`` or ``error`` frame.  The server may
interleave unsolicited ``notice`` frames (e.g. the open-transaction rollback
notice during graceful shutdown) and sends ``goodbye`` before closing.

JSON is used in non-strict mode: ``NaN``/``Infinity`` round-trip as their
JavaScript literals (both ends are this library), and engine rows contain
only JSON-representable values — MISSING is normalized to ``null`` at the
projection/breaker boundaries before rows reach the wire.
"""

from __future__ import annotations

import json
import struct
from typing import Optional

from ..model.errors import ReproError

#: Version of the frame protocol; both hello frames must carry it.
PROTOCOL_VERSION = 1

#: Frame header: 4-byte big-endian payload length.
HEADER = struct.Struct(">I")

#: Upper bound on one frame's JSON payload (64 MiB).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Result rows per ``rows`` frame — the streaming batch size of the server.
ROWS_PER_FRAME = 512


class WireError(ReproError):
    """A protocol-level failure: bad handshake, oversized or truncated frame."""


def encode_frame(payload: dict) -> bytes:
    """Serialize one message to its on-wire bytes (header + JSON)."""
    body = json.dumps(payload, separators=(",", ":"), default=_jsonify).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise WireError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    """Parse one frame body; the payload must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise WireError(f"undecodable frame: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(f"frame payload must be an object, got {type(payload).__name__}")
    return payload


def frame_length(header: bytes) -> int:
    """Validate and unpack a frame header."""
    (length,) = HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireError(f"frame length {length} exceeds {MAX_FRAME_BYTES}")
    return length


def _jsonify(value):
    """Last-resort serializer for engine values JSON does not know."""
    raise TypeError(f"value {value!r} is not wire-serializable")


def hello_frame(role: str, **extra) -> dict:
    """The server's opening handshake frame."""
    frame = {"type": "hello", "version": PROTOCOL_VERSION, "role": role}
    frame.update(extra)
    return frame


def check_hello(frame: Optional[dict], peer: str) -> dict:
    """Validate a peer's hello frame; raises :class:`WireError` on mismatch."""
    if frame is None:
        raise WireError(f"{peer} closed the connection during the handshake")
    if frame.get("type") != "hello":
        raise WireError(f"expected a hello frame from {peer}, got {frame.get('type')!r}")
    version = frame.get("version")
    if version != PROTOCOL_VERSION:
        raise WireError(
            f"protocol version mismatch: {peer} speaks {version!r}, "
            f"this side speaks {PROTOCOL_VERSION}"
        )
    return frame
