"""Plain-text and machine-readable reporting for the benchmark harness.

Each benchmark prints a small table with the same rows/series as the paper's
figure it reproduces, so the shapes (who wins, by roughly what factor) can be
compared at a glance against the numbers quoted in EXPERIMENTS.md.

The executor benchmarks additionally persist their timings as JSON
(``BENCH_<figure>.json``, see :func:`write_bench_json`) so the perf
trajectory across commits is diffable by tooling, not just eyeballs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, List, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    columns = [str(header) for header in headers]
    rendered_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    line = "  ".join(column.ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(value.ljust(width) for value, width in zip(row, widths))
        for row in rendered_rows
    ]
    return "\n".join([line, separator] + body)


def _cell(value) -> str:
    if isinstance(value, float):
        if value >= 100:
            return f"{value:.1f}"
        if value >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def print_figure(title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    text = f"\n=== {title} ===\n" + format_table(headers, rows)
    print(text)
    return text


def speedup_summary(times: Dict[str, float], baseline: str) -> List[List[object]]:
    """Rows of (layout, seconds, speedup vs baseline)."""
    base = times.get(baseline)
    rows = []
    for layout, seconds in times.items():
        speedup = (base / seconds) if (base and seconds) else float("nan")
        rows.append([layout, seconds, round(speedup, 2)])
    return rows


def bench_json_path(figure: str) -> Path:
    """Where ``BENCH_<figure>.json`` lives (``REPRO_BENCH_DIR``, default cwd)."""
    return Path(os.environ.get("REPRO_BENCH_DIR", ".")) / f"BENCH_{figure}.json"


def write_bench_json(
    figure: str,
    section: str,
    payload,
    clients: "int | None" = None,
    shards: "int | None" = None,
) -> Path:
    """Merge one section of machine-readable timings into ``BENCH_<figure>.json``.

    Benchmarks run as independent pytest tests, so each test merges its own
    section into the shared per-figure file rather than overwriting it; a
    corrupt or hand-edited file is replaced wholesale.

    ``clients``/``shards`` annotate the section with the concurrency it was
    measured under, so scaling-curve files like ``BENCH_shard_scaling.json``
    are self-describing: a dict payload gains ``clients``/``shards`` keys,
    any other payload is wrapped as ``{"clients": ..., "shards": ...,
    "rows": payload}``.
    """
    if clients is not None or shards is not None:
        if not isinstance(payload, dict):
            payload = {"rows": payload}
        else:
            payload = dict(payload)
        if clients is not None:
            payload["clients"] = clients
        if shards is not None:
            payload["shards"] = shards
    path = bench_json_path(figure)
    document = {}
    if path.exists():
        try:
            document = json.loads(path.read_text())
        except ValueError:
            document = {}
    if not isinstance(document, dict):
        document = {}
    document["figure"] = figure
    document["generated_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
    document.setdefault("sections", {})[section] = payload
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def query_result_payload(result) -> Dict[str, object]:
    """JSON-ready summary of one :class:`~repro.bench.harness.QueryResult`."""
    return {
        "executor": result.executor,
        "seconds": result.seconds,
        "pages_read": result.pages_read,
        "rows": len(result.rows),
    }
