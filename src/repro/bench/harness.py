"""Experiment harness: builds stores per layout, times ingestion and queries.

Every benchmark in ``benchmarks/`` uses this module so that the experiment
setup stays consistent: one datastore per layout, the paper's configuration
(tiering merge policy, page compression, 128 KB pages), the synthetic
datasets of :mod:`repro.datasets`, and reporting that shows, for every figure,
the same rows/series the paper plots (plus page-level I/O counters, since the
paper's story is primarily an I/O story).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..datasets import make_generator
from ..lsm.component import ALL_LAYOUTS
from ..query import Query
from ..store import Datastore, StoreConfig

LAYOUTS = list(ALL_LAYOUTS)  # open, vector, apax, amax


@dataclass
class LoadResult:
    """Outcome of ingesting one dataset under one layout."""

    layout: str
    dataset: str
    records: int
    seconds: float
    storage_bytes: int
    storage_payload_bytes: int
    pages_written: int
    inferred_columns: int
    point_lookups: int = 0

    @property
    def storage_mb(self) -> float:
        return self.storage_bytes / (1024 * 1024)


@dataclass
class QueryResult:
    """Outcome of running one query under one layout/executor."""

    layout: str
    query: str
    executor: str
    seconds: float
    pages_read: int
    rows: List[dict] = field(default_factory=list)


@dataclass
class LayoutFixture:
    """A loaded dataset under one layout, ready to be queried."""

    layout: str
    store: Datastore
    dataset_name: str
    load: LoadResult


def default_config(**overrides) -> StoreConfig:
    """The benchmark configuration: paper §6 scaled to synthetic data sizes."""
    config = StoreConfig(
        page_size=64 * 1024,
        memory_component_budget=1 * 1024 * 1024,
        buffer_cache_pages=4096,
        compression="snappy",
        num_nodes=1,
        partitions_per_node=2,
        amax_max_records_per_leaf=15000,
    )
    for name, value in overrides.items():
        setattr(config, name, value)
    config.validate()
    return config


def load_dataset(
    layout: str,
    dataset_name: str,
    num_records: Optional[int] = None,
    config: Optional[StoreConfig] = None,
    secondary_indexes: Optional[Dict[str, str]] = None,
    primary_key_index: bool = False,
    documents: Optional[Iterable[dict]] = None,
    seed: int = 7,
) -> LayoutFixture:
    """Create a store, ingest one dataset under ``layout``, and time it."""
    store = Datastore(config or default_config())
    dataset = store.create_dataset(dataset_name, layout=layout)
    if primary_key_index:
        dataset.create_primary_key_index()
    for index_name, path in (secondary_indexes or {}).items():
        dataset.create_secondary_index(index_name, path)
    if documents is None:
        documents = make_generator(dataset_name, num_records, seed=seed)
    start = time.perf_counter()
    count = dataset.insert_many(documents)
    dataset.flush_all()
    seconds = time.perf_counter() - start
    load = LoadResult(
        layout=layout,
        dataset=dataset_name,
        records=count,
        seconds=seconds,
        storage_bytes=dataset.storage_size_bytes(),
        storage_payload_bytes=dataset.storage_payload_bytes(),
        pages_written=store.io_stats.pages_written,
        inferred_columns=dataset.inferred_column_count(),
        point_lookups=dataset.point_lookups_performed,
    )
    return LayoutFixture(layout=layout, store=store, dataset_name=dataset_name, load=load)


def load_all_layouts(
    dataset_name: str,
    num_records: Optional[int] = None,
    layouts: Sequence[str] = LAYOUTS,
    config: Optional[StoreConfig] = None,
    documents: Optional[Iterable[dict]] = None,
    **kwargs,
) -> Dict[str, LayoutFixture]:
    """Ingest the same dataset under every layout (fresh store per layout).

    ``documents`` overrides the synthetic generator (for ad-hoc corpora like
    ``bench_sqlpp``'s gamer records); either way the documents are
    materialized once so all layouts ingest byte-identical input.
    """
    if documents is None:
        documents = make_generator(dataset_name, num_records, seed=kwargs.pop("seed", 7))
    documents = list(documents)
    return {
        layout: load_dataset(
            layout,
            dataset_name,
            config=config,
            documents=documents,
            **kwargs,
        )
        for layout in layouts
    }


def resolve_query(
    query_factory: "Callable[[str], Query] | str", dataset_name: str
) -> Query:
    """Materialize a benchmark query for one dataset.

    ``query_factory`` is either a builder factory (``dataset name → Query``)
    or SQL++ text — the parsed-query path: any ``{dataset}`` placeholder is
    substituted and the text is compiled through :mod:`repro.sqlpp`, so text
    queries exercise exactly the same planner/executor stack.
    """
    if isinstance(query_factory, str):
        from ..sqlpp import compile_query

        text = query_factory.replace("{dataset}", dataset_name)
        compiled = compile_query(text)
        if compiled.query is None:
            raise ValueError("benchmark SQL++ text must contain a FROM clause")
        return compiled.query
    return query_factory(dataset_name)


def run_query(
    fixture: LayoutFixture,
    query_factory: "Callable[[str], Query] | str",
    executor: str = "codegen",
    repetitions: int = 1,
    pushdown: bool = True,
) -> QueryResult:
    """Run one query against a loaded fixture, reporting time and pages read.

    ``query_factory`` may be SQL++ text instead of a builder factory (see
    :func:`resolve_query`).  ``pushdown=False`` disables the scan-pushdown
    rewrite so benchmarks can compare against the assemble-then-filter
    baseline.
    """
    store = fixture.store
    rows: List[dict] = []
    before = store.io_snapshot()
    start = time.perf_counter()
    for _ in range(repetitions):
        rows = resolve_query(query_factory, fixture.dataset_name).execute(
            store, executor=executor, pushdown=pushdown
        )
    seconds = (time.perf_counter() - start) / max(repetitions, 1)
    delta = store.io_stats.delta_since(before)
    return QueryResult(
        layout=fixture.layout,
        query=getattr(query_factory, "__name__", "sqlpp"),
        executor=executor,
        seconds=seconds,
        pages_read=delta.pages_read + delta.cache_hits,
        rows=rows,
    )


def update_workload(
    fixture: LayoutFixture,
    update_fraction: float = 0.5,
    seed: int = 13,
) -> float:
    """Re-ingest a uniform sample of existing records (the §6.3.2 update workload)."""
    import random

    rng = random.Random(seed)
    dataset = fixture.store.dataset(fixture.dataset_name)
    documents = list(make_generator(fixture.dataset_name, fixture.load.records, seed=seed))
    updates = [doc for doc in documents if rng.random() < update_fraction]
    start = time.perf_counter()
    for document in updates:
        document = dict(document)
        document["timestamp"] = document.get("timestamp", 0) + 10_000_000
        dataset.insert(document)
    dataset.flush_all()
    return time.perf_counter() - start
