"""Benchmark harness: dataset loading, query timing, and paper-style reporting."""

from .harness import (
    LAYOUTS,
    LayoutFixture,
    LoadResult,
    QueryResult,
    default_config,
    load_all_layouts,
    load_dataset,
    resolve_query,
    run_query,
    update_workload,
)
from .queries import QUERY_SUITES, SQLPP_QUERY_SUITES, tweet2_range_count
from .reporting import format_table, print_figure, speedup_summary

__all__ = [
    "LAYOUTS",
    "LayoutFixture",
    "LoadResult",
    "QUERY_SUITES",
    "QueryResult",
    "SQLPP_QUERY_SUITES",
    "default_config",
    "format_table",
    "load_all_layouts",
    "load_dataset",
    "print_figure",
    "resolve_query",
    "run_query",
    "speedup_summary",
    "tweet2_range_count",
    "update_workload",
]
