"""Benchmark harness: dataset loading, query timing, and paper-style reporting."""

from .harness import (
    LAYOUTS,
    LayoutFixture,
    LoadResult,
    QueryResult,
    default_config,
    load_all_layouts,
    load_dataset,
    resolve_query,
    run_query,
    update_workload,
)
from .queries import QUERY_SUITES, SQLPP_QUERY_SUITES, tweet2_range_count
from .reporting import (
    bench_json_path,
    format_table,
    print_figure,
    query_result_payload,
    speedup_summary,
    write_bench_json,
)

__all__ = [
    "LAYOUTS",
    "LayoutFixture",
    "LoadResult",
    "QUERY_SUITES",
    "QueryResult",
    "SQLPP_QUERY_SUITES",
    "bench_json_path",
    "default_config",
    "format_table",
    "load_all_layouts",
    "load_dataset",
    "print_figure",
    "query_result_payload",
    "resolve_query",
    "run_query",
    "speedup_summary",
    "tweet2_range_count",
    "update_workload",
    "write_bench_json",
]
