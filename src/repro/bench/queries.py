"""The paper's evaluation queries (Table 2 and Appendix A), as Query builders.

Each function returns a :class:`~repro.query.plan.Query` for the given dataset
name; the benchmark harness runs them under the four layouts and both
executors.  Queries follow the SQL++ listed in the paper's appendix, adapted
to the synthetic datasets' field names.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..query import Call, Field, Query, SomeSatisfies, Var


# -- cell ----------------------------------------------------------------------------


def cell_q1(dataset: str) -> Query:
    """Q1: SELECT COUNT(*)"""
    return Query(dataset, "c").count()


def cell_q2(dataset: str) -> Query:
    """Q2: top-10 callers with the longest call durations."""
    return (
        Query(dataset, "c")
        .group_by(key=("caller", "caller"), aggregates=[("m", "max", "duration")])
        .order_by("m", descending=True)
        .limit(10)
    )


def cell_q3(dataset: str) -> Query:
    """Q3: number of calls with duration >= 600 seconds."""
    return Query(dataset, "c").where(Field(Var("c"), "duration") >= 600).count()


# -- sensors --------------------------------------------------------------------------


def sensors_q1(dataset: str) -> Query:
    """Q1: COUNT(*) over unnested readings."""
    return Query(dataset, "s").unnest("r", "readings").count()


def sensors_q2(dataset: str) -> Query:
    """Q2: maximum (and minimum) reading ever recorded."""
    return (
        Query(dataset, "s")
        .unnest("r", "readings")
        .aggregate(
            [
                ("max_temp", "max", Field(Var("r"), "temp")),
                ("min_temp", "min", Field(Var("r"), "temp")),
            ]
        )
    )


def sensors_q3(dataset: str) -> Query:
    """Q3: IDs of the top-10 sensors with maximum readings."""
    return (
        Query(dataset, "s")
        .unnest("r", "readings")
        .group_by(
            key=("sid", "sensor_id"),
            aggregates=[("max_temp", "max", Field(Var("r"), "temp"))],
        )
        .order_by("max_temp", descending=True)
        .limit(10)
    )


def sensors_q4(dataset: str) -> Query:
    """Q4: like Q3 but restricted to one day of readings."""
    day_start = 1_556_496_000_000
    day_end = day_start + 24 * 60 * 60 * 1000
    return (
        Query(dataset, "s")
        .where(Field(Var("s"), "report_time") > day_start)
        .where(Field(Var("s"), "report_time") < day_end)
        .unnest("r", "readings")
        .group_by(
            key=("sid", "sensor_id"),
            aggregates=[("max_temp", "max", Field(Var("r"), "temp"))],
        )
        .order_by("max_temp", descending=True)
        .limit(10)
    )


# -- tweet_1 ---------------------------------------------------------------------------


def tweet1_q1(dataset: str) -> Query:
    return Query(dataset, "t").count()


def tweet1_q2(dataset: str) -> Query:
    """Q2: top-10 users who posted the longest tweets."""
    return (
        Query(dataset, "t")
        .group_by(
            key=("uname", "user.name"),
            aggregates=[("a", "max", Call("length", Field(Var("t"), "text")))],
        )
        .order_by("a", descending=True)
        .limit(10)
    )


def tweet1_q3(dataset: str) -> Query:
    """Q3: top-10 users with most tweets containing a popular hashtag."""
    predicate = SomeSatisfies(
        Field(Var("t"), "entities.hashtags"),
        "ht",
        Call("lowercase", Field(Var("ht"), "text")) == "jobs",
    )
    return (
        Query(dataset, "t")
        .where(predicate)
        .group_by(key=("uname", "user.name"), aggregates=[("c", "count", None)])
        .order_by("c", descending=True)
        .limit(10)
    )


# -- wos --------------------------------------------------------------------------------


def wos_q1(dataset: str) -> Query:
    return Query(dataset, "p").count()


def wos_q2(dataset: str) -> Query:
    """Q2: top scientific fields by number of publications."""
    return (
        Query(dataset, "p")
        .unnest(
            "subject",
            "static_data.fullrecord_metadata.category_info.subjects.subject",
        )
        .where(Field(Var("subject"), "ascatype") == "extended")
        .group_by(key=("v", Field(Var("subject"), "value")), aggregates=[("cnt", "count", None)])
        .order_by("cnt", descending=True)
        .limit(10)
    )


def _wos_countries(variable: str = "p"):
    """ARRAY_DISTINCT(address[*].address_spec.country) plus the raw address value.

    ``address_name`` is heterogeneous (an object for single-author papers, an
    array of objects otherwise); the queries follow the paper and keep only
    the array alternative via ``IS_ARRAY``.
    """
    addresses = Field(
        Var(variable), "static_data.fullrecord_metadata.addresses.address_name"
    )
    countries = Call(
        "array_distinct",
        Field(
            Var(variable),
            "static_data.fullrecord_metadata.addresses.address_name[*].address_spec.country",
        ),
    )
    return countries, addresses


def wos_q3(dataset: str) -> Query:
    """Q3: top countries co-publishing with US-based institutes."""
    countries_expr, addresses = _wos_countries("p")
    return (
        Query(dataset, "p")
        .assign("countries", countries_expr)
        .where(Call("is_array", addresses))
        .where(Call("array_count", Var("countries")) > 1)
        .where(Call("array_contains", Var("countries"), "USA"))
        .unnest("country", Var("countries"))
        .where(Var("country") != "USA")
        .group_by(key=("country", Var("country")), aggregates=[("cnt", "count", None)])
        .order_by("cnt", descending=True)
        .limit(10)
    )


def wos_q4(dataset: str) -> Query:
    """Q4: top pairs of countries with the most co-published articles."""
    countries_expr, addresses = _wos_countries("p")
    return (
        Query(dataset, "p")
        .assign("countries", countries_expr)
        .where(Call("is_array", addresses))
        .where(Call("array_count", Var("countries")) > 1)
        .assign("pairs", Call("array_pairs", Var("countries")))
        .unnest("pair", Var("pairs"))
        .group_by(key=("pair", Var("pair")), aggregates=[("cnt", "count", None)])
        .order_by("cnt", descending=True)
        .limit(10)
    )


# -- tweet_2 (secondary-index experiments) ---------------------------------------------------


def tweet2_range_count(dataset: str, low: int, high: int, use_index: bool) -> Query:
    """Range COUNT(*) on the timestamp attribute, with or without the index."""
    query = Query(dataset, "t")
    if use_index:
        query.use_index("timestamp", low, high).count()
    else:
        query.where(Field(Var("t"), "timestamp") >= low).where(
            Field(Var("t"), "timestamp") <= high
        ).count()
    return query


QUERY_SUITES: Dict[str, List[Callable[[str], Query]]] = {
    "cell": [cell_q1, cell_q2, cell_q3],
    "sensors": [sensors_q1, sensors_q2, sensors_q3, sensors_q4],
    "tweet_1": [tweet1_q1, tweet1_q2, tweet1_q3],
    "wos": [wos_q1, wos_q2, wos_q3, wos_q4],
}


# -- the same suites as SQL++ text --------------------------------------------------------
#
# ``{dataset}`` is substituted by the harness (:func:`repro.bench.resolve_query`).
# These are the paper's appendix queries in their original declarative form;
# ``bench_sqlpp.py`` asserts plan parity (same chosen access path, same
# pushdown spec) and row equality against the builder versions above.

#: The paper's Figure 11 query (top-10 games by number of gamers), verbatim.
FIGURE11_SQLPP = """
SELECT t AS t, COUNT(*) AS cnt
FROM {dataset} AS g
UNNEST g.games AS t
GROUP BY t
ORDER BY cnt DESC
LIMIT 10;
"""


def figure11_query(dataset: str) -> Query:
    """The Figure 11 query as the handwritten builder (the parity baseline)."""
    return (
        Query(dataset, "g")
        .unnest("t", "games")
        .group_by(key=("t", Var("t")), aggregates=[("cnt", "count", None)])
        .order_by("cnt", descending=True)
        .limit(10)
    )


_WOS_ADDRESSES = "p.static_data.fullrecord_metadata.addresses.address_name"

SQLPP_QUERY_SUITES: Dict[str, Dict[str, str]] = {
    "cell": {
        "cell_q1": "SELECT COUNT(*) FROM {dataset} AS c;",
        "cell_q2": """
            SELECT caller AS caller, MAX(c.duration) AS m
            FROM {dataset} AS c
            GROUP BY c.caller AS caller
            ORDER BY m DESC
            LIMIT 10;
        """,
        "cell_q3": "SELECT COUNT(*) FROM {dataset} AS c WHERE c.duration >= 600;",
    },
    "sensors": {
        "sensors_q1": "SELECT COUNT(*) FROM {dataset} AS s UNNEST s.readings AS r;",
        "sensors_q2": """
            SELECT MAX(r.temp) AS max_temp, MIN(r.temp) AS min_temp
            FROM {dataset} AS s
            UNNEST s.readings AS r;
        """,
        "sensors_q3": """
            SELECT sid AS sid, MAX(r.temp) AS max_temp
            FROM {dataset} AS s
            UNNEST s.readings AS r
            GROUP BY s.sensor_id AS sid
            ORDER BY max_temp DESC
            LIMIT 10;
        """,
        "sensors_q4": """
            SELECT sid AS sid, MAX(r.temp) AS max_temp
            FROM {dataset} AS s
            WHERE s.report_time > 1556496000000 AND s.report_time < 1556582400000
            UNNEST s.readings AS r
            GROUP BY s.sensor_id AS sid
            ORDER BY max_temp DESC
            LIMIT 10;
        """,
    },
    "tweet_1": {
        "tweet1_q1": "SELECT COUNT(*) FROM {dataset} AS t;",
        "tweet1_q2": """
            SELECT uname AS uname, MAX(length(t.text)) AS a
            FROM {dataset} AS t
            GROUP BY t.user.name AS uname
            ORDER BY a DESC
            LIMIT 10;
        """,
        "tweet1_q3": """
            SELECT uname AS uname, COUNT(*) AS c
            FROM {dataset} AS t
            WHERE SOME ht IN t.entities.hashtags SATISFIES lowercase(ht.text) = "jobs"
            GROUP BY t.user.name AS uname
            ORDER BY c DESC
            LIMIT 10;
        """,
    },
    "wos": {
        "wos_q1": "SELECT COUNT(*) FROM {dataset} AS p;",
        "wos_q2": """
            SELECT v AS v, COUNT(*) AS cnt
            FROM {dataset} AS p
            UNNEST p.static_data.fullrecord_metadata.category_info.subjects.subject
                AS subject
            WHERE subject.ascatype = "extended"
            GROUP BY subject.value AS v
            ORDER BY cnt DESC
            LIMIT 10;
        """,
        "wos_q3": f"""
            SELECT country AS country, COUNT(*) AS cnt
            FROM {{dataset}} AS p
            LET countries = array_distinct({_WOS_ADDRESSES}[*].address_spec.country)
            WHERE is_array({_WOS_ADDRESSES})
              AND array_count(countries) > 1
              AND array_contains(countries, "USA")
            UNNEST countries AS country
            WHERE country != "USA"
            GROUP BY country
            ORDER BY cnt DESC
            LIMIT 10;
        """,
        "wos_q4": f"""
            SELECT pair AS pair, COUNT(*) AS cnt
            FROM {{dataset}} AS p
            LET countries = array_distinct({_WOS_ADDRESSES}[*].address_spec.country)
            WHERE is_array({_WOS_ADDRESSES})
              AND array_count(countries) > 1
            LET pairs = array_pairs(countries)
            UNNEST pairs AS pair
            GROUP BY pair
            ORDER BY cnt DESC
            LIMIT 10;
        """,
    },
}
