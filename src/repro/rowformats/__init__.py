"""Row-major record formats: Open (self-describing) and Vector-Based (VB)."""

from . import open_format, vector_format
from .vector_format import FieldNameDictionary

__all__ = ["FieldNameDictionary", "open_format", "vector_format"]
