"""The Vector-Based (VB) row format from the tuple-compactor paper.

The VB format separates a record's *structure* from its *values* so that the
tuple compactor can work on the metadata without touching the values, and so
that records can be constructed in a single pass (values written once, no
per-nesting-level copies).  Field names are dictionary-encoded against a
dataset-level :class:`FieldNameDictionary`, which is the main source of the
~17 % storage win over the Open format reported for the ``cell`` dataset.

Wire layout of one record::

    [structure length uvarint][structure tokens][values bytes]

Structure tokens (pre-order walk of the value tree, all uvarints):

    OBJECT  n   then for each child: field-name-id, child tokens
    ARRAY   n   then each element's tokens
    INT64 / DOUBLE / STRING / BOOLEAN / NULL    (atomic markers)

Atomic values are appended to the value stream in walk order (ints are
zig-zag varints, doubles 8 bytes, strings uvarint length + UTF-8, booleans one
byte, nulls nothing).
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Tuple

from ..encoding.varint import (
    decode_svarint,
    decode_uvarint,
    encode_svarint,
    encode_uvarint,
)
from ..model.errors import EncodingError
from ..model.values import (
    TYPE_ARRAY,
    TYPE_BOOLEAN,
    TYPE_DOUBLE,
    TYPE_INT64,
    TYPE_NULL,
    TYPE_OBJECT,
    TYPE_STRING,
    type_tag_of,
)

FORMAT_NAME = "vector"

_TOKEN_OBJECT = 0
_TOKEN_ARRAY = 1
_TOKEN_INT64 = 2
_TOKEN_DOUBLE = 3
_TOKEN_STRING = 4
_TOKEN_BOOLEAN = 5
_TOKEN_NULL = 6


class FieldNameDictionary:
    """Dataset-level dictionary mapping field names to small integer ids."""

    def __init__(self) -> None:
        self._ids: Dict[str, int] = {}
        self._names: List[str] = []

    def intern(self, name: str) -> int:
        existing = self._ids.get(name)
        if existing is not None:
            return existing
        new_id = len(self._names)
        self._ids[name] = new_id
        self._names.append(name)
        return new_id

    def name(self, field_id: int) -> str:
        try:
            return self._names[field_id]
        except IndexError as exc:
            raise EncodingError(f"unknown field id {field_id}") from exc

    def __len__(self) -> int:
        return len(self._names)

    def to_dict(self) -> dict:
        return {"names": list(self._names)}

    @classmethod
    def from_dict(cls, data: dict) -> "FieldNameDictionary":
        dictionary = cls()
        for name in data["names"]:
            dictionary.intern(name)
        return dictionary


def encode_document(document: Any, dictionary: FieldNameDictionary) -> bytes:
    """Serialize a document in the VB format (single pass, values written once)."""
    structure = bytearray()
    values = bytearray()
    _encode_value(document, dictionary, structure, values)
    out = bytearray()
    encode_uvarint(len(structure), out)
    out.extend(structure)
    out.extend(values)
    return bytes(out)


def decode_document(data: bytes, dictionary: FieldNameDictionary) -> Any:
    """Deserialize a VB-format document."""
    structure_length, offset = decode_uvarint(data, 0)
    structure_end = offset + structure_length
    value, structure_offset, value_offset = _decode_value(
        data, offset, structure_end, dictionary
    )
    if structure_offset != structure_end:
        raise EncodingError("trailing structure tokens in VB record")
    if value_offset != len(data):
        raise EncodingError("trailing value bytes in VB record")
    return value


def encoded_size(document: Any, dictionary: FieldNameDictionary) -> int:
    return len(encode_document(document, dictionary))


# -- encoding -----------------------------------------------------------------------


def _encode_value(
    value: Any,
    dictionary: FieldNameDictionary,
    structure: bytearray,
    values: bytearray,
) -> None:
    tag = type_tag_of(value)
    if tag == TYPE_OBJECT:
        encode_uvarint(_TOKEN_OBJECT, structure)
        encode_uvarint(len(value), structure)
        for name, child in value.items():
            encode_uvarint(dictionary.intern(str(name)), structure)
            _encode_value(child, dictionary, structure, values)
        return
    if tag == TYPE_ARRAY:
        encode_uvarint(_TOKEN_ARRAY, structure)
        encode_uvarint(len(value), structure)
        for child in value:
            _encode_value(child, dictionary, structure, values)
        return
    if tag == TYPE_INT64:
        encode_uvarint(_TOKEN_INT64, structure)
        encode_svarint(value, values)
        return
    if tag == TYPE_DOUBLE:
        encode_uvarint(_TOKEN_DOUBLE, structure)
        values.extend(struct.pack("<d", value))
        return
    if tag == TYPE_STRING:
        encode_uvarint(_TOKEN_STRING, structure)
        raw = value.encode("utf-8")
        encode_uvarint(len(raw), values)
        values.extend(raw)
        return
    if tag == TYPE_BOOLEAN:
        encode_uvarint(_TOKEN_BOOLEAN, structure)
        values.append(1 if value else 0)
        return
    if tag == TYPE_NULL:
        encode_uvarint(_TOKEN_NULL, structure)
        return
    raise EncodingError(f"cannot encode value of type {tag!r} in VB format")


# -- decoding -----------------------------------------------------------------------


def _decode_value(
    data: bytes,
    structure_offset: int,
    value_offset: int,
    dictionary: FieldNameDictionary,
) -> Tuple[Any, int, int]:
    token, structure_offset = decode_uvarint(data, structure_offset)
    if token == _TOKEN_OBJECT:
        count, structure_offset = decode_uvarint(data, structure_offset)
        result = {}
        for _ in range(count):
            field_id, structure_offset = decode_uvarint(data, structure_offset)
            child, structure_offset, value_offset = _decode_value(
                data, structure_offset, value_offset, dictionary
            )
            result[dictionary.name(field_id)] = child
        return result, structure_offset, value_offset
    if token == _TOKEN_ARRAY:
        count, structure_offset = decode_uvarint(data, structure_offset)
        items = []
        for _ in range(count):
            child, structure_offset, value_offset = _decode_value(
                data, structure_offset, value_offset, dictionary
            )
            items.append(child)
        return items, structure_offset, value_offset
    if token == _TOKEN_INT64:
        value, value_offset = decode_svarint(data, value_offset)
        return value, structure_offset, value_offset
    if token == _TOKEN_DOUBLE:
        value = struct.unpack_from("<d", data, value_offset)[0]
        return value, structure_offset, value_offset + 8
    if token == _TOKEN_STRING:
        length, value_offset = decode_uvarint(data, value_offset)
        end = value_offset + length
        return data[value_offset:end].decode("utf-8"), structure_offset, end
    if token == _TOKEN_BOOLEAN:
        return bool(data[value_offset]), structure_offset, value_offset + 1
    if token == _TOKEN_NULL:
        return None, structure_offset, value_offset
    raise EncodingError(f"unknown VB structure token {token}")
