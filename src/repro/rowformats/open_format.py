"""AsterixDB's schemaless row format ("Open").

The Open format is self-describing and recursive: every record embeds its
field names, every nested value is length-prefixed (the 4-byte "relative
pointers" the paper blames for the format's storage overhead on deeply nested
data), and constructing a record copies child values into their parents.

The implementation purposely mirrors those costs:

* field names are stored inline as UTF-8 for every record;
* every nested value (object or array) carries a 4-byte length prefix per
  nesting level;
* :func:`encode_document` builds nested buffers bottom-up and copies them into
  the parent (the "multiple memory copy operations for the same value"
  ingestion cost discussed in §6.3.1).
"""

from __future__ import annotations

import struct
from typing import Any, Tuple

from ..model.errors import EncodingError
from ..model.values import (
    TYPE_ARRAY,
    TYPE_BOOLEAN,
    TYPE_DOUBLE,
    TYPE_INT64,
    TYPE_NULL,
    TYPE_OBJECT,
    TYPE_STRING,
    type_tag_of,
)

_TAG_BYTES = {
    TYPE_NULL: 0,
    TYPE_BOOLEAN: 1,
    TYPE_INT64: 2,
    TYPE_DOUBLE: 3,
    TYPE_STRING: 4,
    TYPE_OBJECT: 5,
    TYPE_ARRAY: 6,
}
_TAGS_BY_BYTE = {value: key for key, value in _TAG_BYTES.items()}

FORMAT_NAME = "open"


def encode_document(document: Any) -> bytes:
    """Serialize a document in the Open (self-describing, recursive) format."""
    return bytes(_encode_value(document))


def decode_document(data: bytes) -> Any:
    """Deserialize a document previously encoded with :func:`encode_document`."""
    value, offset = _decode_value(data, 0)
    if offset != len(data):
        raise EncodingError("trailing bytes after Open-format document")
    return value


def encoded_size(document: Any) -> int:
    """Size in bytes of the Open encoding (used by dataset statistics)."""
    return len(encode_document(document))


# -- encoding -----------------------------------------------------------------------


def _encode_value(value: Any) -> bytearray:
    tag = type_tag_of(value)
    out = bytearray([_TAG_BYTES[tag]])
    if tag == TYPE_NULL:
        return out
    if tag == TYPE_BOOLEAN:
        out.append(1 if value else 0)
        return out
    if tag == TYPE_INT64:
        out.extend(struct.pack("<q", value))
        return out
    if tag == TYPE_DOUBLE:
        out.extend(struct.pack("<d", value))
        return out
    if tag == TYPE_STRING:
        raw = value.encode("utf-8")
        out.extend(struct.pack("<I", len(raw)))
        out.extend(raw)
        return out
    if tag == TYPE_OBJECT:
        body = bytearray()
        body.extend(struct.pack("<I", len(value)))
        for name, child in value.items():
            raw_name = str(name).encode("utf-8")
            body.extend(struct.pack("<H", len(raw_name)))
            body.extend(raw_name)
            # Child values are built separately and copied into the parent —
            # the copy-per-nesting-level construction cost of the Open format.
            child_bytes = _encode_value(child)
            body.extend(struct.pack("<I", len(child_bytes)))
            body.extend(child_bytes)
        out.extend(struct.pack("<I", len(body)))
        out.extend(body)
        return out
    # array
    body = bytearray()
    body.extend(struct.pack("<I", len(value)))
    for child in value:
        child_bytes = _encode_value(child)
        body.extend(struct.pack("<I", len(child_bytes)))
        body.extend(child_bytes)
    out.extend(struct.pack("<I", len(body)))
    out.extend(body)
    return out


# -- decoding -----------------------------------------------------------------------


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    if offset >= len(data):
        raise EncodingError("truncated Open-format value")
    tag = _TAGS_BY_BYTE.get(data[offset])
    offset += 1
    if tag is None:
        raise EncodingError(f"unknown Open-format tag byte {data[offset - 1]}")
    if tag == TYPE_NULL:
        return None, offset
    if tag == TYPE_BOOLEAN:
        return bool(data[offset]), offset + 1
    if tag == TYPE_INT64:
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if tag == TYPE_DOUBLE:
        return struct.unpack_from("<d", data, offset)[0], offset + 8
    if tag == TYPE_STRING:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    (body_length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    end = offset + body_length
    if tag == TYPE_OBJECT:
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        result = {}
        for _ in range(count):
            (name_length,) = struct.unpack_from("<H", data, offset)
            offset += 2
            name = data[offset:offset + name_length].decode("utf-8")
            offset += name_length
            (child_length,) = struct.unpack_from("<I", data, offset)
            offset += 4
            child, child_end = _decode_value(data, offset)
            if child_end != offset + child_length:
                raise EncodingError("corrupt Open-format object child length")
            result[name] = child
            offset = child_end
        if offset != end:
            raise EncodingError("corrupt Open-format object body")
        return result, offset
    # array
    (count,) = struct.unpack_from("<I", data, offset)
    offset += 4
    items = []
    for _ in range(count):
        (child_length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        child, child_end = _decode_value(data, offset)
        if child_end != offset + child_length:
            raise EncodingError("corrupt Open-format array element length")
        items.append(child)
        offset = child_end
    if offset != end:
        raise EncodingError("corrupt Open-format array body")
    return items, offset
