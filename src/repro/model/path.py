"""Field paths.

A :class:`FieldPath` names a location inside a document, e.g.
``user.name`` or ``entities.hashtags[*].text``.  Paths are used to

* identify columns in the extended Dremel format,
* express projections pushed down to columnar scans, and
* address fields in query expressions.

Steps are either field names (``str``) or the array-wildcard step ``"[*]"``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence, Tuple

from .values import MISSING, type_tag_of, TYPE_ARRAY, TYPE_OBJECT

ARRAY_STEP = "[*]"


@dataclass(frozen=True)
class FieldPath:
    """An immutable dotted path with optional array-wildcard steps."""

    steps: Tuple[str, ...]

    # -- construction ---------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "FieldPath":
        """Parse ``"a.b[*].c"`` into a path.

        ``[*]`` may be attached to a field name (``b[*]``) or appear as its own
        dotted step (``b.[*]``); both parse to the same path.
        """
        steps: list[str] = []
        for raw in text.split("."):
            if not raw:
                continue
            name = raw
            while name.endswith(ARRAY_STEP):
                name = name[: -len(ARRAY_STEP)]
            if name:
                steps.append(name)
            count = (len(raw) - len(name)) // len(ARRAY_STEP)
            steps.extend([ARRAY_STEP] * count)
        return cls(tuple(steps))

    @classmethod
    def of(cls, value: "FieldPath | str | Sequence[str]") -> "FieldPath":
        """Coerce strings / sequences / paths into a :class:`FieldPath`."""
        if isinstance(value, FieldPath):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(tuple(value))

    # -- basic protocol -------------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        out = ""
        for step in self.steps:
            if step == ARRAY_STEP:
                out += ARRAY_STEP
            elif out:
                out += "." + step
            else:
                out = step
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FieldPath({str(self)!r})"

    # -- manipulation ---------------------------------------------------------
    def child(self, step: str) -> "FieldPath":
        """Return a new path with one extra step appended."""
        return FieldPath(self.steps + (step,))

    def array_element(self) -> "FieldPath":
        """Return a new path addressing the elements of this (array) path."""
        return self.child(ARRAY_STEP)

    def parent(self) -> "FieldPath":
        """Return the path with the last step removed."""
        return FieldPath(self.steps[:-1])

    def startswith(self, other: "FieldPath") -> bool:
        """Return True when ``other`` is a prefix of this path."""
        return self.steps[: len(other.steps)] == other.steps

    @property
    def array_depth(self) -> int:
        """Number of array steps in the path."""
        return sum(1 for step in self.steps if step == ARRAY_STEP)

    @property
    def top_field(self) -> str:
        """The first field-name step (used for coarse projection pushdown)."""
        for step in self.steps:
            if step != ARRAY_STEP:
                return step
        return ""


def get_path(document: Any, path: "FieldPath | str") -> Any:
    """Evaluate a path against a Python document.

    Missing fields return :data:`MISSING`.  An array step applied to an array
    returns the list of per-element results (with missing elements dropped),
    mirroring AsterixDB's quantified field access used by the evaluation
    queries.  Applying a field step to a non-object yields MISSING.
    """
    return _get(document, FieldPath.of(path).steps, 0)


def _get(value: Any, steps: Tuple[str, ...], index: int) -> Any:
    if index == len(steps):
        return value
    step = steps[index]
    if value is MISSING or value is None:
        return MISSING
    tag = type_tag_of(value)
    if step == ARRAY_STEP:
        if tag != TYPE_ARRAY:
            return MISSING
        results = []
        for element in value:
            child = _get(element, steps, index + 1)
            if child is not MISSING:
                results.append(child)
        return results
    if tag != TYPE_OBJECT:
        return MISSING
    if step not in value:
        return MISSING
    return _get(value[step], steps, index + 1)
