"""Document data-model helpers.

The store accepts arbitrary JSON-like Python values: ``dict`` (object),
``list`` (array), ``str``, ``bool``, ``int``, ``float``, and ``None``.  This
module centralizes the mapping between Python values and the atomic *type
tags* used throughout the schema, the shredder, and the encoders.

Type tags are short strings (``"int64"``, ``"double"``, ``"string"``,
``"boolean"``, ``"null"``, ``"object"``, ``"array"``) chosen to match the way
the paper labels union branches (Figure 6 keys children of a union node by
their type name).
"""

from __future__ import annotations

from typing import Any, Iterable

# Atomic type tags -----------------------------------------------------------

TYPE_INT64 = "int64"
TYPE_DOUBLE = "double"
TYPE_STRING = "string"
TYPE_BOOLEAN = "boolean"
TYPE_NULL = "null"

# Nested type tags (used for union branches and schema nodes) ----------------

TYPE_OBJECT = "object"
TYPE_ARRAY = "array"

ATOMIC_TYPE_TAGS = (TYPE_BOOLEAN, TYPE_INT64, TYPE_DOUBLE, TYPE_STRING, TYPE_NULL)
NESTED_TYPE_TAGS = (TYPE_OBJECT, TYPE_ARRAY)
ALL_TYPE_TAGS = ATOMIC_TYPE_TAGS + NESTED_TYPE_TAGS

#: Sentinel distinguishing "field absent" from an explicit JSON ``null``.
MISSING = object()


def type_tag_of(value: Any) -> str:
    """Return the type tag for a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if value is None:
        return TYPE_NULL
    if isinstance(value, bool):
        return TYPE_BOOLEAN
    if isinstance(value, int):
        return TYPE_INT64
    if isinstance(value, float):
        return TYPE_DOUBLE
    if isinstance(value, str):
        return TYPE_STRING
    if isinstance(value, dict):
        return TYPE_OBJECT
    if isinstance(value, (list, tuple)):
        return TYPE_ARRAY
    raise TypeError(f"unsupported document value of type {type(value).__name__!r}")


def is_atomic(value: Any) -> bool:
    """Return True when the value maps to an atomic column (not object/array)."""
    return type_tag_of(value) in ATOMIC_TYPE_TAGS


def is_nested(value: Any) -> bool:
    """Return True for objects and arrays."""
    return type_tag_of(value) in NESTED_TYPE_TAGS


def documents_equal(left: Any, right: Any) -> bool:
    """Structural equality that treats tuples and lists interchangeably.

    The shredder and the record assembler round-trip arrays as lists; callers
    may have supplied tuples, so the equality used in tests normalizes both
    sides.
    """
    left_tag = type_tag_of(left)
    right_tag = type_tag_of(right)
    if left_tag != right_tag:
        # int/double comparisons are intentionally strict: 1 != 1.0 because
        # they land in different columns.
        return False
    if left_tag == TYPE_OBJECT:
        if set(left.keys()) != set(right.keys()):
            return False
        return all(documents_equal(left[key], right[key]) for key in left)
    if left_tag == TYPE_ARRAY:
        if len(left) != len(right):
            return False
        return all(documents_equal(a, b) for a, b in zip(left, right))
    return left == right


def estimate_json_size(value: Any) -> int:
    """Rough JSON-serialized size (bytes) of a document.

    Used for dataset statistics (Table 1 "Avg. Record Size") and memtable
    budget accounting.  It intentionally mirrors compact JSON text sizes
    rather than Python object sizes.
    """
    tag = type_tag_of(value)
    if tag == TYPE_NULL:
        return 4
    if tag == TYPE_BOOLEAN:
        return 5 if value else 4
    if tag == TYPE_INT64:
        return len(str(value))
    if tag == TYPE_DOUBLE:
        return len(repr(value))
    if tag == TYPE_STRING:
        return len(value.encode("utf-8")) + 2
    if tag == TYPE_OBJECT:
        size = 2
        for key, child in value.items():
            size += len(str(key)) + 3 + estimate_json_size(child) + 1
        return size
    # array
    size = 2
    for child in value:
        size += estimate_json_size(child) + 1
    return size


def iter_atomic_paths(value: Any, prefix: tuple = ()) -> Iterable[tuple]:
    """Yield ``(path, atomic_value)`` pairs for every atomic value in a document.

    Array steps are represented by the string ``"[*]"`` so that all elements
    of an array share one logical column path, matching the paper's
    ``games[*].title`` notation.
    """
    tag = type_tag_of(value)
    if tag == TYPE_OBJECT:
        for key, child in value.items():
            yield from iter_atomic_paths(child, prefix + (key,))
    elif tag == TYPE_ARRAY:
        for child in value:
            yield from iter_atomic_paths(child, prefix + ("[*]",))
    else:
        yield prefix, value
