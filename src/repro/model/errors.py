"""Exception hierarchy for the repro document store.

All library-raised exceptions derive from :class:`ReproError` so that callers
can catch storage, format, and query failures with a single handler while
still being able to discriminate specific conditions.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """Raised when a record cannot be reconciled with the inferred schema."""


class EncodingError(ReproError):
    """Raised when a value cannot be encoded or a byte stream cannot be decoded."""


class StorageError(ReproError):
    """Raised on page, buffer-cache, or component-level storage failures."""


class PageOverflowError(StorageError):
    """Raised when a value does not fit in a page and cannot be split."""


class ComponentStateError(StorageError):
    """Raised when an LSM component is used in an invalid lifecycle state."""


class DuplicateKeyError(StorageError):
    """Raised when inserting a primary key that already exists (load mode)."""


class KeyNotFoundError(StorageError):
    """Raised by point lookups when the requested primary key does not exist."""


class QueryError(ReproError):
    """Raised when a logical plan is malformed or cannot be executed."""


class UnknownFunctionError(QueryError):
    """Raised when a :class:`~repro.query.expressions.Call` names no built-in.

    The message lists every registered function so a typo is immediately
    diagnosable (``register_function`` extends the list at runtime).
    """


class SqlppError(QueryError):
    """A SQL++ frontend error (lexing, parsing, or binding) with a position.

    ``line`` and ``column`` are 1-based and point at the offending token; the
    message always embeds them (``... at line 2 col 14``) so errors stay
    diagnostic even when only the string survives.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        super().__init__(message)
        self.line = line
        self.column = column


class CodegenError(QueryError):
    """Raised when code generation fails for a pipeline segment."""


class DatasetError(ReproError):
    """Raised when a dataset (collection) is missing or misconfigured."""


class TransactionError(ReproError):
    """Raised when a transaction is used in an invalid lifecycle state."""


class TransactionConflictError(TransactionError):
    """Raised at commit when first-write-wins validation fails.

    Another transaction (or an auto-committed single-document write)
    committed a version of one of this transaction's written keys after this
    transaction pinned its snapshot; the transaction is aborted, nothing was
    applied, and the caller may retry on a fresh snapshot.  ``dataset`` and
    ``key`` identify the first conflicting write found.
    """

    def __init__(self, message: str, dataset: str = "", key: object = None) -> None:
        super().__init__(message)
        self.dataset = dataset
        self.key = key
