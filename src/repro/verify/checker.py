"""AWDIT-style offline isolation checking over recorded histories.

Given a client-observable :class:`~repro.verify.history.History`, the checker
validates it against one of four cumulative isolation levels and, on failure,
produces a *minimal counterexample*: the shortest dependency cycle (or the
smallest axiom witness) that proves the violation.

The dependency relations are inferred exactly the way AWDIT does:

* **wr** (write-read) from values — the recording discipline is that every
  written value is unique, so the value a read observed identifies the
  transaction that wrote it;
* **ww** (write-write) from the engine-reported ``commit_seq`` — the engine
  serializes commits, so commit sequences are a trusted total order per key;
* **rw** (read-write anti-dependency) derived from the two above: a reader
  of version ``v`` anti-depends on the writer of the version that replaced
  ``v``.

Levels (each includes everything below it)::

    read-committed   no aborted reads (G1a), no intermediate reads (G1b),
                     read-your-writes, no reads of never-written or future
                     values
    read-atomic      no fractured reads: observing one of a transaction's
                     writes means observing *all* of its writes at least
                     that fresh
    snapshot         reads form one consistent snapshot (an interval in the
                     commit order consistent with every read), and lost
                     updates are impossible (first-committer-wins); write
                     skew is still allowed
    serializable     the dependency graph (so ∪ wr ∪ ww ∪ rw) is acyclic

A read observing ``None`` is taken to be the initial (never written) version
— histories that exercise deletes should record unique tombstone values
instead of ``None`` so the wr inference stays exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .history import History, Operation, TransactionRecord, WRITE

#: The cumulative isolation levels, weakest first.
LEVELS = ("read-committed", "read-atomic", "snapshot", "serializable")

#: Sentinel "sequence" for the initial (never-written) version of a key.
INITIAL_SEQ = 0


@dataclass(frozen=True)
class Violation:
    """One isolation-axiom violation found in a history."""

    level: str  # weakest level this violation already breaks
    axiom: str  # short axiom name, e.g. "G1a", "fractured-read"
    message: str  # human-readable witness
    cycle: Tuple[str, ...] = ()  # rendered dependency edges, when cyclic

    def describe(self) -> str:
        lines = [f"[{self.level}] {self.axiom}: {self.message}"]
        if self.cycle:
            lines.append("  counterexample cycle:")
            for edge in self.cycle:
                lines.append(f"    {edge}")
        return "\n".join(lines)


@dataclass
class CheckResult:
    """The outcome of checking one history at one level."""

    history_name: str
    level: str
    violations: List[Violation] = field(default_factory=list)
    transactions_checked: int = 0
    reads_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def describe(self) -> str:
        if self.ok:
            return (
                f"history {self.history_name!r}: OK at {self.level} "
                f"({self.transactions_checked} transactions, "
                f"{self.reads_checked} reads)"
            )
        lines = [
            f"history {self.history_name!r}: {len(self.violations)} "
            f"violation(s) at {self.level}"
        ]
        for violation in self.violations:
            lines.append(violation.describe())
        return "\n".join(lines)


@dataclass(frozen=True)
class _ReadView:
    """One external read resolved to the version it observed."""

    txn: TransactionRecord
    op: Operation
    version_seq: int  # INITIAL_SEQ for the never-written version
    writer: Optional[TransactionRecord]  # None for the initial version


def _txn_label(txn: TransactionRecord) -> str:
    return f"{txn.session}/{txn.txn_id}"


class _HistoryIndex:
    """Everything the axioms need, computed once per history."""

    def __init__(self, history: History, result: CheckResult) -> None:
        self.history = history
        self.result = result
        self.transactions = history.transactions()
        self.committed = [t for t in self.transactions if t.status == "committed"]
        #: (key, value) -> (writer txn, op) for every write anywhere.
        self.writer_of: Dict[Tuple[str, object], Tuple[TransactionRecord, Operation]] = {}
        #: key -> committed versions [(commit_seq, txn)], ascending.
        self.versions: Dict[str, List[Tuple[int, TransactionRecord]]] = {}
        #: External reads resolved to versions (filled by _resolve_reads).
        self.reads: List[_ReadView] = []
        self._index_writes()
        self._resolve_reads()

    # -- writes -------------------------------------------------------------------------
    def _index_writes(self) -> None:
        for txn in self.transactions:
            for op in txn.writes():
                slot = (op.key, op.value)
                if slot in self.writer_of:
                    other, _ = self.writer_of[slot]
                    self.result.violations.append(
                        Violation(
                            "read-committed",
                            "history-error",
                            f"value {op.value!r} for key {op.key!r} written by "
                            f"both {_txn_label(other)} and {_txn_label(txn)}; "
                            "written values must be unique for wr inference",
                        )
                    )
                    continue
                self.writer_of[slot] = (txn, op)
        for txn in self.committed:
            final = txn.final_writes()
            if not final:
                continue
            if txn.commit_seq is None:
                self.result.violations.append(
                    Violation(
                        "read-committed",
                        "history-error",
                        f"committed writer {_txn_label(txn)} has no commit_seq; "
                        "the ww order cannot be established",
                    )
                )
                continue
            for key in final:
                self.versions.setdefault(key, []).append((txn.commit_seq, txn))
        for chain in self.versions.values():
            chain.sort(key=lambda entry: entry[0])

    def next_version_seq(self, key: str, version_seq: int) -> Optional[int]:
        """Commit seq of the version replacing ``version_seq`` (None = latest)."""
        for seq, _ in self.versions.get(key, []):
            if seq > version_seq:
                return seq
        return None

    def next_version_writer(
        self, key: str, version_seq: int
    ) -> Optional[TransactionRecord]:
        for seq, txn in self.versions.get(key, []):
            if seq > version_seq:
                return txn
        return None

    # -- reads --------------------------------------------------------------------------
    def _resolve_reads(self) -> None:
        """Classify every read; the read-committed axioms live here.

        Walking each transaction's operations in order with the set of its
        own already-written keys distinguishes *external* reads (of other
        transactions' versions — these feed the higher-level axioms) from
        internal ones, which must observe the transaction's own latest write
        (read-your-writes).
        """
        add = self.result.violations.append
        for txn in self.transactions:
            own: Dict[str, object] = {}
            for op in txn.ops:
                if op.kind == WRITE:
                    own[op.key] = op.value
                    continue
                self.result.reads_checked += 1
                if op.key in own:
                    if op.value != own[op.key]:
                        add(
                            Violation(
                                "read-committed",
                                "read-your-writes",
                                f"{_txn_label(txn)} op {op.op_id} read "
                                f"{op.key!r}={op.value!r} after writing "
                                f"{own[op.key]!r} in the same transaction",
                            )
                        )
                    continue
                if op.value is None:
                    self.reads.append(_ReadView(txn, op, INITIAL_SEQ, None))
                    continue
                found = self.writer_of.get((op.key, op.value))
                if found is None:
                    add(
                        Violation(
                            "read-committed",
                            "unwritten-value",
                            f"{_txn_label(txn)} op {op.op_id} read "
                            f"{op.key!r}={op.value!r}, a value no transaction "
                            "wrote",
                        )
                    )
                    continue
                writer, write_op = found
                if writer is txn:
                    add(
                        Violation(
                            "read-committed",
                            "future-read",
                            f"{_txn_label(txn)} op {op.op_id} read its own "
                            f"later write of {op.key!r} (op {write_op.op_id})",
                        )
                    )
                    continue
                if writer.status == "aborted":
                    add(
                        Violation(
                            "read-committed",
                            "G1a",
                            f"{_txn_label(txn)} op {op.op_id} read "
                            f"{op.key!r}={op.value!r} written by aborted "
                            f"transaction {_txn_label(writer)}",
                            cycle=(
                                f"{_txn_label(writer)} --wr({op.key})--> "
                                f"{_txn_label(txn)}  [writer aborted]",
                            ),
                        )
                    )
                    continue
                if writer.status != "committed":
                    add(
                        Violation(
                            "read-committed",
                            "dirty-read",
                            f"{_txn_label(txn)} op {op.op_id} read "
                            f"{op.key!r}={op.value!r} from transaction "
                            f"{_txn_label(writer)} which never committed",
                        )
                    )
                    continue
                if writer.final_writes()[op.key].value != op.value:
                    add(
                        Violation(
                            "read-committed",
                            "G1b",
                            f"{_txn_label(txn)} op {op.op_id} read the "
                            f"intermediate value {op.value!r} of {op.key!r} "
                            f"from {_txn_label(writer)} (not its final write)",
                            cycle=(
                                f"{_txn_label(writer)} --wr({op.key})--> "
                                f"{_txn_label(txn)}  [intermediate value]",
                            ),
                        )
                    )
                    continue
                if writer.commit_seq is None:
                    # Already reported as a history-error above.
                    continue
                self.reads.append(_ReadView(txn, op, writer.commit_seq, writer))


def _check_read_atomic(index: _HistoryIndex) -> None:
    """No fractured reads: observing S's write of k1 means every other key S
    finally wrote must be observed at least as fresh as S's version of it."""
    reads_by_txn: Dict[int, List[_ReadView]] = {}
    for view in index.reads:
        reads_by_txn.setdefault(id(view.txn), []).append(view)
    for views in reads_by_txn.values():
        txn = views[0].txn
        by_key = {view.op.key: view for view in views}
        for view in views:
            writer = view.writer
            if writer is None:
                continue
            for other_key in writer.final_writes():
                other = by_key.get(other_key)
                if other is None or other_key == view.op.key:
                    continue
                if other.version_seq < writer.commit_seq:
                    index.result.violations.append(
                        Violation(
                            "read-atomic",
                            "fractured-read",
                            f"{_txn_label(txn)} read {view.op.key!r} from "
                            f"{_txn_label(writer)} (seq {writer.commit_seq}) "
                            f"but read {other_key!r} at older version "
                            f"(seq {other.version_seq})",
                            cycle=(
                                f"{_txn_label(writer)} --wr({view.op.key})--> "
                                f"{_txn_label(txn)}",
                                f"{_txn_label(txn)} --rw({other_key})--> "
                                f"{_txn_label(writer)}",
                            ),
                        )
                    )


def _check_snapshot(index: _HistoryIndex) -> None:
    """Consistent-snapshot interval per transaction + first-committer-wins."""
    reads_by_txn: Dict[int, List[_ReadView]] = {}
    for view in index.reads:
        reads_by_txn.setdefault(id(view.txn), []).append(view)
    for views in reads_by_txn.values():
        txn = views[0].txn
        # Every read pins the snapshot to [version_seq, next_version_seq):
        # one commit point must satisfy all of them simultaneously.
        floor_view = max(views, key=lambda view: view.version_seq)
        ceiling_view = min(
            views,
            key=lambda view: (
                index.next_version_seq(view.op.key, view.version_seq)
                if index.next_version_seq(view.op.key, view.version_seq) is not None
                else float("inf")
            ),
        )
        ceiling = index.next_version_seq(
            ceiling_view.op.key, ceiling_view.version_seq
        )
        if ceiling is not None and floor_view.version_seq >= ceiling:
            replacer = index.next_version_writer(
                ceiling_view.op.key, ceiling_view.version_seq
            )
            floor_writer = (
                _txn_label(floor_view.writer)
                if floor_view.writer is not None
                else "<initial>"
            )
            index.result.violations.append(
                Violation(
                    "snapshot",
                    "inconsistent-snapshot",
                    f"{_txn_label(txn)} read {floor_view.op.key!r} at seq "
                    f"{floor_view.version_seq} (from {floor_writer}) but "
                    f"{ceiling_view.op.key!r} at seq "
                    f"{ceiling_view.version_seq}, already replaced at seq "
                    f"{ceiling}: no single snapshot contains both reads",
                    cycle=(
                        f"{_txn_label(txn)} --rw({ceiling_view.op.key})--> "
                        f"{_txn_label(replacer)}",
                        f"{_txn_label(replacer)} --ww/wr--> ... --> "
                        f"{floor_writer} --wr({floor_view.op.key})--> "
                        f"{_txn_label(txn)}",
                    ),
                )
            )
    # Lost update: a committed transaction that read key k (version r) and
    # wrote k must be the *first* committer after r — any other committed
    # writer of k landing in between means this transaction overwrote a
    # version it never saw.
    for view in index.reads:
        txn = view.txn
        if txn.status != "committed" or txn.commit_seq is None:
            continue
        if view.op.key not in txn.final_writes():
            continue
        for seq, other in index.versions.get(view.op.key, []):
            if other is txn:
                continue
            if view.version_seq < seq < txn.commit_seq:
                index.result.violations.append(
                    Violation(
                        "snapshot",
                        "lost-update",
                        f"{_txn_label(txn)} read {view.op.key!r} at seq "
                        f"{view.version_seq}, then committed its own write at "
                        f"seq {txn.commit_seq}, silently overwriting "
                        f"{_txn_label(other)}'s intervening commit (seq {seq})",
                        cycle=(
                            f"{_txn_label(txn)} --rw({view.op.key})--> "
                            f"{_txn_label(other)}",
                            f"{_txn_label(other)} --ww({view.op.key})--> "
                            f"{_txn_label(txn)}",
                        ),
                    )
                )
                break


def _check_serializable(index: _HistoryIndex) -> None:
    """Acyclicity of the direct serialization graph (so ∪ wr ∪ ww ∪ rw)."""
    nodes = [t for t in index.committed]
    node_ids = {id(t): i for i, t in enumerate(nodes)}
    edges: Dict[int, Dict[int, str]] = {i: {} for i in range(len(nodes))}

    def add_edge(a: TransactionRecord, b: TransactionRecord, label: str) -> None:
        if a is b:
            return
        i, j = node_ids.get(id(a)), node_ids.get(id(b))
        if i is None or j is None:
            return
        edges[i].setdefault(j, label)

    for records in index.history.sessions.values():
        committed_in_session = [t for t in records if t.status == "committed"]
        for first, second in zip(committed_in_session, committed_in_session[1:]):
            add_edge(first, second, "so")
    for view in index.reads:
        if view.txn.status != "committed":
            continue
        if view.writer is not None:
            add_edge(view.writer, view.txn, f"wr({view.op.key})")
        replacer = index.next_version_writer(view.op.key, view.version_seq)
        if replacer is not None:
            add_edge(view.txn, replacer, f"rw({view.op.key})")
    for key, chain in index.versions.items():
        for (_, first), (_, second) in zip(chain, chain[1:]):
            add_edge(first, second, f"ww({key})")

    cycle = _shortest_cycle(edges)
    if cycle is not None:
        rendered = tuple(
            f"{_txn_label(nodes[a])} --{edges[a][b]}--> {_txn_label(nodes[b])}"
            for a, b in zip(cycle, cycle[1:] + cycle[:1])
        )
        index.result.violations.append(
            Violation(
                "serializable",
                "dsg-cycle",
                f"the dependency graph has a cycle of length {len(cycle)}; "
                "no serial order of these transactions explains the history",
                cycle=rendered,
            )
        )


def _shortest_cycle(edges: Dict[int, Dict[int, str]]) -> Optional[List[int]]:
    """Shortest directed cycle via BFS from every node (graphs here are small)."""
    best: Optional[List[int]] = None
    for start in edges:
        # BFS back to `start`.
        parents: Dict[int, int] = {start: start}
        frontier = [start]
        found = None
        while frontier and found is None:
            next_frontier = []
            for node in frontier:
                for neighbor in edges[node]:
                    if neighbor == start:
                        found = node
                        break
                    if neighbor not in parents:
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
                if found is not None:
                    break
            frontier = next_frontier
        if found is None:
            continue
        cycle = [found]
        while cycle[-1] != start:
            cycle.append(parents[cycle[-1]])
        cycle.reverse()  # start ... found, edges follow consecutive pairs
        if best is None or len(cycle) < len(best):
            best = cycle
    return best


def check_history(history: History, level: str = "snapshot") -> CheckResult:
    """Check a recorded history against an isolation level.

    Args:
        history: The client-observable history to validate.
        level: One of :data:`LEVELS`; each level also enforces every weaker
            one (checking at ``"snapshot"`` includes read-committed and
            read-atomic axioms).

    Returns:
        A :class:`CheckResult`; ``result.ok`` is True when no axiom of the
        requested level (or below) is violated, otherwise
        ``result.describe()`` renders every violation with its minimal
        counterexample.
    """
    if level not in LEVELS:
        raise ValueError(f"unknown isolation level {level!r}; expected one of {LEVELS}")
    rank = LEVELS.index(level)
    result = CheckResult(history_name=history.name, level=level)
    index = _HistoryIndex(history, result)  # runs the read-committed axioms
    result.transactions_checked = len(index.transactions)
    if rank >= LEVELS.index("read-atomic"):
        _check_read_atomic(index)
    if rank >= LEVELS.index("snapshot"):
        _check_snapshot(index)
    if rank >= LEVELS.index("serializable"):
        _check_serializable(index)
    return result
