"""Client-observable transaction histories: recording, (de)serialization.

A *history* is what AWDIT-style isolation checking consumes: per-session
sequences of transactions, each a sequence of read/write operations with the
values the client actually observed — no engine internals.  The checker
(:mod:`repro.verify.checker`) infers the write-read relation from values (the
recording discipline is that every written value is unique) and the
write-write order from the engine-reported commit sequence numbers.

Recording is thread-safe by construction: a :class:`HistoryRecorder` hands
each client thread its own :class:`SessionRecorder`, which appends to a
session-private list; only the global operation-id counter is shared (one
atomic increment per event).  Histories serialize to a single JSON document
so CI can archive a violating run as an artifact and replay it through
``python -m repro.verify``.
"""

from __future__ import annotations

import itertools
import json
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Operation kinds recorded in a history.
READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One client-observed operation inside a transaction.

    ``value`` is what the client read (None = key absent/deleted) or wrote
    (None = delete).  ``op_id`` is globally unique within the history and
    monotonic in recording order, so counterexamples can name the exact
    events involved.
    """

    op_id: int
    kind: str  # READ or WRITE
    key: str
    value: object


@dataclass
class TransactionRecord:
    """One transaction: its session, lifecycle outcome, and operations.

    ``commit_seq`` is the engine-assigned commit sequence (the write-write
    order the checker trusts); None for aborted, read-only, or still-open
    transactions.  Auto-committed single operations are recorded as
    one-operation transactions.
    """

    txn_id: str
    session: str
    index: int  # position within the session (the session order)
    status: str = "open"  # open | committed | aborted
    commit_seq: Optional[int] = None
    ops: List[Operation] = field(default_factory=list)

    def reads(self) -> List[Operation]:
        return [op for op in self.ops if op.kind == READ]

    def writes(self) -> List[Operation]:
        return [op for op in self.ops if op.kind == WRITE]

    def final_writes(self) -> Dict[str, Operation]:
        """Last write per key — what the transaction installs if it commits."""
        final: Dict[str, Operation] = {}
        for op in self.ops:
            if op.kind == WRITE:
                final[op.key] = op
        return final


@dataclass
class History:
    """A complete recorded history: every session's transaction sequence."""

    name: str = "history"
    sessions: Dict[str, List[TransactionRecord]] = field(default_factory=dict)

    def transactions(self) -> List[TransactionRecord]:
        out: List[TransactionRecord] = []
        for records in self.sessions.values():
            out.extend(records)
        return out

    # -- serialization ----------------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "sessions": [
                {
                    "session": session,
                    "transactions": [
                        {
                            "id": txn.txn_id,
                            "status": txn.status,
                            "commit_seq": txn.commit_seq,
                            "ops": [
                                {
                                    "op_id": op.op_id,
                                    "kind": op.kind,
                                    "key": op.key,
                                    "value": op.value,
                                }
                                for op in txn.ops
                            ],
                        }
                        for txn in records
                    ],
                }
                for session, records in self.sessions.items()
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "History":
        history = cls(name=data.get("name", "history"))
        fallback_op_ids = itertools.count(1)
        for session_data in data["sessions"]:
            session = session_data["session"]
            records: List[TransactionRecord] = []
            for index, txn_data in enumerate(session_data["transactions"]):
                record = TransactionRecord(
                    txn_id=str(txn_data["id"]),
                    session=session,
                    index=index,
                    status=txn_data.get("status", "committed"),
                    commit_seq=txn_data.get("commit_seq"),
                )
                for op_data in txn_data["ops"]:
                    record.ops.append(
                        Operation(
                            op_id=op_data.get("op_id", next(fallback_op_ids)),
                            kind=op_data["kind"],
                            key=op_data["key"],
                            value=op_data["value"],
                        )
                    )
                records.append(record)
            history.sessions[session] = records
        return history

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=1, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "History":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_dict(json.load(handle))


class HistoryRecorder:
    """Builds a :class:`History` from concurrently recording client threads."""

    def __init__(self, name: str = "history") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._op_ids = itertools.count(1)
        self._sessions: Dict[str, "SessionRecorder"] = {}

    def _next_op_id(self) -> int:
        # itertools.count.__next__ is atomic under the GIL, but taking the
        # lock keeps the guarantee independent of that implementation detail.
        with self._lock:
            return next(self._op_ids)

    def session(self, name: str) -> "SessionRecorder":
        """The (single) recorder for one client thread; created on first use."""
        with self._lock:
            recorder = self._sessions.get(name)
            if recorder is None:
                recorder = SessionRecorder(self, name)
                self._sessions[name] = recorder
            return recorder

    def history(self) -> History:
        history = History(name=self.name)
        with self._lock:
            for name, session in self._sessions.items():
                history.sessions[name] = list(session.records)
        return history


class SessionRecorder:
    """Records one client thread's transactions, in session order.

    Not thread-safe across threads — by design each session belongs to
    exactly one client thread (that *is* the session order).
    """

    def __init__(self, recorder: HistoryRecorder, name: str) -> None:
        self._recorder = recorder
        self.name = name
        self.records: List[TransactionRecord] = []

    def begin(self, txn_id: Optional[object] = None) -> "TxnRecorder":
        index = len(self.records)
        record = TransactionRecord(
            txn_id=str(txn_id if txn_id is not None else f"{self.name}-{index}"),
            session=self.name,
            index=index,
        )
        self.records.append(record)
        return TxnRecorder(self._recorder, record)

    def auto_write(self, key: str, value: object, commit_seq: int) -> None:
        """Record one auto-committed single write as its own transaction."""
        txn = self.begin()
        txn.write(key, value)
        txn.committed(commit_seq)

    def auto_read(self, key: str, value: object) -> None:
        """Record one non-transactional read as a read-only transaction."""
        txn = self.begin()
        txn.read(key, value)
        txn.committed(None)


class TxnRecorder:
    """Appends operations to one open :class:`TransactionRecord`."""

    def __init__(self, recorder: HistoryRecorder, record: TransactionRecord) -> None:
        self._recorder = recorder
        self.record = record

    def read(self, key: str, value: object) -> None:
        self.record.ops.append(
            Operation(self._recorder._next_op_id(), READ, key, value)
        )

    def write(self, key: str, value: object) -> None:
        self.record.ops.append(
            Operation(self._recorder._next_op_id(), WRITE, key, value)
        )

    def committed(self, commit_seq: Optional[int]) -> None:
        self.record.status = "committed"
        self.record.commit_seq = commit_seq

    def aborted(self) -> None:
        self.record.status = "aborted"
