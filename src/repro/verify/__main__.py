"""Check saved histories from the command line: ``python -m repro.verify``.

Usage::

    python -m repro.verify run1.json run2.json --level snapshot

Prints one line per OK history and the full minimal counterexample for every
violating one; exits 1 if any history fails (CI's ``txn-verify`` job relies
on that to fail the build and archive the offending history file).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .checker import LEVELS, check_history
from .history import History


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify",
        description="Check recorded transaction histories against an isolation level.",
    )
    parser.add_argument("histories", nargs="+", metavar="HISTORY.json")
    parser.add_argument(
        "--level",
        choices=LEVELS,
        default="snapshot",
        help="isolation level to certify (default: snapshot)",
    )
    args = parser.parse_args(argv)
    failures = 0
    for path in args.histories:
        result = check_history(History.load(path), level=args.level)
        print(result.describe())
        if not result.ok:
            failures += 1
    if failures:
        print(f"{failures} of {len(args.histories)} histories violate {args.level}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
