"""Isolation verification: history recording + AWDIT-style offline checking.

Record what concurrent clients actually observed with
:class:`HistoryRecorder`, then validate the history against an isolation
level with :func:`check_history`::

    recorder = HistoryRecorder("stress-run")
    session = recorder.session("writer-0")
    txn = session.begin()
    txn.read("accounts/1", None)
    txn.write("accounts/1", "w0-op1")
    txn.committed(commit_seq)

    result = check_history(recorder.history(), level="snapshot")
    assert result.ok, result.describe()

``python -m repro.verify <history.json> --level snapshot`` checks saved
histories from the command line (CI pipes the stress suite's recorded
histories through it); exit status 1 signals a violation, with the minimal
counterexample printed to stdout.
"""

from .checker import LEVELS, CheckResult, Violation, check_history
from .history import (
    History,
    HistoryRecorder,
    Operation,
    SessionRecorder,
    TransactionRecord,
    TxnRecorder,
)

__all__ = [
    "CheckResult",
    "History",
    "HistoryRecorder",
    "LEVELS",
    "Operation",
    "SessionRecorder",
    "TransactionRecord",
    "TxnRecorder",
    "Violation",
    "check_history",
]
