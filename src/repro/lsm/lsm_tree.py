"""The LSM B+-tree primary index.

One :class:`LSMTree` manages a single data partition's primary index: the
in-memory component, the stack of immutable on-disk components (newest first),
flushing, merging (vertical merges for the columnar layouts), reconciling
scans, and point lookups.  The on-disk layout — ``open``, ``vector``,
``apax``, or ``amax`` — is chosen per dataset and fixed at creation time.

Concurrency model (see ``docs/ARCHITECTURE.md`` for the full picture): every
mutation of the tree's published state (memtable, frozen memtables, component
stack, counters) happens under a per-tree lock and replaces lists instead of
mutating them; readers *pin* an immutable snapshot of that state and never
block writers.  When a :class:`~repro.lsm.scheduler.BackgroundScheduler` is
attached, a full memtable is *rotated* (swapped for a fresh one, O(1)) and
flushed on a worker thread; merges run on the pool too.  Component building —
the expensive part — always happens outside the tree lock.  Per tree, at most
one background flush-or-merge runs at a time (``_maintenance_lock``), which
keeps the component stack, the durable-LSN publication order, and the
inferred schema single-writer.
"""

from __future__ import annotations

import heapq
import threading
import time
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.columns import ShreddedColumn
from ..core.schema import Schema
from ..columnar.amax import AmaxComponentBuilder
from ..columnar.apax import ApaxComponentBuilder
from ..columnar.base import ColumnarComponent
from ..model.errors import StorageError
from ..obs.metrics import maintenance_io
from ..rowformats.vector_format import FieldNameDictionary
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from .component import (
    COLUMNAR_LAYOUTS,
    LAYOUT_AMAX,
    LAYOUT_APAX,
    LAYOUT_OPEN,
    LAYOUT_VECTOR,
    ROW_LAYOUTS,
    ComponentCursor,
    DiskComponent,
    FlushEntry,
    RowComponent,
    RowComponentBuilder,
)
from .memtable import FrozenMemtable, MemTable
from .merge_policy import MergeScheduler, TieringMergePolicy
from .scheduler import BackgroundScheduler
from .wal import TransactionLog

#: Sentinel yielded by :func:`_reconciled` for live records whose newest
#: version failed the pushed-down scan predicates: the key is consumed (it
#: still shadows older versions) but no document is assembled for it.
FILTERED = object()

#: How long a rotation waits for a background flush to free a frozen-memtable
#: slot before proceeding anyway (soft backpressure; avoids deadlocking when
#: the pool is paused or wedged).
ROTATION_STALL_TIMEOUT_S = 2.0


class _MemtableCursor(ComponentCursor):
    """Cursor adapter over an in-memory component's sorted entries."""

    def __init__(self, entries: List[FlushEntry]) -> None:
        self._entries = entries
        self._position = -1

    def advance(self) -> bool:
        self._position += 1
        return self._position < len(self._entries)

    @property
    def key(self):
        return self._entries[self._position][0]

    @property
    def is_antimatter(self) -> bool:
        return self._entries[self._position][1]

    def document(self) -> Optional[dict]:
        return self._entries[self._position][2]


class TreeSnapshot:
    """A pinned, immutable view of one partition's component stack.

    Holds the in-memory entry sources (current-memtable copy plus any frozen
    memtables, newest first) and the disk components that were live at pin
    time.  The disk components stay pinned — a merge that retires them defers
    their destruction — until :meth:`close` releases the pins, so a long scan
    never observes a torn or half-deleted stack.
    """

    def __init__(
        self,
        tree: "LSMTree",
        memtable_sources: List[object],
        components: Tuple[DiskComponent, ...],
    ) -> None:
        self._tree = tree
        #: Entry providers newest → oldest: materialized lists or FrozenMemtables.
        self.memtable_sources = memtable_sources
        self.components = components
        self._closed = False

    def cursors(
        self,
        fields: Optional[Sequence[str]] = None,
        pushdown=None,
        include_memtables: bool = True,
    ) -> List[ComponentCursor]:
        """Cursors over every source, newest first (reconciliation order)."""
        cursors: List[ComponentCursor] = []
        if include_memtables:
            for source in self.memtable_sources:
                entries = source if isinstance(source, list) else source.entries
                if entries:
                    cursors.append(_MemtableCursor(entries))
        for component in self.components:
            cursors.append(component.cursor(fields, pushdown))
        return cursors

    def point_lookup(self, key, fields: Optional[Sequence[str]] = None) -> Optional[dict]:
        """Newest version of ``key`` *as of the pin* (None when absent/deleted).

        The same newest-first resolution as :meth:`LSMTree.point_lookup`, but
        against the pinned sources only — inserts, rotations, flushes, and
        merges that happened after the pin are invisible.  This is the read
        path of multi-statement transactions (see :mod:`repro.store.txn`).
        """
        import bisect

        for source in self.memtable_sources:
            if isinstance(source, list):
                # Materialized (key, antimatter, document) entries in key order.
                index = bisect.bisect_left(source, (key,))
                if index < len(source) and source[index][0] == key:
                    _, antimatter, document = source[index]
                    return None if antimatter else document
            else:  # FrozenMemtable
                entry = source.get(key)
                if entry is not None:
                    antimatter, document = entry
                    return None if antimatter else document
        for component in self.components:
            found = component.point_lookup(key, fields)
            if found is not None:
                antimatter, document = found
                return None if antimatter else document
        return None

    def close(self) -> None:
        """Release the component pins (idempotent)."""
        if not self._closed:
            self._closed = True
            self._tree._unpin_components(self.components)

    def __del__(self) -> None:
        # Safety net for abandoned scans: a generator that was never started
        # runs none of its body on close/GC (PEP 342), so the scan's
        # ``finally`` cannot be the only unpin path — without this, a
        # peek-one-row-and-drop caller would pin retired components forever.
        self.close()

    def __enter__(self) -> "TreeSnapshot":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class LSMTree:
    """A single partition's primary LSM index."""

    def __init__(
        self,
        name: str,
        layout: str,
        schema: Schema,
        device: StorageDevice,
        buffer_cache: BufferCache,
        memory_budget_bytes: int = 8 * 1024 * 1024,
        compression: str = "snappy",
        merge_policy: Optional[TieringMergePolicy] = None,
        merge_scheduler: Optional[MergeScheduler] = None,
        transaction_log: Optional[TransactionLog] = None,
        amax_max_records_per_leaf: int = 15000,
        amax_empty_page_tolerance: float = 0.15,
        dataset_name: Optional[str] = None,
        partition_id: int = 0,
        on_disk_state_changed=None,
        scheduler: Optional[BackgroundScheduler] = None,
        max_frozen_memtables: int = 4,
    ) -> None:
        if layout not in ROW_LAYOUTS + COLUMNAR_LAYOUTS:
            raise StorageError(f"unknown layout {layout!r}")
        self.name = name
        self.layout = layout
        self.schema = schema
        self.device = device
        self.buffer_cache = buffer_cache
        self.compression = compression
        self.memtable = MemTable(memory_budget_bytes)
        self.components: List[DiskComponent] = []  # newest first, never mutated in place
        self.merge_policy = merge_policy or TieringMergePolicy()
        self.merge_scheduler = merge_scheduler or MergeScheduler()
        self.transaction_log = transaction_log
        self.field_dictionary = FieldNameDictionary()
        self.amax_max_records_per_leaf = amax_max_records_per_leaf
        self.amax_empty_page_tolerance = amax_empty_page_tolerance
        #: WAL routing identity: records are addressed (dataset, partition).
        self.dataset_name = dataset_name or name
        self.partition_id = partition_id
        #: LSN of the newest operation this partition logged (0 = none).
        self.last_logged_lsn = 0
        #: LSN up to which this partition's operations live in disk
        #: components; replay after a crash starts just above it.
        self.durable_lsn = 0
        #: Callback fired after every flush/merge (the dataset uses it to
        #: re-persist its manifest atomically); None for transient trees.
        self.on_disk_state_changed = on_disk_state_changed
        #: Background pool for flushes/merges; None = fully synchronous.
        self.scheduler = scheduler
        self.max_frozen_memtables = max_frozen_memtables
        self._component_counter = 0
        self.flush_count = 0
        self.merge_count = 0
        #: Guards every published-state transition (memtable swap, component
        #: stack replacement, counters, pins).  Held only for O(stack) work.
        self._lock = threading.RLock()
        #: Signalled whenever a frozen memtable drains (rotation backpressure).
        self._stack_changed = threading.Condition(self._lock)
        #: Serializes flush/merge *execution* per tree (component building,
        #: schema inference); never held while ingesting or reading.
        self._maintenance_lock = threading.Lock()
        #: Rotated memtables awaiting flush, oldest first.
        self._frozen: List[FrozenMemtable] = []
        #: id(component) -> number of snapshots pinning it.
        self._pins: Dict[int, int] = {}
        #: id(component) -> merged-away component awaiting its last unpin.
        self._retired: Dict[int, DiskComponent] = {}
        #: Schema / field-dictionary snapshots as of the last completed
        #: flush/merge — what the manifest persists (never a torn mid-build
        #: inference state).
        self._durable_schema = schema.to_dict()
        self._durable_field_names = self.field_dictionary.to_dict()
        # Metric children, resolved once per tree.  A device without an
        # enabled registry hands out no-op instruments, so these stay cheap.
        metrics = device.metrics
        self._m_rotations = metrics.counter(
            "repro_memtable_rotations_total"
        ).labels(dataset=self.dataset_name)
        self._m_stalls = metrics.counter(
            "repro_backpressure_stalls_total"
        ).labels(dataset=self.dataset_name)
        self._m_flush_s = metrics.histogram("repro_flush_seconds").labels(
            dataset=self.dataset_name, layout=self.layout
        )
        self._m_merge_s = metrics.histogram("repro_merge_seconds").labels(
            dataset=self.dataset_name, layout=self.layout
        )

    # -- ingestion --------------------------------------------------------------------
    def insert(self, key, document: dict) -> None:
        """Insert (or blindly overwrite) a record in the in-memory component."""
        with self._lock:
            self._log(key, document, antimatter=False)
            self.memtable.put(key, document)

    upsert = insert

    def delete(self, key) -> None:
        """Delete a record by adding an anti-matter entry."""
        with self._lock:
            self._log(key, None, antimatter=True)
            self.memtable.delete(key)

    def _log(self, key, document: Optional[dict], antimatter: bool) -> None:
        if self.transaction_log is None:
            return
        self.last_logged_lsn = self.transaction_log.log_record(
            self.dataset_name, self.partition_id, key, document, antimatter
        )

    def apply_replayed(self, key, document: Optional[dict], antimatter: bool, lsn: int) -> None:
        """Apply one already-logged operation without re-logging it.

        Two callers: WAL replay during recovery, and transaction commit
        (which logged all of its write records plus a commit record before
        applying any of them).
        """
        with self._lock:
            if antimatter:
                self.memtable.delete(key)
            else:
                self.memtable.put(key, document)
            self.last_logged_lsn = max(self.last_logged_lsn, lsn)

    @property
    def needs_flush(self) -> bool:
        return self.memtable.is_full

    # -- flush -----------------------------------------------------------------------
    def flush(self, force: bool = True) -> Optional[DiskComponent]:
        """Flush the in-memory component into a new on-disk component.

        Synchronous: rotates the current memtable (if non-empty) and drains
        every frozen memtable inline, returning the newest component built
        (None when there was nothing to flush).  Safe to call while a
        background scheduler is attached — execution serializes with any
        in-flight background flush/merge of this tree.
        """
        with self._lock:
            if self.memtable.is_empty and not self._frozen:
                return None
            if not force and not self.memtable.is_full and not self._frozen:
                return None
            if not self.memtable.is_empty:
                self._rotate_locked()
        return self._drain_frozen()

    def request_flush(self) -> None:
        """Rotate the memtable and flush it in the background (sync fallback).

        This is the ingestion path's flush trigger: with a scheduler attached
        the caller only pays the O(1) rotation — the component build and its
        I/O happen on a worker — and rotation applies soft backpressure when
        too many frozen memtables are already waiting.
        """
        if self.scheduler is None:
            self.flush(force=True)
            return
        with self._lock:
            if self.memtable.is_empty:
                return
            self._rotate_locked()
        submitted = self.scheduler.submit(
            self._drain_frozen,
            label=f"flush:{self.name}",
            key=("flush", self.name),
            best_effort=True,
            # Bounded, like the rotation backpressure: a wedged pool with a
            # full queue must stall ingestion at most briefly, never forever.
            timeout=ROTATION_STALL_TIMEOUT_S,
        )
        if not submitted and self.scheduler.is_stopped:
            # The pool is gone (clean shutdown): degrade to the synchronous
            # engine rather than letting frozen memtables pile up unflushed.
            self._drain_frozen()
        # Any other False is benign: either an identical flush request is
        # already queued (dedup) and will drain every frozen memtable, or
        # the bounded wait timed out — the frozen list is capped by rotation
        # backpressure and the next successful flush (or flush_all) drains
        # the backlog.

    def _rotate_locked(self) -> FrozenMemtable:
        """Swap in a fresh memtable; the old one becomes a frozen source."""
        while (
            self.scheduler is not None
            and not self.scheduler.is_stopped
            and len(self._frozen) >= self.max_frozen_memtables
        ):
            # Writer backpressure: wait for a background flush to drain a
            # slot, but never indefinitely (a paused/wedged pool must not
            # deadlock ingestion — memory overshoot beats a hang).
            self._m_stalls.inc()
            if not self._stack_changed.wait(timeout=ROTATION_STALL_TIMEOUT_S):
                break
        self._m_rotations.inc()
        frozen = FrozenMemtable(self.memtable, self.last_logged_lsn)
        self._frozen = self._frozen + [frozen]
        self.memtable = MemTable(self.memtable.budget_bytes)
        return frozen

    def _drain_frozen(self) -> Optional[DiskComponent]:
        """Build a disk component from every frozen memtable, oldest first.

        Runs under the per-tree maintenance lock (one flush/merge at a time
        per tree), so frozen memtables flush in rotation order and the
        durable LSN only ever advances to an LSN whose every predecessor is
        already on disk.  The component build happens outside the tree lock —
        ingestion and reads proceed concurrently.
        """
        built: Optional[DiskComponent] = None
        with self._maintenance_lock:
            while True:
                with self._lock:
                    if not self._frozen:
                        break
                    frozen = self._frozen[0]
                # Flush I/O is maintenance work: its reads/writes must never
                # be attributed to a query racing this drain.
                flush_started = time.perf_counter()
                with maintenance_io():
                    component = self._build_component(frozen.entries)
                self._m_flush_s.observe(time.perf_counter() - flush_started)
                with self._lock:
                    self._frozen = self._frozen[1:]
                    self.components = [component] + self.components
                    # Everything logged up to the rotation point is now in a
                    # disk component; after a crash, replay starts above it.
                    self.durable_lsn = max(self.durable_lsn, frozen.rotated_lsn)
                    self.flush_count += 1
                    self._refresh_durable_state_locked()
                    self._stack_changed.notify_all()
                built = component
        if built is not None:
            self.maybe_merge()
            self._notify_disk_state_changed()
        return built

    def _notify_disk_state_changed(self) -> None:
        if self.on_disk_state_changed is not None:
            self.on_disk_state_changed(self)

    def _refresh_durable_state_locked(self) -> None:
        """Re-snapshot the schema/field dictionary for manifest writes.

        Called at the end of every flush/merge while the maintenance lock is
        held: the schema is only ever mutated by component builds, so this
        snapshot can never capture a torn mid-inference state.
        """
        self._durable_schema = self.schema.to_dict()
        self._durable_field_names = self.field_dictionary.to_dict()

    # -- recovery ----------------------------------------------------------------------
    def restore_state(
        self,
        components: List[DiskComponent],
        component_counter: int,
        flush_count: int,
        merge_count: int,
        durable_lsn: int,
    ) -> None:
        """Adopt recovered on-disk state (components newest first)."""
        with self._lock:
            self.components = list(components)
            self._component_counter = component_counter
            self.flush_count = flush_count
            self.merge_count = merge_count
            self.durable_lsn = durable_lsn
            self.last_logged_lsn = durable_lsn
            self._refresh_durable_state_locked()

    def durable_state(self) -> dict:
        """A consistent snapshot of the manifest-relevant state.

        Component stack, counters, and the durable LSN are read together
        under the tree lock, so a manifest written concurrently with a
        background flush always describes a stack that actually existed —
        and its durable LSN never runs ahead of the components that carry
        those operations.
        """
        with self._lock:
            return {
                "partition_id": self.partition_id,
                "component_counter": self._component_counter,
                "flush_count": self.flush_count,
                "merge_count": self.merge_count,
                "durable_lsn": self.durable_lsn,
                "last_logged_lsn": self.last_logged_lsn,
                "components": [component.file.name for component in self.components],
                "schema": self._durable_schema,
                "field_names": self._durable_field_names,
            }

    def _next_component_id(self) -> str:
        with self._lock:
            self._component_counter += 1
            return f"{self.name}-c{self._component_counter}"

    def _build_component(self, entries: Sequence[FlushEntry]) -> DiskComponent:
        component_id = self._next_component_id()
        if self.layout in ROW_LAYOUTS:
            builder = RowComponentBuilder(
                self.layout,
                component_id,
                self.device,
                self.buffer_cache,
                self.field_dictionary,
            )
            return builder.build(entries)
        builder = self._columnar_builder(component_id)
        return builder.build(entries)

    def _columnar_builder(self, component_id: str):
        if self.layout == LAYOUT_APAX:
            return ApaxComponentBuilder(
                component_id,
                self.device,
                self.buffer_cache,
                self.schema,
                compression=self.compression,
            )
        return AmaxComponentBuilder(
            component_id,
            self.device,
            self.buffer_cache,
            self.schema,
            compression=self.compression,
            max_records_per_leaf=self.amax_max_records_per_leaf,
            empty_page_tolerance=self.amax_empty_page_tolerance,
        )

    # -- merge ------------------------------------------------------------------------
    def maybe_merge(self) -> bool:
        """Apply the merge policy; run (or schedule) at most one merge."""
        if self.scheduler is not None:
            with self._lock:
                sizes = [component.size_bytes for component in self.components]
            if not self.merge_policy.select(sizes):
                return False
            # One pending merge request per tree: duplicates are deduplicated
            # by the pool; the running task re-evaluates the policy itself.
            # Best-effort: a request racing a clean shutdown is simply
            # dropped (the next flush re-evaluates the policy anyway).
            return self.scheduler.submit(
                self._background_merge,
                label=f"merge:{self.name}",
                key=("merge", self.name),
                best_effort=True,
            )
        sizes = [component.size_bytes for component in self.components]
        window = self.merge_policy.select(sizes)
        if not window:
            return False
        if not self.merge_scheduler.try_start():
            return False
        try:
            self._merge(window)
        finally:
            self.merge_scheduler.finish()
        return True

    def _background_merge(self) -> None:
        """One background merge pass; re-queues itself while the policy asks."""
        with self._maintenance_lock:
            # Re-evaluate under the maintenance lock: the stack may have
            # changed since the request was queued (and only maintenance —
            # which we now are — changes it further).
            with self._lock:
                sizes = [component.size_bytes for component in self.components]
            window = self.merge_policy.select(sizes)
            if not window:
                return
            if not self.merge_scheduler.try_start():
                return  # over the concurrent-merge cap; the next flush retries
            try:
                self._merge(window)
            finally:
                self.merge_scheduler.finish()
        # Chain: merging may leave the stack still over policy (e.g. a burst
        # of flushes landed meanwhile); submit a fresh deduplicated request.
        self.maybe_merge()

    def _merge(self, window: List[int]) -> None:
        """Merge the components at the given stack indexes into one.

        Callers must ensure the stack cannot change underneath the window:
        either the tree is synchronous (single-threaded callers) or the
        per-tree maintenance lock is held (background path).  Readers are
        unaffected throughout — they hold pinned snapshots, and merged-away
        components are only destroyed once every pin is released.
        """
        merging = [self.components[index] for index in window]
        keep_antimatter = len(window) < len(self.components)
        merge_started = time.perf_counter()
        with maintenance_io():
            if self.layout in COLUMNAR_LAYOUTS:
                merged = self._merge_columnar(merging, keep_antimatter)
            else:
                merged = self._merge_rows(merging, keep_antimatter)
        self._m_merge_s.observe(time.perf_counter() - merge_started)
        with self._lock:
            survivors = [
                component
                for index, component in enumerate(self.components)
                if index not in set(window)
            ]
            position = min(window)
            survivors.insert(position, merged)
            self.components = survivors
            self.merge_count += 1
            self._refresh_durable_state_locked()
        # Persist the manifest that references the merged component *before*
        # deleting the inputs: a crash in between only orphans the old files,
        # whereas the reverse order would leave the last durable manifest
        # pointing at deleted components and the store unopenable.
        self._notify_disk_state_changed()
        self._retire_components(merging)

    def _merge_rows(
        self, merging: Sequence[DiskComponent], keep_antimatter: bool
    ) -> DiskComponent:
        entries: List[FlushEntry] = []
        for key, antimatter, document in _reconciled(
            [component.cursor() for component in merging]
        ):
            if antimatter and not keep_antimatter:
                continue
            entries.append((key, antimatter, document))
        builder = RowComponentBuilder(
            self.layout,
            self._next_component_id(),
            self.device,
            self.buffer_cache,
            self.field_dictionary,
        )
        return builder.build(entries)

    def _merge_columnar(
        self, merging: Sequence[ColumnarComponent], keep_antimatter: bool
    ) -> DiskComponent:
        """Vertical merge (§4.5.3): keys first, then one column at a time."""
        # Step 1: merge the primary keys, recording which component supplies
        # each output record (the "sequence of component IDs").
        sequence: List[Tuple[int, bool]] = []  # (component index, taken)
        picks: List[Tuple[object, bool]] = []  # (key, antimatter) for taken rows
        iterators = [component.iter_key_entries() for component in merging]
        heads: List[Optional[Tuple[object, bool]]] = [next(it, None) for it in iterators]
        while any(head is not None for head in heads):
            smallest = min(
                (head[0] for head in heads if head is not None),
            )
            winner = None
            for index, head in enumerate(heads):
                if head is not None and head[0] == smallest:
                    if winner is None:
                        winner = index
            for index, head in enumerate(heads):
                if head is not None and head[0] == smallest:
                    taken = index == winner
                    sequence.append((index, taken))
                    if taken:
                        key, antimatter = head
                        if not (antimatter and not keep_antimatter):
                            picks.append((key, antimatter))
                        else:
                            # Annihilated: the record disappears entirely.
                            sequence[-1] = (index, False)
                    heads[index] = next(iterators[index], None)

        # Step 2: build the output columns one column at a time, replaying the
        # recorded sequence against each component's column cursor.
        columns: Dict[int, ShreddedColumn] = {}
        pk_column = self.schema.pk_column
        pk_out = ShreddedColumn(pk_column)
        for key, antimatter in picks:
            pk_out.add_value(0 if antimatter else 1, key)
        columns[pk_column.column_id] = pk_out

        for column in self.schema.value_columns():
            out = ShreddedColumn(column)
            cursors = [component.column_record_cursor(column) for component in merging]
            for component_index, taken in sequence:
                entries = cursors[component_index].next_record()
                if not taken:
                    continue
                for definition_level, value, is_delimiter in entries:
                    out.defs.append(definition_level)
                    if (
                        not is_delimiter
                        and definition_level == column.max_def
                        and column.type_tag != "null"
                    ):
                        out.values.append(value)
            columns[column.column_id] = out

        builder = self._columnar_builder(self._next_component_id())
        return builder.build_from_columns(columns, len(picks))

    # -- snapshot pinning ---------------------------------------------------------------
    def pin_snapshot(self, include_memtables: bool = True) -> TreeSnapshot:
        """Pin the current component stack and capture the in-memory sources.

        The returned snapshot is immutable: subsequent inserts, rotations,
        flushes, and merges do not affect it, and components it references
        survive (undestroyed) until :meth:`TreeSnapshot.close`.
        """
        raw_entries = None
        with self._lock:
            components = tuple(self.components)
            for component in components:
                cid = id(component)
                self._pins[cid] = self._pins.get(cid, 0) + 1
            memtable_sources: List[object] = []
            if include_memtables:
                if not self.memtable.is_empty:
                    # Only the O(n) copy of the mutable memtable needs the
                    # lock; the O(n log n) sort happens below, with writers
                    # already unblocked.  Frozen memtables are immutable and
                    # materialize lazily.
                    raw_entries = self.memtable.entries_snapshot()
                memtable_sources.extend(reversed(self._frozen))  # newest first
        if raw_entries is not None:
            memtable_sources.insert(
                0,
                [
                    (key, antimatter, document)
                    for key, (antimatter, document) in sorted(raw_entries)
                ],
            )
        return TreeSnapshot(self, memtable_sources, components)

    def _unpin_components(self, components: Sequence[DiskComponent]) -> None:
        to_destroy: List[DiskComponent] = []
        with self._lock:
            for component in components:
                cid = id(component)
                remaining = self._pins.get(cid, 0) - 1
                if remaining > 0:
                    self._pins[cid] = remaining
                else:
                    self._pins.pop(cid, None)
                    retired = self._retired.pop(cid, None)
                    if retired is not None:
                        to_destroy.append(retired)
        for component in to_destroy:
            component.destroy()

    def _retire_components(self, components: Sequence[DiskComponent]) -> None:
        """Destroy merged-away components now, or once their last pin drops."""
        to_destroy: List[DiskComponent] = []
        with self._lock:
            for component in components:
                cid = id(component)
                if self._pins.get(cid, 0) > 0:
                    self._retired[cid] = component
                else:
                    to_destroy.append(component)
        for component in to_destroy:
            component.destroy()

    @property
    def retired_component_count(self) -> int:
        """Merged-away components kept alive by reader pins (observability)."""
        with self._lock:
            return len(self._retired)

    # -- reads -------------------------------------------------------------------------
    def scan(
        self,
        fields: Optional[Sequence[str]] = None,
        include_memtable: bool = True,
        pushdown=None,
    ) -> Iterator[Tuple[object, dict]]:
        """Reconciled scan over every component, newest first wins.

        The snapshot is pinned *when scan() is called* (not at first
        iteration), so the caller sees exactly the records live at that
        moment, however long the iteration takes and whatever flushes or
        merges happen meanwhile.

        ``pushdown`` (a :class:`~repro.query.pushdown.PushdownSpec`) lets the
        columnar components prune columns and pre-filter leaf groups; rows
        whose *winning* version fails a pushed predicate are dropped here
        without ever being assembled.  Memtable rows and row-layout components
        ignore the spec and flow through to the engine's residual filter.
        """
        snapshot = self.pin_snapshot(include_memtables=include_memtable)
        return self._scan_snapshot(snapshot, fields, pushdown)

    def _scan_snapshot(
        self, snapshot: TreeSnapshot, fields, pushdown
    ) -> Iterator[Tuple[object, dict]]:
        try:
            cursors = snapshot.cursors(fields, pushdown)
            for key, antimatter, document in _reconciled(cursors):
                if antimatter or document is FILTERED:
                    continue
                yield key, document
        finally:
            snapshot.close()

    def count(self) -> int:
        """Number of live records (reconciled, but without decoding values)."""
        total = 0
        with self.pin_snapshot() as snapshot:
            cursors = snapshot.cursors([])
            for _, antimatter, _ in _reconciled(cursors, decode_documents=False):
                if not antimatter:
                    total += 1
        return total

    def point_lookup(self, key, fields: Optional[Sequence[str]] = None) -> Optional[dict]:
        """Find the newest version of ``key`` (None when absent or deleted).

        Args:
            key: The primary key.
            fields: Optional top-level projection, forwarded to the component
                lookup so columnar components decode only the needed columns.
                Sources that cannot project (memtable, row layouts) may return
                more fields than requested — projection is an optimization,
                never a semantic contract.
        """
        with self._lock:
            entry = self.memtable.get(key)
            if entry is None:
                for frozen in reversed(self._frozen):  # newest rotation first
                    entry = frozen.get(key)
                    if entry is not None:
                        break
            if entry is not None:
                antimatter, document = entry
                return None if antimatter else document
            components = tuple(self.components)
            for component in components:
                cid = id(component)
                self._pins[cid] = self._pins.get(cid, 0) + 1
        try:
            for component in components:
                found = component.point_lookup(key, fields)
                if found is not None:
                    antimatter, document = found
                    return None if antimatter else document
            return None
        finally:
            self._unpin_components(components)

    def contains(self, key) -> bool:
        return self.point_lookup(key) is not None

    # -- statistics ---------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return len(self.components)

    def storage_size_bytes(self) -> int:
        return sum(component.size_bytes for component in self.components)

    def storage_payload_bytes(self) -> int:
        return sum(component.file.payload_bytes for component in self.components)

    def record_count_on_disk(self) -> int:
        return sum(component.record_count for component in self.components)


def _reconciled(
    cursors: Sequence[ComponentCursor], decode_documents: bool = True
) -> Iterator[Tuple[object, bool, Optional[dict]]]:
    """K-way merge over cursors ordered newest → oldest with newest-wins semantics."""
    heap: List[Tuple[object, int]] = []
    active: List[Optional[ComponentCursor]] = list(cursors)
    for rank, cursor in enumerate(active):
        if cursor.advance():
            heapq.heappush(heap, (cursor.key, rank))
        else:
            active[rank] = None
    while heap:
        key, rank = heapq.heappop(heap)
        same_key_ranks = [rank]
        while heap and heap[0][0] == key:
            same_key_ranks.append(heapq.heappop(heap)[1])
        winner_rank = min(same_key_ranks)
        winner = active[winner_rank]
        antimatter = winner.is_antimatter
        document = None
        if decode_documents and not antimatter:
            # Pushed predicates are consulted only *after* newest-wins
            # reconciliation picked the winner, so a failing new version can
            # never resurrect an older passing one.
            document = winner.document() if winner.passes_pushdown else FILTERED
        yield key, antimatter, document
        for advancing_rank in same_key_ranks:
            cursor = active[advancing_rank]
            if cursor.advance():
                heapq.heappush(heap, (cursor.key, advancing_rank))
            else:
                active[advancing_rank] = None
