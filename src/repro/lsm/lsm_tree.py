"""The LSM B+-tree primary index.

One :class:`LSMTree` manages a single data partition's primary index: the
in-memory component, the stack of immutable on-disk components (newest first),
flushing, merging (vertical merges for the columnar layouts), reconciling
scans, and point lookups.  The on-disk layout — ``open``, ``vector``,
``apax``, or ``amax`` — is chosen per dataset and fixed at creation time.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.columns import ShreddedColumn
from ..core.schema import Schema
from ..columnar.amax import AmaxComponentBuilder
from ..columnar.apax import ApaxComponentBuilder
from ..columnar.base import ColumnarComponent
from ..model.errors import StorageError
from ..rowformats.vector_format import FieldNameDictionary
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from .component import (
    COLUMNAR_LAYOUTS,
    LAYOUT_AMAX,
    LAYOUT_APAX,
    LAYOUT_OPEN,
    LAYOUT_VECTOR,
    ROW_LAYOUTS,
    ComponentCursor,
    DiskComponent,
    FlushEntry,
    RowComponent,
    RowComponentBuilder,
)
from .memtable import MemTable
from .merge_policy import MergeScheduler, TieringMergePolicy
from .wal import TransactionLog

#: Sentinel yielded by :func:`_reconciled` for live records whose newest
#: version failed the pushed-down scan predicates: the key is consumed (it
#: still shadows older versions) but no document is assembled for it.
FILTERED = object()


class _MemtableCursor(ComponentCursor):
    """Cursor adapter over the in-memory component's sorted entries."""

    def __init__(self, entries: List[FlushEntry]) -> None:
        self._entries = entries
        self._position = -1

    def advance(self) -> bool:
        self._position += 1
        return self._position < len(self._entries)

    @property
    def key(self):
        return self._entries[self._position][0]

    @property
    def is_antimatter(self) -> bool:
        return self._entries[self._position][1]

    def document(self) -> Optional[dict]:
        return self._entries[self._position][2]


class LSMTree:
    """A single partition's primary LSM index."""

    def __init__(
        self,
        name: str,
        layout: str,
        schema: Schema,
        device: StorageDevice,
        buffer_cache: BufferCache,
        memory_budget_bytes: int = 8 * 1024 * 1024,
        compression: str = "snappy",
        merge_policy: Optional[TieringMergePolicy] = None,
        merge_scheduler: Optional[MergeScheduler] = None,
        transaction_log: Optional[TransactionLog] = None,
        amax_max_records_per_leaf: int = 15000,
        amax_empty_page_tolerance: float = 0.15,
        dataset_name: Optional[str] = None,
        partition_id: int = 0,
        on_disk_state_changed=None,
    ) -> None:
        if layout not in ROW_LAYOUTS + COLUMNAR_LAYOUTS:
            raise StorageError(f"unknown layout {layout!r}")
        self.name = name
        self.layout = layout
        self.schema = schema
        self.device = device
        self.buffer_cache = buffer_cache
        self.compression = compression
        self.memtable = MemTable(memory_budget_bytes)
        self.components: List[DiskComponent] = []  # newest first
        self.merge_policy = merge_policy or TieringMergePolicy()
        self.merge_scheduler = merge_scheduler or MergeScheduler()
        self.transaction_log = transaction_log
        self.field_dictionary = FieldNameDictionary()
        self.amax_max_records_per_leaf = amax_max_records_per_leaf
        self.amax_empty_page_tolerance = amax_empty_page_tolerance
        #: WAL routing identity: records are addressed (dataset, partition).
        self.dataset_name = dataset_name or name
        self.partition_id = partition_id
        #: LSN of the newest operation this partition logged (0 = none).
        self.last_logged_lsn = 0
        #: LSN up to which this partition's operations live in disk
        #: components; replay after a crash starts just above it.
        self.durable_lsn = 0
        #: Callback fired after every flush/merge (the dataset uses it to
        #: re-persist its manifest atomically); None for transient trees.
        self.on_disk_state_changed = on_disk_state_changed
        self._component_counter = 0
        self.flush_count = 0
        self.merge_count = 0

    # -- ingestion --------------------------------------------------------------------
    def insert(self, key, document: dict) -> None:
        """Insert (or blindly overwrite) a record in the in-memory component."""
        self._log(key, document, antimatter=False)
        self.memtable.put(key, document)

    upsert = insert

    def delete(self, key) -> None:
        """Delete a record by adding an anti-matter entry."""
        self._log(key, None, antimatter=True)
        self.memtable.delete(key)

    def _log(self, key, document: Optional[dict], antimatter: bool) -> None:
        if self.transaction_log is None:
            return
        self.last_logged_lsn = self.transaction_log.log_record(
            self.dataset_name, self.partition_id, key, document, antimatter
        )

    def apply_replayed(self, key, document: Optional[dict], antimatter: bool, lsn: int) -> None:
        """Apply one recovered WAL record to the memtable without re-logging it."""
        if antimatter:
            self.memtable.delete(key)
        else:
            self.memtable.put(key, document)
        self.last_logged_lsn = max(self.last_logged_lsn, lsn)

    @property
    def needs_flush(self) -> bool:
        return self.memtable.is_full

    # -- flush -----------------------------------------------------------------------
    def flush(self, force: bool = True) -> Optional[DiskComponent]:
        """Flush the in-memory component into a new on-disk component."""
        if self.memtable.is_empty:
            return None
        if not force and not self.memtable.is_full:
            return None
        entries = self.memtable.sorted_entries()
        component = self._build_component(entries)
        self.components.insert(0, component)
        self.memtable.clear()
        # Everything logged so far is now in a disk component; after a crash,
        # replay starts just above this watermark.
        self.durable_lsn = self.last_logged_lsn
        self.flush_count += 1
        self.maybe_merge()
        self._notify_disk_state_changed()
        return component

    def _notify_disk_state_changed(self) -> None:
        if self.on_disk_state_changed is not None:
            self.on_disk_state_changed(self)

    # -- recovery ----------------------------------------------------------------------
    def restore_state(
        self,
        components: List[DiskComponent],
        component_counter: int,
        flush_count: int,
        merge_count: int,
        durable_lsn: int,
    ) -> None:
        """Adopt recovered on-disk state (components newest first)."""
        self.components = list(components)
        self._component_counter = component_counter
        self.flush_count = flush_count
        self.merge_count = merge_count
        self.durable_lsn = durable_lsn
        self.last_logged_lsn = durable_lsn

    def _next_component_id(self) -> str:
        self._component_counter += 1
        return f"{self.name}-c{self._component_counter}"

    def _build_component(self, entries: Sequence[FlushEntry]) -> DiskComponent:
        component_id = self._next_component_id()
        if self.layout in ROW_LAYOUTS:
            builder = RowComponentBuilder(
                self.layout,
                component_id,
                self.device,
                self.buffer_cache,
                self.field_dictionary,
            )
            return builder.build(entries)
        builder = self._columnar_builder(component_id)
        return builder.build(entries)

    def _columnar_builder(self, component_id: str):
        if self.layout == LAYOUT_APAX:
            return ApaxComponentBuilder(
                component_id,
                self.device,
                self.buffer_cache,
                self.schema,
                compression=self.compression,
            )
        return AmaxComponentBuilder(
            component_id,
            self.device,
            self.buffer_cache,
            self.schema,
            compression=self.compression,
            max_records_per_leaf=self.amax_max_records_per_leaf,
            empty_page_tolerance=self.amax_empty_page_tolerance,
        )

    # -- merge ------------------------------------------------------------------------
    def maybe_merge(self) -> bool:
        """Apply the merge policy; run at most one merge."""
        sizes = [component.size_bytes for component in self.components]
        window = self.merge_policy.select(sizes)
        if not window:
            return False
        if not self.merge_scheduler.try_start():
            return False
        try:
            self._merge(window)
        finally:
            self.merge_scheduler.finish()
        return True

    def _merge(self, window: List[int]) -> None:
        merging = [self.components[index] for index in window]
        keep_antimatter = len(window) < len(self.components)
        if self.layout in COLUMNAR_LAYOUTS:
            merged = self._merge_columnar(merging, keep_antimatter)
        else:
            merged = self._merge_rows(merging, keep_antimatter)
        survivors = [
            component
            for index, component in enumerate(self.components)
            if index not in set(window)
        ]
        position = min(window)
        survivors.insert(position, merged)
        self.components = survivors
        self.merge_count += 1
        # Persist the manifest that references the merged component *before*
        # deleting the inputs: a crash in between only orphans the old files,
        # whereas the reverse order would leave the last durable manifest
        # pointing at deleted components and the store unopenable.
        self._notify_disk_state_changed()
        for component in merging:
            component.destroy()

    def _merge_rows(
        self, merging: Sequence[DiskComponent], keep_antimatter: bool
    ) -> DiskComponent:
        entries: List[FlushEntry] = []
        for key, antimatter, document in _reconciled(
            [component.cursor() for component in merging]
        ):
            if antimatter and not keep_antimatter:
                continue
            entries.append((key, antimatter, document))
        builder = RowComponentBuilder(
            self.layout,
            self._next_component_id(),
            self.device,
            self.buffer_cache,
            self.field_dictionary,
        )
        return builder.build(entries)

    def _merge_columnar(
        self, merging: Sequence[ColumnarComponent], keep_antimatter: bool
    ) -> DiskComponent:
        """Vertical merge (§4.5.3): keys first, then one column at a time."""
        # Step 1: merge the primary keys, recording which component supplies
        # each output record (the "sequence of component IDs").
        sequence: List[Tuple[int, bool]] = []  # (component index, taken)
        picks: List[Tuple[object, bool]] = []  # (key, antimatter) for taken rows
        iterators = [component.iter_key_entries() for component in merging]
        heads: List[Optional[Tuple[object, bool]]] = [next(it, None) for it in iterators]
        while any(head is not None for head in heads):
            smallest = min(
                (head[0] for head in heads if head is not None),
            )
            winner = None
            for index, head in enumerate(heads):
                if head is not None and head[0] == smallest:
                    if winner is None:
                        winner = index
            for index, head in enumerate(heads):
                if head is not None and head[0] == smallest:
                    taken = index == winner
                    sequence.append((index, taken))
                    if taken:
                        key, antimatter = head
                        if not (antimatter and not keep_antimatter):
                            picks.append((key, antimatter))
                        else:
                            # Annihilated: the record disappears entirely.
                            sequence[-1] = (index, False)
                    heads[index] = next(iterators[index], None)

        # Step 2: build the output columns one column at a time, replaying the
        # recorded sequence against each component's column cursor.
        columns: Dict[int, ShreddedColumn] = {}
        pk_column = self.schema.pk_column
        pk_out = ShreddedColumn(pk_column)
        for key, antimatter in picks:
            pk_out.add_value(0 if antimatter else 1, key)
        columns[pk_column.column_id] = pk_out

        for column in self.schema.value_columns():
            out = ShreddedColumn(column)
            cursors = [component.column_record_cursor(column) for component in merging]
            for component_index, taken in sequence:
                entries = cursors[component_index].next_record()
                if not taken:
                    continue
                for definition_level, value, is_delimiter in entries:
                    out.defs.append(definition_level)
                    if (
                        not is_delimiter
                        and definition_level == column.max_def
                        and column.type_tag != "null"
                    ):
                        out.values.append(value)
            columns[column.column_id] = out

        builder = self._columnar_builder(self._next_component_id())
        return builder.build_from_columns(columns, len(picks))

    # -- reads -------------------------------------------------------------------------
    def scan(
        self,
        fields: Optional[Sequence[str]] = None,
        include_memtable: bool = True,
        pushdown=None,
    ) -> Iterator[Tuple[object, dict]]:
        """Reconciled scan over every component, newest first wins.

        ``pushdown`` (a :class:`~repro.query.pushdown.PushdownSpec`) lets the
        columnar components prune columns and pre-filter leaf groups; rows
        whose *winning* version fails a pushed predicate are dropped here
        without ever being assembled.  Memtable rows and row-layout components
        ignore the spec and flow through to the engine's residual filter.
        """
        cursors: List[ComponentCursor] = []
        if include_memtable and not self.memtable.is_empty:
            cursors.append(_MemtableCursor(self.memtable.sorted_entries()))
        for component in self.components:
            cursors.append(component.cursor(fields, pushdown))
        for key, antimatter, document in _reconciled(cursors):
            if antimatter or document is FILTERED:
                continue
            yield key, document

    def count(self) -> int:
        """Number of live records (reconciled, but without decoding values)."""
        total = 0
        cursors: List[ComponentCursor] = []
        if not self.memtable.is_empty:
            cursors.append(_MemtableCursor(self.memtable.sorted_entries()))
        for component in self.components:
            cursors.append(component.cursor([]))
        for _, antimatter, _ in _reconciled(cursors, decode_documents=False):
            if not antimatter:
                total += 1
        return total

    def point_lookup(self, key, fields: Optional[Sequence[str]] = None) -> Optional[dict]:
        """Find the newest version of ``key`` (None when absent or deleted).

        Args:
            key: The primary key.
            fields: Optional top-level projection, forwarded to the component
                lookup so columnar components decode only the needed columns.
                Sources that cannot project (memtable, row layouts) may return
                more fields than requested — projection is an optimization,
                never a semantic contract.
        """
        entry = self.memtable.get(key)
        if entry is not None:
            antimatter, document = entry
            return None if antimatter else document
        for component in self.components:
            found = component.point_lookup(key, fields)
            if found is not None:
                antimatter, document = found
                return None if antimatter else document
        return None

    def contains(self, key) -> bool:
        return self.point_lookup(key) is not None

    # -- statistics ---------------------------------------------------------------------
    @property
    def num_components(self) -> int:
        return len(self.components)

    def storage_size_bytes(self) -> int:
        return sum(component.size_bytes for component in self.components)

    def storage_payload_bytes(self) -> int:
        return sum(component.file.payload_bytes for component in self.components)

    def record_count_on_disk(self) -> int:
        return sum(component.record_count for component in self.components)


def _reconciled(
    cursors: Sequence[ComponentCursor], decode_documents: bool = True
) -> Iterator[Tuple[object, bool, Optional[dict]]]:
    """K-way merge over cursors ordered newest → oldest with newest-wins semantics."""
    heap: List[Tuple[object, int]] = []
    active: List[Optional[ComponentCursor]] = list(cursors)
    for rank, cursor in enumerate(active):
        if cursor.advance():
            heapq.heappush(heap, (cursor.key, rank))
        else:
            active[rank] = None
    while heap:
        key, rank = heapq.heappop(heap)
        same_key_ranks = [rank]
        while heap and heap[0][0] == key:
            same_key_ranks.append(heapq.heappop(heap)[1])
        winner_rank = min(same_key_ranks)
        winner = active[winner_rank]
        antimatter = winner.is_antimatter
        document = None
        if decode_documents and not antimatter:
            # Pushed predicates are consulted only *after* newest-wins
            # reconciliation picked the winner, so a failing new version can
            # never resurrect an older passing one.
            document = winner.document() if winner.passes_pushdown else FILTERED
        yield key, antimatter, document
        for advancing_rank in same_key_ranks:
            cursor = active[advancing_rank]
            if cursor.advance():
                heapq.heappush(heap, (cursor.key, advancing_rank))
            else:
                active[advancing_rank] = None
