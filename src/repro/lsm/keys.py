"""Primary-key codec and comparison helpers.

Primary keys are either 64-bit integers or strings (homogeneous per dataset).
They appear in row pages, secondary-index runs, and component metadata, so the
codec lives in its own module.
"""

from __future__ import annotations

import struct
import zlib
from typing import Tuple

from ..model.errors import StorageError

#: Identifier of the partition-routing hash scheme, recorded in dataset
#: manifests so a reopened datastore can refuse to route with a different
#: function than the one that placed the data.
KEY_HASH_SCHEME = "crc32-keycodec-v1"

_KEY_INT = 0
_KEY_STRING = 1


def encode_key(key, out: bytearray) -> None:
    """Append one primary key to ``out``."""
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise StorageError(f"unsupported primary key type {type(key).__name__!r}")
    if isinstance(key, int):
        out.append(_KEY_INT)
        out.extend(struct.pack("<q", key))
    else:
        raw = key.encode("utf-8")
        out.append(_KEY_STRING)
        out.extend(struct.pack("<I", len(raw)))
        out.extend(raw)


def decode_key(data: bytes, offset: int) -> Tuple[object, int]:
    """Decode one primary key; returns ``(key, next_offset)``."""
    kind = data[offset]
    offset += 1
    if kind == _KEY_INT:
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if kind == _KEY_STRING:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    raise StorageError(f"unknown key tag {kind}")


def key_sort_value(key):
    """A sort key usable for both int and str primary keys within one dataset."""
    return key


def stable_key_hash(key) -> int:
    """A process-stable hash of a primary key (partition routing).

    The builtin ``hash`` is salted per process for strings (PYTHONHASHSEED),
    so it must never decide data placement that outlives the process: a
    reopened datastore would route the same key to a different partition.
    CRC-32 over the canonical key encoding is stable across processes,
    platforms, and Python versions.

    Example:
        >>> stable_key_hash("user-42")
        690092174
        >>> stable_key_hash(42) == stable_key_hash(42)
        True
    """
    out = bytearray()
    encode_key(key, out)
    return zlib.crc32(bytes(out))
