"""Primary-key codec and comparison helpers.

Primary keys are either 64-bit integers or strings (homogeneous per dataset).
They appear in row pages, secondary-index runs, and component metadata, so the
codec lives in its own module.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..model.errors import StorageError

_KEY_INT = 0
_KEY_STRING = 1


def encode_key(key, out: bytearray) -> None:
    """Append one primary key to ``out``."""
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise StorageError(f"unsupported primary key type {type(key).__name__!r}")
    if isinstance(key, int):
        out.append(_KEY_INT)
        out.extend(struct.pack("<q", key))
    else:
        raw = key.encode("utf-8")
        out.append(_KEY_STRING)
        out.extend(struct.pack("<I", len(raw)))
        out.extend(raw)


def decode_key(data: bytes, offset: int) -> Tuple[object, int]:
    """Decode one primary key; returns ``(key, next_offset)``."""
    kind = data[offset]
    offset += 1
    if kind == _KEY_INT:
        return struct.unpack_from("<q", data, offset)[0], offset + 8
    if kind == _KEY_STRING:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        return data[offset:offset + length].decode("utf-8"), offset + length
    raise StorageError(f"unknown key tag {kind}")


def key_sort_value(key):
    """A sort key usable for both int and str primary keys within one dataset."""
    return key
