"""LSM storage engine: memtable, on-disk components, merge policies, WAL, LSM tree."""

from .component import (
    ALL_LAYOUTS,
    COLUMNAR_LAYOUTS,
    LAYOUT_AMAX,
    LAYOUT_APAX,
    LAYOUT_OPEN,
    LAYOUT_VECTOR,
    ROW_LAYOUTS,
    ComponentCursor,
    ComponentMetadata,
    DiskComponent,
    RowComponent,
    RowComponentBuilder,
)
from .keys import decode_key, encode_key
from .lsm_tree import LSMTree, TreeSnapshot
from .memtable import FrozenMemtable, MemTable
from .merge_policy import MergeScheduler, NoMergePolicy, TieringMergePolicy
from .scheduler import BackgroundScheduler, BackgroundTaskError, SerialScheduler
from .wal import LogManager, TransactionLog

__all__ = [
    "ALL_LAYOUTS",
    "COLUMNAR_LAYOUTS",
    "LAYOUT_AMAX",
    "LAYOUT_APAX",
    "LAYOUT_OPEN",
    "LAYOUT_VECTOR",
    "ROW_LAYOUTS",
    "BackgroundScheduler",
    "BackgroundTaskError",
    "ComponentCursor",
    "ComponentMetadata",
    "DiskComponent",
    "FrozenMemtable",
    "LSMTree",
    "LogManager",
    "MemTable",
    "MergeScheduler",
    "NoMergePolicy",
    "RowComponent",
    "RowComponentBuilder",
    "SerialScheduler",
    "TieringMergePolicy",
    "TransactionLog",
    "TreeSnapshot",
    "decode_key",
    "encode_key",
]
