"""LSM storage engine: memtable, on-disk components, merge policies, WAL, LSM tree."""

from .component import (
    ALL_LAYOUTS,
    COLUMNAR_LAYOUTS,
    LAYOUT_AMAX,
    LAYOUT_APAX,
    LAYOUT_OPEN,
    LAYOUT_VECTOR,
    ROW_LAYOUTS,
    ComponentCursor,
    ComponentMetadata,
    DiskComponent,
    RowComponent,
    RowComponentBuilder,
)
from .keys import decode_key, encode_key
from .lsm_tree import LSMTree
from .memtable import MemTable
from .merge_policy import MergeScheduler, NoMergePolicy, TieringMergePolicy
from .wal import LogManager, TransactionLog

__all__ = [
    "ALL_LAYOUTS",
    "COLUMNAR_LAYOUTS",
    "LAYOUT_AMAX",
    "LAYOUT_APAX",
    "LAYOUT_OPEN",
    "LAYOUT_VECTOR",
    "ROW_LAYOUTS",
    "ComponentCursor",
    "ComponentMetadata",
    "DiskComponent",
    "LSMTree",
    "LogManager",
    "MemTable",
    "MergeScheduler",
    "NoMergePolicy",
    "RowComponent",
    "RowComponentBuilder",
    "TieringMergePolicy",
    "TransactionLog",
    "decode_key",
    "encode_key",
]
