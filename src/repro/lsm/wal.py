"""Transaction log (write-ahead log) buffer.

Every ingested record appends a commit entry to its node's transaction log
buffer.  The paper's ``cell`` experiment (§6.3.1) shows the log buffer is the
ingestion bottleneck when many partitions share one node: record cardinality
(not record size) dominates, so all four layouts ingest at the same rate, and
splitting the partitions across more nodes (more log buffers) speeds everyone
up.  The contention model here charges each append a base CPU cost plus a
penalty that grows with the number of partitions sharing the buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class TransactionLog:
    """A per-node transaction log buffer with a simple contention model."""

    node_id: int = 0
    sharing_partitions: int = 1
    base_append_cost_s: float = 2e-6
    per_byte_cost_s: float = 1e-9
    contention_cost_s: float = 1.5e-6

    entries: int = 0
    bytes_appended: int = 0
    simulated_seconds: float = 0.0

    def append(self, entry_bytes: int) -> float:
        """Append one commit entry; returns the simulated cost in seconds."""
        cost = (
            self.base_append_cost_s
            + entry_bytes * self.per_byte_cost_s
            + self.contention_cost_s * max(0, self.sharing_partitions - 1)
        )
        self.entries += 1
        self.bytes_appended += entry_bytes
        self.simulated_seconds += cost
        return cost


@dataclass
class LogManager:
    """One transaction log per node; partitions are assigned round-robin."""

    num_nodes: int = 1
    partitions_per_node: int = 8
    logs: Dict[int, TransactionLog] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for node_id in range(self.num_nodes):
            self.logs[node_id] = TransactionLog(
                node_id=node_id, sharing_partitions=self.partitions_per_node
            )

    def log_for_partition(self, partition_id: int) -> TransactionLog:
        node_id = partition_id // max(1, self.partitions_per_node)
        return self.logs.get(node_id % max(1, self.num_nodes), self.logs[0])

    @property
    def total_simulated_seconds(self) -> float:
        return sum(log.simulated_seconds for log in self.logs.values())

    @property
    def total_entries(self) -> int:
        return sum(log.entries for log in self.logs.values())
