"""The write-ahead log (transaction log).

Every ingested record appends a commit entry to its node's transaction log
*before* it is applied to the in-memory component, which is what makes a
memtable recoverable: after a crash, replaying the log tail (the records whose
LSN exceeds the per-partition durable LSN recorded in the dataset manifest)
rebuilds exactly the un-flushed state.

Two concerns live side by side here, deliberately:

* **Durability** — :class:`WALRecord` and its codec serialize insert/delete
  operations (reusing :func:`repro.rowformats.vector_format.encode_document`
  with a record-local field-name dictionary so every record is
  self-contained), and :class:`TransactionLog` appends the framed records to a
  per-node :class:`~repro.storage.device.LogFile` that flushes on every
  append.  LSNs are allocated from one :class:`LogManager`-wide counter so
  that replay has a total order even across node logs.
* **Cost modelling** — the paper's ``cell`` experiment (§6.3.1) shows the log
  buffer is the ingestion bottleneck when many partitions share one node:
  record cardinality (not record size) dominates, so all four layouts ingest
  at the same rate, and splitting the partitions across more nodes (more log
  buffers) speeds everyone up.  The contention model charges each append a
  base CPU cost plus a penalty that grows with the number of partitions
  sharing the buffer, whether or not a real file backs the log.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional

from ..encoding.varint import decode_uvarint, encode_uvarint
from ..model.errors import StorageError
from ..rowformats.vector_format import (
    FieldNameDictionary,
    decode_document,
    encode_document,
)
from ..storage.device import LogFile, StorageDevice
from .keys import decode_key, encode_key

#: Operation tags inside a WAL record.
OP_INSERT = 0
OP_DELETE = 1
OP_COMMIT = 2

#: First byte of every encoded record.  0x00 can never begin a legacy
#: (unversioned) record — those start with the uvarint of an LSN ≥ 1 — so a
#: log written before record versioning is detected deterministically
#: instead of being misdecoded into garbage.
WAL_FORMAT_MAGIC = 0x00
#: Second byte; bump on any incompatible change to the record layout.
#: Version 2 = txn-id field + commit records (the pre-transaction layout is
#: retroactively version 1, which never wrote a header).
WAL_FORMAT_VERSION = 2

#: ``txn_id`` of records logged outside any multi-statement transaction.
AUTO_COMMIT = 0


@dataclass
class WALRecord:
    """One logged operation: an insert/upsert or a delete (anti-matter).

    ``txn_id`` is :data:`AUTO_COMMIT` (0) for single-document operations,
    which are applied unconditionally on replay; a non-zero id marks the
    record as part of a multi-statement transaction, applied on replay only
    when a matching :class:`CommitRecord` follows it in the log.
    """

    lsn: int
    dataset: str
    partition_id: int
    antimatter: bool
    key: object
    document: Optional[dict] = None
    txn_id: int = AUTO_COMMIT


@dataclass
class CommitRecord:
    """The atomic commit point of a multi-statement transaction.

    Appended strictly *after* every one of the transaction's write records
    (each log append flushes before returning), so the presence of this
    record guarantees all ``write_count`` writes are durable too — replay is
    all-or-nothing: either the commit record survived the crash and every
    write is applied, or it did not and every write is skipped.
    """

    lsn: int
    txn_id: int
    write_count: int


def encode_wal_record(record) -> bytes:
    """Serialize one WAL record (self-contained, no shared dictionary state).

    Layout (all integers uvarint unless noted)::

        magic byte 0x00 + format-version byte (see WAL_FORMAT_VERSION)
        lsn
        txn id (0 = auto-commit)
        op byte (0 = insert, 1 = delete, 2 = commit)
        commits only:
          write count
        inserts and deletes:
          dataset-name length + UTF-8 bytes
          partition id
          primary key (repro.lsm.keys codec)
        inserts only:
          field-name count, then per name: length + UTF-8 bytes
          VB document length + VB document bytes

    The document is encoded with :mod:`repro.rowformats.vector_format`
    against a record-local field-name dictionary whose names are embedded in
    the record, so replay never depends on in-memory dictionary state that
    died with the process.
    """
    out = bytearray((WAL_FORMAT_MAGIC, WAL_FORMAT_VERSION))
    encode_uvarint(record.lsn, out)
    encode_uvarint(record.txn_id, out)
    if isinstance(record, CommitRecord):
        out.append(OP_COMMIT)
        encode_uvarint(record.write_count, out)
        return bytes(out)
    out.append(OP_DELETE if record.antimatter else OP_INSERT)
    name = record.dataset.encode("utf-8")
    encode_uvarint(len(name), out)
    out.extend(name)
    encode_uvarint(record.partition_id, out)
    encode_key(record.key, out)
    if not record.antimatter:
        dictionary = FieldNameDictionary()
        payload = encode_document(record.document, dictionary)
        names = dictionary.to_dict()["names"]
        encode_uvarint(len(names), out)
        for field_name in names:
            raw = field_name.encode("utf-8")
            encode_uvarint(len(raw), out)
            out.extend(raw)
        encode_uvarint(len(payload), out)
        out.extend(payload)
    return bytes(out)


def decode_wal_record(data: bytes):
    """Inverse of :func:`encode_wal_record` (a WALRecord or a CommitRecord).

    Raises:
        StorageError: The record carries no version header (log written by a
            pre-versioning build) or a version this build does not read.
    """
    if len(data) < 2 or data[0] != WAL_FORMAT_MAGIC:
        raise StorageError(
            "incompatible WAL format: record has no version header — this "
            "wal-node*.log was written by an older build; reopen it with "
            "that build and checkpoint (which truncates the log) before "
            "upgrading"
        )
    if data[1] != WAL_FORMAT_VERSION:
        raise StorageError(
            f"incompatible WAL format version {data[1]}: this build reads "
            f"version {WAL_FORMAT_VERSION}"
        )
    lsn, offset = decode_uvarint(data, 2)
    txn_id, offset = decode_uvarint(data, offset)
    op = data[offset]
    offset += 1
    if op == OP_COMMIT:
        write_count, offset = decode_uvarint(data, offset)
        return CommitRecord(lsn, txn_id, write_count)
    if op not in (OP_INSERT, OP_DELETE):
        raise StorageError(f"unknown WAL operation tag {op}")
    length, offset = decode_uvarint(data, offset)
    dataset = data[offset:offset + length].decode("utf-8")
    offset += length
    partition_id, offset = decode_uvarint(data, offset)
    key, offset = decode_key(data, offset)
    if op == OP_DELETE:
        return WALRecord(lsn, dataset, partition_id, True, key, txn_id=txn_id)
    name_count, offset = decode_uvarint(data, offset)
    dictionary = FieldNameDictionary()
    for _ in range(name_count):
        length, offset = decode_uvarint(data, offset)
        dictionary.intern(data[offset:offset + length].decode("utf-8"))
        offset += length
    length, offset = decode_uvarint(data, offset)
    document = decode_document(data[offset:offset + length], dictionary)
    return WALRecord(lsn, dataset, partition_id, False, key, document, txn_id=txn_id)


@dataclass
class TransactionLog:
    """A per-node transaction log with a contention cost model on top.

    :meth:`append` is the pure cost-model entry point (kept for tests and
    benchmarks that only care about simulated seconds); :meth:`log_record`
    is the durable path — it serializes the operation, charges the cost
    model for the record's bytes, and appends to the backing
    :class:`~repro.storage.device.LogFile` when one is attached.
    """

    node_id: int = 0
    sharing_partitions: int = 1
    base_append_cost_s: float = 2e-6
    per_byte_cost_s: float = 1e-9
    contention_cost_s: float = 1.5e-6

    entries: int = 0
    bytes_appended: int = 0
    simulated_seconds: float = 0.0

    #: Backing file; None keeps the log purely in the cost model (in-memory
    #: datastores lose nothing by not writing a log they could never replay).
    log_file: Optional[LogFile] = None
    #: Global LSN allocator (shared across a LogManager's logs); None falls
    #: back to a log-local counter.
    lsn_allocator: Optional[Callable[[], int]] = None
    _local_lsn: int = 0
    #: Serializes LSN allocation + file append: one node log is shared by
    #: several partitions, whose writer threads may commit concurrently.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def append(self, entry_bytes: int) -> float:
        """Charge one commit entry to the cost model; returns simulated seconds."""
        cost = (
            self.base_append_cost_s
            + entry_bytes * self.per_byte_cost_s
            + self.contention_cost_s * max(0, self.sharing_partitions - 1)
        )
        self.entries += 1
        self.bytes_appended += entry_bytes
        self.simulated_seconds += cost
        return cost

    def _allocate_lsn(self) -> int:
        if self.lsn_allocator is not None:
            return self.lsn_allocator()
        self._local_lsn += 1
        return self._local_lsn

    def log_record(
        self,
        dataset: str,
        partition_id: int,
        key,
        document: Optional[dict],
        antimatter: bool,
        txn_id: int = AUTO_COMMIT,
    ) -> int:
        """Serialize and append one operation; returns its LSN."""
        with self._lock:
            lsn = self._allocate_lsn()
            payload = encode_wal_record(
                WALRecord(
                    lsn, dataset, partition_id, antimatter, key, document,
                    txn_id=txn_id,
                )
            )
            self.append(len(payload))
            if self.log_file is not None:
                self.log_file.append_record(payload)
            return lsn

    def log_commit(self, txn_id: int, write_count: int) -> int:
        """Append a transaction's atomic commit record; returns its LSN.

        Called strictly after every one of the transaction's write records
        was appended (and therefore flushed): the commit record's durability
        implies the durability of everything it commits.
        """
        with self._lock:
            lsn = self._allocate_lsn()
            payload = encode_wal_record(CommitRecord(lsn, txn_id, write_count))
            self.append(len(payload))
            if self.log_file is not None:
                self.log_file.append_record(payload)
            return lsn

    def iter_records(self) -> Iterator[WALRecord]:
        if self.log_file is None:
            return
        for payload in self.log_file.records:
            yield decode_wal_record(payload)

    def truncate(self) -> None:
        if self.log_file is not None:
            self.log_file.truncate()


@dataclass
class LogManager:
    """One transaction log per node; partitions are assigned round-robin.

    When a :class:`~repro.storage.device.StorageDevice` with a backing
    directory is attached, each node's log writes through to
    ``wal-node<id>.log`` in that directory and LSNs come from one shared
    monotonic counter, giving replay a total order across nodes.
    """

    num_nodes: int = 1
    partitions_per_node: int = 8
    device: Optional[StorageDevice] = None
    logs: Dict[int, TransactionLog] = field(default_factory=dict)
    _next_lsn: int = 1
    #: Guards the global LSN counter (shared by every node log).
    _lsn_lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for node_id in range(self.num_nodes):
            log_file = None
            if self.device is not None and self.device.directory is not None:
                log_file = self.device.open_log_file(f"wal-node{node_id}.log")
            self.logs[node_id] = TransactionLog(
                node_id=node_id,
                sharing_partitions=self.partitions_per_node,
                log_file=log_file,
                lsn_allocator=self._allocate_lsn,
            )

    # -- LSNs ---------------------------------------------------------------------
    def _allocate_lsn(self) -> int:
        with self._lsn_lock:
            lsn = self._next_lsn
            self._next_lsn += 1
            return lsn

    @property
    def next_lsn(self) -> int:
        return self._next_lsn

    def advance_lsn(self, minimum_next: int) -> None:
        """Ensure future LSNs exceed everything seen before a restart."""
        with self._lsn_lock:
            self._next_lsn = max(self._next_lsn, minimum_next)

    def allocate_txn_id(self) -> int:
        """A transaction id drawn from the LSN space.

        Recovery advances the LSN counter past every persisted record, so an
        id allocated after a restart can never collide with the id of a
        transaction whose uncommitted write records survived a crash — a
        reused id would make replay resurrect those orphaned writes.
        """
        return self._allocate_lsn()

    def log_commit_record(self, txn_id: int, write_count: int) -> int:
        """Append a transaction's commit record (to node 0's log).

        The transaction's write records may be spread across several node
        logs; every append flushes before returning, so by the time this
        record is durable all of them are, and replay (which merges the node
        logs in LSN order) sees the commit record last.
        """
        return self.logs[0].log_commit(txn_id, write_count)

    # -- routing -------------------------------------------------------------------
    def log_for_partition(self, partition_id: int) -> TransactionLog:
        node_id = partition_id // max(1, self.partitions_per_node)
        return self.logs.get(node_id % max(1, self.num_nodes), self.logs[0])

    # -- recovery ------------------------------------------------------------------
    def iter_records(self) -> List[WALRecord]:
        """Every persisted record across all node logs, in global LSN order."""
        records: List[WALRecord] = []
        for log in self.logs.values():
            records.extend(log.iter_records())
        records.sort(key=lambda record: record.lsn)
        self.advance_lsn(records[-1].lsn + 1 if records else 1)
        return records

    def truncate(self) -> None:
        """Checkpoint: drop every node log (callers flushed everything first)."""
        for log in self.logs.values():
            log.truncate()

    # -- statistics ----------------------------------------------------------------
    @property
    def total_simulated_seconds(self) -> float:
        return sum(log.simulated_seconds for log in self.logs.values())

    @property
    def total_entries(self) -> int:
        return sum(log.entries for log in self.logs.values())

    @property
    def total_log_bytes(self) -> int:
        """Bytes currently held in the backing log files (0 when unbacked)."""
        return sum(
            log.log_file.size_bytes
            for log in self.logs.values()
            if log.log_file is not None
        )
