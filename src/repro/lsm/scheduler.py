"""The background flush/merge scheduler: a bounded worker pool.

AsterixDB runs memtable flushes and component merges on background threads so
that ingestion never stalls on component I/O and queries keep reading
immutable component snapshots while the stack is being rewritten.  This module
provides that worker pool for the reproduction:

* **Bounded queue** — submissions beyond ``queue_capacity`` block the caller
  (writer backpressure) or are rejected when ``block=False``.
* **Deduplication** — tasks submitted with a ``key`` are dropped while an
  identical key is still *queued* (a merge request per tree is only ever
  pending once; the running task re-evaluates the policy itself).
* **Error surfacing** — an exception on a worker is captured and re-raised on
  the next :meth:`submit`, :meth:`drain`, or :meth:`shutdown` as a
  :class:`BackgroundTaskError`, never silently swallowed.
* **Crash simulation** — :meth:`pause` parks the workers *before* they pick
  up new tasks and :meth:`kill` abandons everything still queued, which is
  how the recovery tests model a process dying with in-flight background
  work (threads cannot be killed mid-task in Python, so tests pause first).

The pool is deliberately storage-agnostic: it runs opaque callables.  The
:class:`~repro.lsm.lsm_tree.LSMTree` owns the flush/merge logic and submits
closures; one pool is shared by every dataset of a datastore.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from ..model.errors import StorageError


class BackgroundTaskError(StorageError):
    """A background flush/merge task raised; carries the original exception."""

    def __init__(self, label: str, cause: BaseException) -> None:
        super().__init__(f"background task {label!r} failed: {cause!r}")
        self.label = label
        self.cause = cause


@dataclass
class _Task:
    fn: Callable[[], object]
    label: str
    key: Optional[object]


#: Queue sentinel asking a worker thread to exit.
_STOP = None


class BackgroundScheduler:
    """A fixed pool of daemon workers draining one bounded FIFO task queue.

    An idle worker pre-claims the next task before checking the pause flag,
    so a fully saturated (or paused) pool holds up to ``queue_capacity +
    workers`` accepted tasks before submissions block or reject.
    """

    def __init__(
        self,
        workers: int = 2,
        queue_capacity: int = 64,
        name: str = "lsm-background",
    ) -> None:
        if workers <= 0:
            raise StorageError("the background scheduler needs at least one worker")
        if queue_capacity <= 0:
            raise StorageError("the task queue needs capacity for at least one task")
        self.num_workers = workers
        self.queue_capacity = queue_capacity
        self._queue: "queue.Queue[Optional[_Task]]" = queue.Queue(maxsize=queue_capacity)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._pending_keys: set = set()
        self._in_flight = 0  # queued + currently executing tasks
        self._errors: List[BackgroundTaskError] = []
        self._stopped = False
        self._killed = False
        #: Set = workers may pick up tasks; cleared by :meth:`pause`.
        self._unpaused = threading.Event()
        self._unpaused.set()
        self.tasks_submitted = 0
        self.tasks_completed = 0
        self.tasks_deduplicated = 0
        self.tasks_rejected = 0
        self.tasks_failed = 0
        self._threads = [
            threading.Thread(target=self._worker, name=f"{name}-{i}", daemon=True)
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission --------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[[], object],
        label: str = "task",
        key: Optional[object] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        best_effort: bool = False,
    ) -> bool:
        """Enqueue one task; returns False when deduplicated or rejected.

        Blocks while the queue is full (backpressure) unless ``block`` is
        False, in which case a full queue rejects the task.  Raises any
        pending :class:`BackgroundTaskError` from earlier tasks first.
        ``best_effort`` turns "scheduler already shut down" into a False
        return instead of an error — for maintenance chains (a merge
        re-requesting itself) that race a clean shutdown.
        """
        with self._lock:
            if self._stopped and best_effort:
                return False
            self._raise_errors_locked()
            if self._stopped:
                raise StorageError("background scheduler is shut down")
            if key is not None and key in self._pending_keys:
                self.tasks_deduplicated += 1
                return False
            # Register before the (possibly blocking) put so duplicate
            # requests keep deduplicating while we wait for queue space.
            if key is not None:
                self._pending_keys.add(key)
            self._in_flight += 1
            self.tasks_submitted += 1
        task = _Task(fn=fn, label=label, key=key)
        try:
            self._queue.put(task, block=block, timeout=timeout)
        except queue.Full:
            with self._lock:
                if key is not None:
                    self._pending_keys.discard(key)
                self._in_flight -= 1
                self.tasks_submitted -= 1
                self.tasks_rejected += 1
                self._idle.notify_all()
            return False
        return True

    # -- worker loop --------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            self._unpaused.wait()
            task = self._queue.get()
            if task is _STOP:
                return
            self._unpaused.wait()
            if self._killed:
                # Simulated crash: abandon the task exactly as a dead process
                # would have (the WAL replays it on the next open).
                with self._lock:
                    self._in_flight -= 1
                    self._idle.notify_all()
                continue
            with self._lock:
                # The key unblocks as soon as the task *starts*: a request
                # arriving mid-run reflects state the running task may already
                # have consumed, so it must queue a fresh task.
                if task.key is not None:
                    self._pending_keys.discard(task.key)
            try:
                task.fn()
            except BaseException as exc:  # noqa: BLE001 - surfaced to callers
                with self._lock:
                    self._errors.append(BackgroundTaskError(task.label, exc))
                    self.tasks_failed += 1
            finally:
                with self._lock:
                    self._in_flight -= 1
                    self.tasks_completed += 1
                    self._idle.notify_all()

    # -- synchronization ----------------------------------------------------------------
    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every queued and running task finished; re-raise errors."""
        with self._idle:
            if not self._idle.wait_for(lambda: self._in_flight == 0, timeout=timeout):
                raise StorageError(
                    f"background scheduler did not drain within {timeout}s "
                    f"({self._in_flight} tasks in flight)"
                )
            self._raise_errors_locked()

    def raise_pending_errors(self) -> None:
        """Re-raise the first captured worker exception, if any."""
        with self._lock:
            self._raise_errors_locked()

    def _raise_errors_locked(self) -> None:
        if self._errors:
            error = self._errors[0]
            self._errors = []
            raise error

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    @property
    def is_stopped(self) -> bool:
        return self._stopped

    # -- test hooks ---------------------------------------------------------------------
    def pause(self) -> None:
        """Park the workers before their next task pickup (tasks keep queueing)."""
        self._unpaused.clear()

    def resume(self) -> None:
        self._unpaused.set()

    # -- lifecycle ----------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting tasks; drain in-flight work, then stop the workers.

        With ``wait=True`` (the default) every already-queued task still runs
        to completion before the workers exit, and any captured task error is
        re-raised after the join.
        """
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        # Unpark the workers *before* feeding the sentinels: with a paused
        # pool and a full queue the puts below would otherwise block forever
        # (no worker would ever drain a slot).
        self._unpaused.set()
        for _ in self._threads:
            self._queue.put(_STOP)
        if wait:
            for thread in self._threads:
                thread.join()
            self.raise_pending_errors()

    def kill(self) -> None:
        """Simulate a crash: discard queued tasks, stop workers, run nothing.

        Used by the recovery tests together with :meth:`pause`: pause first so
        no worker is mid-task, write (tasks queue up), then kill — the queued
        flushes/merges are lost exactly like a process death would lose them.
        A task already executing cannot be interrupted and will finish.
        """
        with self._lock:
            self._stopped = True
            self._killed = True
            self._pending_keys.clear()
        # Drop everything still queued, accounting each as vanished.
        while True:
            try:
                task = self._queue.get_nowait()
            except queue.Empty:
                break
            if task is not _STOP:
                with self._lock:
                    self._in_flight -= 1
                    self._idle.notify_all()
        for _ in self._threads:
            self._queue.put(_STOP)
        self._unpaused.set()
        for thread in self._threads:
            thread.join(timeout=10.0)


class SerialScheduler:
    """A degenerate scheduler that runs every task inline on the caller.

    Lets the dataset layer treat "no background workers configured" and "pool
    attached" uniformly — and gives tests a deterministic way to execute the
    exact background code paths synchronously.
    """

    is_stopped = False

    def __init__(self) -> None:
        self.tasks_submitted = 0

    def submit(
        self,
        fn: Callable[[], object],
        label: str = "task",
        key: Optional[object] = None,
        block: bool = True,
        timeout: Optional[float] = None,
        best_effort: bool = False,
    ) -> bool:
        self.tasks_submitted += 1
        fn()
        return True

    def drain(self, timeout: Optional[float] = None) -> None:
        return None

    def raise_pending_errors(self) -> None:
        return None

    def shutdown(self, wait: bool = True) -> None:
        return None

    def kill(self) -> None:
        return None
