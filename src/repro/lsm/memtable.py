"""The LSM in-memory component.

Newly ingested records live here (in the Vector-Based format conceptually —
we keep the Python dict plus its VB-encoded size for budget accounting) until
the component fills up and is flushed to disk (§2.1.1).  Updates overwrite in
place; deletes leave an anti-matter marker so the flush writes a tombstone.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple

from ..model.errors import StorageError
from ..model.values import estimate_json_size

#: One memtable entry: (antimatter flag, document-or-None).
MemEntry = Tuple[bool, Optional[dict]]


class MemTable:
    """In-memory component with approximate byte-budget accounting."""

    def __init__(self, budget_bytes: int = 8 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise StorageError("memtable budget must be positive")
        self.budget_bytes = budget_bytes
        self._entries: Dict[object, MemEntry] = {}
        self._approximate_bytes = 0

    # -- mutation -----------------------------------------------------------------
    def put(self, key, document: dict) -> None:
        """Insert or overwrite a record."""
        self._account_removal(key)
        self._entries[key] = (False, document)
        self._approximate_bytes += estimate_json_size(document) + 16

    def delete(self, key) -> None:
        """Record an anti-matter entry for ``key``."""
        self._account_removal(key)
        self._entries[key] = (True, None)
        self._approximate_bytes += 24

    def _account_removal(self, key) -> None:
        existing = self._entries.get(key)
        if existing is None:
            return
        antimatter, document = existing
        if antimatter:
            self._approximate_bytes -= 24
        else:
            self._approximate_bytes -= estimate_json_size(document) + 16

    # -- inspection ----------------------------------------------------------------
    def get(self, key) -> Optional[MemEntry]:
        return self._entries.get(key)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def approximate_bytes(self) -> int:
        return max(self._approximate_bytes, 0)

    @property
    def is_full(self) -> bool:
        return self.approximate_bytes >= self.budget_bytes

    def sorted_entries(self) -> List[Tuple[object, bool, Optional[dict]]]:
        """Entries as ``(key, antimatter, document)`` in key order (flush order)."""
        return [
            (key, antimatter, document)
            for key, (antimatter, document) in sorted(self._entries.items())
        ]

    def entries_snapshot(self) -> List[Tuple[object, MemEntry]]:
        """An unordered O(n) copy of the raw entries.

        For readers that must copy under a lock but can afford to sort
        outside it (snapshot pinning): the copy is the only part that needs
        the entries to hold still.
        """
        return list(self._entries.items())


class FrozenMemtable:
    """An immutable, rotated-out memtable awaiting its background flush.

    When the writer rotates (swaps in a fresh mutable memtable so ingestion
    never waits on flush I/O), the old memtable is wrapped here together with
    the partition's ``last_logged_lsn`` at rotation time: once this memtable's
    flush completes, every logged operation up to ``rotated_lsn`` lives in a
    disk component, so that LSN becomes the partition's durable LSN.

    Readers treat a frozen memtable exactly like the mutable one (it is newer
    than every disk component, older than the current memtable); the sorted
    entry list is computed once, lazily, by whoever needs it first — the flush
    worker or a pinned-snapshot scan.
    """

    def __init__(self, memtable: MemTable, rotated_lsn: int) -> None:
        self._memtable = memtable
        self.rotated_lsn = rotated_lsn
        self._entries: Optional[List[Tuple[object, bool, Optional[dict]]]] = None
        self._entries_lock = threading.Lock()

    def get(self, key) -> Optional[MemEntry]:
        return self._memtable.get(key)

    @property
    def is_empty(self) -> bool:
        return self._memtable.is_empty

    @property
    def approximate_bytes(self) -> int:
        return self._memtable.approximate_bytes

    def __len__(self) -> int:
        return len(self._memtable)

    @property
    def entries(self) -> List[Tuple[object, bool, Optional[dict]]]:
        """The frozen contents in flush order (computed once, cached)."""
        if self._entries is None:
            with self._entries_lock:
                if self._entries is None:
                    self._entries = self._memtable.sorted_entries()
        return self._entries
