"""The LSM in-memory component.

Newly ingested records live here (in the Vector-Based format conceptually —
we keep the Python dict plus its VB-encoded size for budget accounting) until
the component fills up and is flushed to disk (§2.1.1).  Updates overwrite in
place; deletes leave an anti-matter marker so the flush writes a tombstone.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..model.errors import StorageError
from ..model.values import estimate_json_size

#: One memtable entry: (antimatter flag, document-or-None).
MemEntry = Tuple[bool, Optional[dict]]


class MemTable:
    """In-memory component with approximate byte-budget accounting."""

    def __init__(self, budget_bytes: int = 8 * 1024 * 1024) -> None:
        if budget_bytes <= 0:
            raise StorageError("memtable budget must be positive")
        self.budget_bytes = budget_bytes
        self._entries: Dict[object, MemEntry] = {}
        self._approximate_bytes = 0

    # -- mutation -----------------------------------------------------------------
    def put(self, key, document: dict) -> None:
        """Insert or overwrite a record."""
        self._account_removal(key)
        self._entries[key] = (False, document)
        self._approximate_bytes += estimate_json_size(document) + 16

    def delete(self, key) -> None:
        """Record an anti-matter entry for ``key``."""
        self._account_removal(key)
        self._entries[key] = (True, None)
        self._approximate_bytes += 24

    def _account_removal(self, key) -> None:
        existing = self._entries.get(key)
        if existing is None:
            return
        antimatter, document = existing
        if antimatter:
            self._approximate_bytes -= 24
        else:
            self._approximate_bytes -= estimate_json_size(document) + 16

    # -- inspection ----------------------------------------------------------------
    def get(self, key) -> Optional[MemEntry]:
        return self._entries.get(key)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    @property
    def approximate_bytes(self) -> int:
        return max(self._approximate_bytes, 0)

    @property
    def is_full(self) -> bool:
        return self.approximate_bytes >= self.budget_bytes

    def sorted_entries(self) -> List[Tuple[object, bool, Optional[dict]]]:
        """Entries as ``(key, antimatter, document)`` in key order (flush order)."""
        return [
            (key, antimatter, document)
            for key, (antimatter, document) in sorted(self._entries.items())
        ]

    def iter_sorted(self) -> Iterator[Tuple[object, bool, Optional[dict]]]:
        return iter(self.sorted_entries())

    def clear(self) -> None:
        self._entries.clear()
        self._approximate_bytes = 0
