"""LSM on-disk components: shared metadata, cursor protocol, and row layouts.

An on-disk component is an immutable, key-ordered run of records written by a
flush or a merge.  This module defines:

* :class:`ComponentMetadata` — the information AsterixDB would keep on the
  component's metadata page (record counts, key range, validity, the schema
  snapshot for columnar layouts, the field-name dictionary for VB);
* the :class:`DiskComponent` / :class:`ComponentCursor` protocol used by the
  LSM tree for scans, point lookups and merges;
* :class:`RowComponent` — the row-major layouts (``open`` and ``vector``),
  which store records in slotted pages with a per-page first-key index.

The columnar components (APAX, AMAX) live in :mod:`repro.columnar`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..model.errors import ComponentStateError, StorageError
from ..rowformats import open_format, vector_format
from ..rowformats.vector_format import FieldNameDictionary
from ..storage.buffer_cache import BufferCache
from ..storage.device import ComponentFile, StorageDevice
from ..storage.stats import (
    ColumnStatistics,
    ColumnStatisticsBuilder,
    collect_document_statistics,
)
from .keys import decode_key, encode_key

LAYOUT_OPEN = "open"
LAYOUT_VECTOR = "vector"
LAYOUT_APAX = "apax"
LAYOUT_AMAX = "amax"

ROW_LAYOUTS = (LAYOUT_OPEN, LAYOUT_VECTOR)
COLUMNAR_LAYOUTS = (LAYOUT_APAX, LAYOUT_AMAX)
ALL_LAYOUTS = ROW_LAYOUTS + COLUMNAR_LAYOUTS

#: One flush/merge input entry: (key, antimatter, document-or-None).
FlushEntry = Tuple[object, bool, Optional[dict]]


@dataclass
class ComponentMetadata:
    """The component's metadata-page contents (kept in memory, size accounted on disk)."""

    component_id: str
    layout: str
    record_count: int = 0
    antimatter_count: int = 0
    min_key: object = None
    max_key: object = None
    valid: bool = False
    page_first_keys: List[object] = field(default_factory=list)
    extra: dict = field(default_factory=dict)
    #: Per-column statistics collected while the component was built (dotted
    #: array-free path → :class:`~repro.storage.stats.ColumnStatistics`);
    #: aggregated across components by the cost-based optimizer's
    #: :func:`~repro.query.stats.collect_dataset_statistics`.
    column_stats: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def to_json_bytes(self) -> bytes:
        payload = {
            "component_id": self.component_id,
            "layout": self.layout,
            "record_count": self.record_count,
            "antimatter_count": self.antimatter_count,
            "min_key": self.min_key,
            "max_key": self.max_key,
            "valid": self.valid,
            "page_first_keys": self.page_first_keys,
            "extra": self.extra,
            "column_stats": {
                path: stats.as_dict() for path, stats in self.column_stats.items()
            },
        }
        return json.dumps(payload, default=str).encode("utf-8")

    @classmethod
    def from_json_bytes(cls, payload: bytes) -> "ComponentMetadata":
        """Inverse of :meth:`to_json_bytes` (the recovery path)."""
        data = json.loads(payload.decode("utf-8"))
        return cls(
            component_id=data["component_id"],
            layout=data["layout"],
            record_count=data["record_count"],
            antimatter_count=data["antimatter_count"],
            min_key=data["min_key"],
            max_key=data["max_key"],
            valid=data["valid"],
            page_first_keys=data["page_first_keys"],
            extra=data["extra"],
            column_stats={
                path: ColumnStatistics.from_dict(stats)
                for path, stats in data["column_stats"].items()
            },
        )


class ComponentCursor:
    """Iterates one component's records in key order.

    Subclasses decode documents lazily: ``advance`` only positions the cursor
    (reading keys / anti-matter flags), ``document()`` pays the decoding cost.
    """

    def advance(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def passes_pushdown(self) -> bool:
        """Did the current record pass the pushed-down scan predicates?

        Cursors that cannot pre-filter (row layouts, the memtable) always
        answer True; the query engine's residual FILTER re-checks their rows
        after decoding — that is the transparent fallback path.
        """
        return True

    @property
    def key(self):  # pragma: no cover - interface
        raise NotImplementedError

    @property
    def is_antimatter(self) -> bool:  # pragma: no cover - interface
        raise NotImplementedError

    def document(self) -> Optional[dict]:  # pragma: no cover - interface
        raise NotImplementedError


class DiskComponent:
    """Base class for on-disk components."""

    def __init__(
        self,
        metadata: ComponentMetadata,
        component_file: ComponentFile,
        buffer_cache: BufferCache,
    ) -> None:
        self.metadata = metadata
        self.file = component_file
        self.buffer_cache = buffer_cache

    # -- lifecycle --------------------------------------------------------------
    @property
    def component_id(self) -> str:
        return self.metadata.component_id

    @property
    def layout(self) -> str:
        return self.metadata.layout

    @property
    def record_count(self) -> int:
        return self.metadata.record_count

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes

    @property
    def num_pages(self) -> int:
        return self.file.num_pages

    def mark_valid(self) -> None:
        self.metadata.valid = True

    def destroy(self) -> None:
        self.buffer_cache.invalidate_file(self.file.name)
        self.file.device.delete_file(self.file.name)

    # -- protocol ----------------------------------------------------------------
    def cursor(
        self, fields: Optional[Sequence[str]] = None, pushdown=None
    ) -> ComponentCursor:
        raise NotImplementedError  # pragma: no cover - interface

    def point_lookup(
        self, key, fields: Optional[Sequence[str]] = None
    ) -> Optional[Tuple[bool, Optional[dict]]]:
        """Return ``(antimatter, document)`` for ``key`` or None when absent.

        Args:
            key: The primary key to find.
            fields: Optional top-level projection.  Columnar components decode
                only the matching columns (the per-lookup leaf search itself —
                §4.6's point-lookup cost — is unavoidable); row components
                always decode the whole record.

        Returns:
            ``(antimatter, document)`` when the component holds a version of
            the key (``document`` is None for anti-matter), else None.
        """
        raise NotImplementedError  # pragma: no cover - interface

    def key_range_overlaps(self, key) -> bool:
        if self.metadata.min_key is None:
            return False
        return self.metadata.min_key <= key <= self.metadata.max_key


#: Magic string identifying the footer trailer page of a component file.
FOOTER_MAGIC = "repro-component-footer-v1"


def write_component_footer(
    component_file: ComponentFile, metadata: ComponentMetadata
) -> int:
    """Serialize the metadata as a footer at the end of the component file.

    The footer is written *after* every data page, once the metadata is fully
    populated (record counts, page directory, schema snapshot, column
    statistics), so the persisted bytes are complete — the old head-of-file
    metadata pages were written before the builders knew any of that.  Layout:
    N payload pages followed by one small trailer page recording N, so a
    reader can locate the footer from the file's last page alone.

    Returns the number of pages written (payload pages + the trailer).
    """
    metadata.valid = True  # a persisted footer is the component's validity bit
    payload = metadata.to_json_bytes()
    page_size = component_file.device.page_size
    pages = 0
    for start in range(0, max(len(payload), 1), page_size):
        component_file.append_page(payload[start:start + page_size])
        pages += 1
    trailer = json.dumps(
        {"magic": FOOTER_MAGIC, "footer_pages": pages, "footer_length": len(payload)}
    ).encode("utf-8")
    component_file.append_page(trailer)
    return pages + 1


def read_component_footer(component_file: ComponentFile) -> ComponentMetadata:
    """Read back the footer written by :func:`write_component_footer`."""
    if component_file.num_pages == 0:
        raise StorageError(
            f"component file {component_file.name!r} is empty (no footer)"
        )
    try:
        trailer = json.loads(component_file.read_page(component_file.num_pages - 1))
    except ValueError as exc:
        raise StorageError(
            f"component file {component_file.name!r} has no readable footer trailer"
        ) from exc
    if not isinstance(trailer, dict) or trailer.get("magic") != FOOTER_MAGIC:
        raise StorageError(
            f"component file {component_file.name!r} has no footer trailer"
        )
    footer_pages = trailer["footer_pages"]
    first = component_file.num_pages - 1 - footer_pages
    payload = b"".join(
        component_file.read_page(first + index) for index in range(footer_pages)
    )
    return ComponentMetadata.from_json_bytes(payload[: trailer["footer_length"]])


def load_component(
    component_file: ComponentFile, buffer_cache: BufferCache
) -> "DiskComponent":
    """Rebuild a disk component of any layout from its persisted footer."""
    metadata = read_component_footer(component_file)
    if not metadata.valid:
        raise ComponentStateError(
            f"component {metadata.component_id!r} was never marked valid"
        )
    if metadata.layout in ROW_LAYOUTS:
        return RowComponent.load(metadata, component_file, buffer_cache)
    # Imported lazily: repro.columnar imports this module at import time.
    if metadata.layout == LAYOUT_APAX:
        from ..columnar.apax import ApaxComponent

        return ApaxComponent.load(metadata, component_file, buffer_cache)
    if metadata.layout == LAYOUT_AMAX:
        from ..columnar.amax import AmaxComponent

        return AmaxComponent.load(metadata, component_file, buffer_cache)
    raise StorageError(f"unknown component layout {metadata.layout!r}")


# ======================================================================================
# Row-major components (Open and Vector-Based)
# ======================================================================================


class RowComponentBuilder:
    """Writes a key-ordered run of records into slotted row pages."""

    def __init__(
        self,
        layout: str,
        component_id: str,
        device: StorageDevice,
        buffer_cache: BufferCache,
        field_dictionary: Optional[FieldNameDictionary] = None,
        fill_fraction: float = 0.95,
    ) -> None:
        if layout not in ROW_LAYOUTS:
            raise StorageError(f"{layout!r} is not a row layout")
        self.layout = layout
        self.component_id = component_id
        self.device = device
        self.buffer_cache = buffer_cache
        self.field_dictionary = field_dictionary or FieldNameDictionary()
        self.fill_limit = int(device.page_size * fill_fraction)

    def build(self, entries: Iterable[FlushEntry]) -> "RowComponent":
        component_file = self.device.create_file(self.component_id)
        metadata = ComponentMetadata(self.component_id, self.layout)
        page_records: List[bytes] = []
        page_bytes = 0
        data_pages: List[bytes] = []
        first_keys: List[object] = []
        current_first_key: object = None

        def flush_page() -> None:
            nonlocal page_records, page_bytes, current_first_key
            if not page_records:
                return
            body = bytearray()
            body.extend(len(page_records).to_bytes(4, "little"))
            for record in page_records:
                body.extend(record)
            data_pages.append(bytes(body))
            first_keys.append(current_first_key)
            page_records = []
            page_bytes = 0
            current_first_key = None

        stats_builders: Dict[str, ColumnStatisticsBuilder] = {}
        for key, antimatter, document in entries:
            record = self._encode_record(key, antimatter, document)
            if page_bytes + len(record) + 4 > self.fill_limit and page_records:
                flush_page()
            if not page_records:
                current_first_key = key
            page_records.append(record)
            page_bytes += len(record)
            metadata.record_count += 1
            if antimatter:
                metadata.antimatter_count += 1
            else:
                # Column statistics ride along with the single pass the flush
                # already makes over the records (incremental collection).
                collect_document_statistics(stats_builders, document)
            if metadata.min_key is None:
                metadata.min_key = key
            metadata.max_key = key
        flush_page()

        metadata.column_stats = {
            path: builder.finish() for path, builder in stats_builders.items()
        }
        metadata.page_first_keys = first_keys
        metadata.extra["field_names"] = self.field_dictionary.to_dict()
        # Data pages first (ids start at 0), footer last — the footer is only
        # written once the metadata is complete, so a readable footer implies
        # a complete component (crash mid-build leaves no footer, and the
        # manifest never references the component).
        for page in data_pages:
            component_file.append_page(page)
        metadata.extra["data_page_start"] = 0
        metadata.extra["data_page_count"] = len(data_pages)
        write_component_footer(component_file, metadata)
        component = RowComponent(
            metadata, component_file, self.buffer_cache, self.field_dictionary
        )
        component.mark_valid()
        return component

    def _encode_record(self, key, antimatter: bool, document: Optional[dict]) -> bytes:
        out = bytearray()
        encode_key(key, out)
        out.append(1 if antimatter else 0)
        if antimatter:
            out.extend((0).to_bytes(4, "little"))
            return bytes(out)
        if self.layout == LAYOUT_OPEN:
            payload = open_format.encode_document(document)
        else:
            payload = vector_format.encode_document(document, self.field_dictionary)
        out.extend(len(payload).to_bytes(4, "little"))
        out.extend(payload)
        return bytes(out)


class RowComponent(DiskComponent):
    """An on-disk component whose pages hold whole records (row-major)."""

    def __init__(
        self,
        metadata: ComponentMetadata,
        component_file: ComponentFile,
        buffer_cache: BufferCache,
        field_dictionary: FieldNameDictionary,
    ) -> None:
        super().__init__(metadata, component_file, buffer_cache)
        self.field_dictionary = field_dictionary

    # -- recovery ---------------------------------------------------------------
    @classmethod
    def load(
        cls,
        metadata: ComponentMetadata,
        component_file: ComponentFile,
        buffer_cache: BufferCache,
    ) -> "RowComponent":
        """Rebuild a row component from its footer (see :func:`load_component`)."""
        dictionary = FieldNameDictionary.from_dict(metadata.extra["field_names"])
        return cls(metadata, component_file, buffer_cache, dictionary)

    # -- reading ---------------------------------------------------------------
    @property
    def _data_page_start(self) -> int:
        return self.metadata.extra.get("data_page_start", 0)

    @property
    def _num_data_pages(self) -> int:
        return self.metadata.extra["data_page_count"]

    def _decode_page(self, data_page_index: int) -> List[Tuple[object, bool, bytes]]:
        page = self.buffer_cache.read_page(
            self.file, self._data_page_start + data_page_index
        )
        count = int.from_bytes(page[:4], "little")
        offset = 4
        records = []
        for _ in range(count):
            key, offset = decode_key(page, offset)
            antimatter = bool(page[offset])
            offset += 1
            length = int.from_bytes(page[offset:offset + 4], "little")
            offset += 4
            payload = page[offset:offset + length]
            offset += length
            records.append((key, antimatter, payload))
        return records

    def _decode_document(self, payload: bytes) -> dict:
        if self.layout == LAYOUT_OPEN:
            return open_format.decode_document(payload)
        return vector_format.decode_document(payload, self.field_dictionary)

    def cursor(
        self, fields: Optional[Sequence[str]] = None, pushdown=None
    ) -> "RowComponentCursor":
        if not self.metadata.valid:
            raise ComponentStateError("cannot read an invalid component")
        # ``pushdown`` is accepted for protocol compatibility and ignored: row
        # pages interleave all columns, so there is no cheaper way to evaluate
        # a predicate than decoding the record — the engine's residual FILTER
        # does exactly that.
        return RowComponentCursor(self, fields)

    def point_lookup(
        self, key, fields: Optional[Sequence[str]] = None
    ) -> Optional[Tuple[bool, Optional[dict]]]:
        # ``fields`` is accepted for protocol compatibility: row pages
        # interleave all fields, so projection cannot reduce the decode cost.
        if not self.key_range_overlaps(key):
            return None
        first_keys = self.metadata.page_first_keys
        # Binary search over the per-page first keys (B+-tree interior nodes).
        low, high = 0, len(first_keys) - 1
        target = 0
        while low <= high:
            mid = (low + high) // 2
            if first_keys[mid] <= key:
                target = mid
                low = mid + 1
            else:
                high = mid - 1
        for record_key, antimatter, payload in self._decode_page(target):
            if record_key == key:
                if antimatter:
                    return True, None
                return False, self._decode_document(payload)
        return None


class RowComponentCursor(ComponentCursor):
    """Cursor over a row component (decodes records lazily per page)."""

    def __init__(self, component: RowComponent, fields: Optional[Sequence[str]]) -> None:
        self.component = component
        self.fields = fields
        self._page_index = -1
        self._records: List[Tuple[object, bool, bytes]] = []
        self._position = -1

    def advance(self) -> bool:
        self._position += 1
        while self._position >= len(self._records):
            self._page_index += 1
            if self._page_index >= self.component._num_data_pages:
                return False
            self._records = self.component._decode_page(self._page_index)
            self._position = 0
        return True

    @property
    def key(self):
        return self._records[self._position][0]

    @property
    def is_antimatter(self) -> bool:
        return self._records[self._position][1]

    def document(self) -> Optional[dict]:
        key, antimatter, payload = self._records[self._position]
        if antimatter:
            return None
        # Row layouts always decode the whole record; projection cannot reduce
        # the I/O or CPU cost (that is the columnar layouts' advantage).
        return self.component._decode_document(payload)
