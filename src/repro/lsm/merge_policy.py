"""LSM merge policies and the merge scheduler.

The experiments (§6.3) use AsterixDB's *tiering* (a.k.a. size-tiered) merge
policy with a size ratio of 1.2 and a maximum of 5 tolerable components, with
a fair (first-come, first-served) scheduler and a cap on concurrent merges for
the columnar layouts (§4.5.3).  With a
:class:`~repro.lsm.scheduler.BackgroundScheduler` attached to the datastore,
merges really do run concurrently (one per tree, capped across trees by
:class:`MergeScheduler`); without one, execution stays synchronous and the
scheduler still tracks how many merge requests were outstanding at once so
the ablation bench can report the pressure.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class TieringMergePolicy:
    """Size-tiered merge policy (AsterixDB's ``concurrent``/tiering policy).

    A merge is scheduled when more than ``max_tolerable_components`` on-disk
    components exist.  Scanning from the youngest component, the policy keeps
    extending the merge window while the accumulated size of the younger
    components is at least ``size_ratio`` times the next older component; the
    window (at least two components) is merged into one.
    """

    size_ratio: float = 1.2
    max_tolerable_components: int = 5

    def select(self, component_sizes: Sequence[int]) -> Optional[List[int]]:
        """Given sizes ordered newest → oldest, return indexes to merge (or None)."""
        count = len(component_sizes)
        if count <= self.max_tolerable_components:
            return None
        window = [0]
        accumulated = component_sizes[0]
        for index in range(1, count):
            size = component_sizes[index]
            if size <= 0 or accumulated >= self.size_ratio * size:
                window.append(index)
                accumulated += size
            else:
                break
        if len(window) < 2:
            window = [0, 1]
        return window


@dataclass
class NoMergePolicy:
    """Never merges (used by tests that want to inspect individual flushes)."""

    def select(self, component_sizes: Sequence[int]) -> Optional[List[int]]:
        return None


@dataclass
class MergeScheduler:
    """Fair (FIFO) merge scheduler with a concurrent-merge cap.

    The paper limits concurrent merges for APAX/AMAX to half the number of
    partitions to avoid saturating the CPU with decode/encode work (§4.5.3).
    Execution here is synchronous; the scheduler records how many merge
    requests were outstanding at once so benchmarks can show the pressure.
    """

    max_concurrent_merges: int = 4
    started: int = 0
    completed: int = 0
    max_observed_concurrency: int = 0
    _active: int = 0
    deferred: int = 0
    #: One scheduler is shared by every partition of a dataset, and with a
    #: background pool its merges race — the accounting must be atomic.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def try_start(self) -> bool:
        """Ask to start a merge; returns False when the cap would be exceeded."""
        with self._lock:
            if self._active >= self.max_concurrent_merges:
                self.deferred += 1
                return False
            self._active += 1
            self.started += 1
            self.max_observed_concurrency = max(
                self.max_observed_concurrency, self._active
            )
            return True

    def finish(self) -> None:
        with self._lock:
            self._active = max(0, self._active - 1)
            self.completed += 1
