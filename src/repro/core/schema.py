"""Schema tree with union types and schema inference (the tuple compactor).

The schema describes the structure of every record seen so far for one
dataset partition.  It is *inferred*, never declared: each flush extends it
(new fields, new types become unions), and the schema persisted with the
newest component is always a superset of all earlier ones (§2.2 of the
paper).

Node kinds
----------
``object``   children keyed by field name
``array``    a single ``item`` child describing every element
``union``    branches keyed by type tag (``string``, ``object`` ...); unions
             are *logical guides* and do not contribute a definition level
atomic       ``int64`` / ``double`` / ``string`` / ``boolean`` / ``null``
             leaves; every atomic leaf owns exactly one column

Definition levels
-----------------
Every non-union node has a ``level``: its depth counting object/array nodes
(root = 0).  A leaf's maximum definition level equals its level.  Union
branches share the level their slot would have had (§3.2.2: "union nodes are
logical guides and do not appear physically in the actual records").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..model.errors import SchemaError
from ..model.values import (
    ATOMIC_TYPE_TAGS,
    MISSING,
    TYPE_ARRAY,
    TYPE_OBJECT,
    type_tag_of,
)

KIND_OBJECT = TYPE_OBJECT
KIND_ARRAY = TYPE_ARRAY
KIND_UNION = "union"

#: Path step used to mark the elements of an array in a column's path.
ARRAY_PATH_STEP = "[*]"


def field_name_steps(steps: Iterable[str]) -> Tuple[str, ...]:
    """Strip array steps and union-branch tags from a path, leaving field names.

    This is the normalization used whenever a query path (which never names
    union branches and may or may not spell out array steps) is matched
    against a column path: ``a.b`` covers ``a.[*].b`` and ``a.<object>.b``.
    """
    return tuple(
        step
        for step in steps
        if step != ARRAY_PATH_STEP and not (step.startswith("<") and step.endswith(">"))
    )


class SchemaNode:
    """Base class for schema tree nodes."""

    __slots__ = ("level",)

    kind: str = "abstract"

    def __init__(self, level: int) -> None:
        self.level = level

    # Subclasses override ------------------------------------------------------
    def iter_children(self) -> Iterator["SchemaNode"]:
        return iter(())

    def to_dict(self) -> dict:  # pragma: no cover - overridden
        raise NotImplementedError


class ObjectNode(SchemaNode):
    """A nested object; children are keyed by field name."""

    __slots__ = ("children",)

    kind = KIND_OBJECT

    def __init__(self, level: int) -> None:
        super().__init__(level)
        self.children: Dict[str, SchemaNode] = {}

    def iter_children(self) -> Iterator[SchemaNode]:
        return iter(self.children.values())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "level": self.level,
            "children": {name: child.to_dict() for name, child in self.children.items()},
        }


class ArrayNode(SchemaNode):
    """An array; ``item`` describes the elements (None until first element seen)."""

    __slots__ = ("item",)

    kind = KIND_ARRAY

    def __init__(self, level: int) -> None:
        super().__init__(level)
        self.item: Optional[SchemaNode] = None

    def iter_children(self) -> Iterator[SchemaNode]:
        return iter(() if self.item is None else (self.item,))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "level": self.level,
            "item": None if self.item is None else self.item.to_dict(),
        }


class UnionNode(SchemaNode):
    """A union of heterogeneous types observed at one slot."""

    __slots__ = ("branches",)

    kind = KIND_UNION

    def __init__(self, level: int) -> None:
        super().__init__(level)
        self.branches: Dict[str, SchemaNode] = {}

    def iter_children(self) -> Iterator[SchemaNode]:
        return iter(self.branches.values())

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "level": self.level,
            "branches": {tag: node.to_dict() for tag, node in self.branches.items()},
        }


class AtomicNode(SchemaNode):
    """An atomic leaf; owns exactly one column."""

    __slots__ = ("type_tag", "column")

    kind = "atomic"

    def __init__(self, level: int, type_tag: str) -> None:
        super().__init__(level)
        self.type_tag = type_tag
        self.column: Optional["ColumnInfo"] = None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "level": self.level,
            "type": self.type_tag,
            "column": None if self.column is None else self.column.column_id,
        }


@dataclass
class ColumnInfo:
    """Metadata for one physical column (one atomic leaf in the schema tree).

    Attributes mirror what the shredder, the page writers, and the readers
    need: the maximum definition level, how many ancestor arrays the column
    has (which bounds the delimiter values), and the definition level of the
    outermost ancestor array (``None`` for columns not nested in arrays).
    """

    column_id: int
    path: Tuple[str, ...]
    type_tag: str
    max_def: int
    array_count: int
    outer_array_level: Optional[int]
    is_primary_key: bool = False

    @property
    def max_delimiter(self) -> int:
        """Largest delimiter value that can appear in this column (0 if none)."""
        return max(self.array_count - 1, 0)

    @property
    def max_level_value(self) -> int:
        """Largest integer stored in the definition-level stream."""
        return self.max_def

    @property
    def dotted_path(self) -> str:
        return ".".join(self.path) if self.path else "<pk>"

    def to_dict(self) -> dict:
        return {
            "column_id": self.column_id,
            "path": list(self.path),
            "type": self.type_tag,
            "max_def": self.max_def,
            "array_count": self.array_count,
            "outer_array_level": self.outer_array_level,
            "is_primary_key": self.is_primary_key,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ColumnInfo":
        return cls(
            column_id=data["column_id"],
            path=tuple(data["path"]),
            type_tag=data["type"],
            max_def=data["max_def"],
            array_count=data["array_count"],
            outer_array_level=data["outer_array_level"],
            is_primary_key=data["is_primary_key"],
        )


class Schema:
    """The inferred schema of one dataset: a tree plus the column catalog.

    The primary key is kept out of the tree — it is stored in its own column
    whose definition level encodes record vs. anti-matter (§3.2.3).
    """

    PK_COLUMN_ID = 0

    def __init__(self, primary_key_field: str = "id") -> None:
        self.primary_key_field = primary_key_field
        self.root = ObjectNode(level=0)
        self.columns: List[ColumnInfo] = []
        self._version = 0
        pk_column = ColumnInfo(
            column_id=self.PK_COLUMN_ID,
            path=(primary_key_field,),
            type_tag="int64",
            max_def=1,
            array_count=0,
            outer_array_level=None,
            is_primary_key=True,
        )
        self.columns.append(pk_column)

    # -- catalogue accessors ---------------------------------------------------
    @property
    def pk_column(self) -> ColumnInfo:
        return self.columns[self.PK_COLUMN_ID]

    @property
    def version(self) -> int:
        """Monotonically increasing; bumped whenever the tree changes shape."""
        return self._version

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, column_id: int) -> ColumnInfo:
        return self.columns[column_id]

    def value_columns(self) -> List[ColumnInfo]:
        """All columns except the primary key."""
        return self.columns[1:]

    # -- inference (the tuple compactor) ----------------------------------------
    def observe(self, document: dict) -> None:
        """Extend the schema so that ``document`` (pk removed) conforms to it."""
        if not isinstance(document, dict):
            raise SchemaError("top-level documents must be objects")
        for name, value in document.items():
            if name == self.primary_key_field:
                continue
            child = self.root.children.get(name)
            new_child = self._infer(child, value, self.root.level + 1, (name,))
            if new_child is not child:
                self.root.children[name] = new_child

    def _infer(
        self,
        node: Optional[SchemaNode],
        value,
        level: int,
        path: Tuple[str, ...],
    ) -> SchemaNode:
        tag = type_tag_of(value)
        if node is None:
            return self._create(value, level, path)
        if isinstance(node, UnionNode):
            branch = node.branches.get(tag)
            new_branch = self._infer(branch, value, node.level, path + (f"<{tag}>",))
            if new_branch is not branch:
                node.branches[tag] = new_branch
                self._version += 1
            return node
        node_tag = node.type_tag if isinstance(node, AtomicNode) else node.kind
        if node_tag == tag:
            self._extend_in_place(node, value, path)
            return node
        # Type conflict: wrap the existing node and the new value in a union.
        union = UnionNode(level=node.level)
        union.branches[node_tag] = node
        union.branches[tag] = self._create(value, node.level, path + (f"<{tag}>",))
        self._version += 1
        return union

    def _extend_in_place(self, node: SchemaNode, value, path: Tuple[str, ...]) -> None:
        if isinstance(node, ObjectNode):
            for name, child_value in value.items():
                child = node.children.get(name)
                new_child = self._infer(child, child_value, node.level + 1, path + (name,))
                if new_child is not child:
                    node.children[name] = new_child
        elif isinstance(node, ArrayNode):
            for element in value:
                item = node.item
                new_item = self._infer(
                    item, element, node.level + 1, path + (ARRAY_PATH_STEP,)
                )
                if new_item is not item:
                    node.item = new_item
        # atomic nodes with a matching tag need no extension

    def _create(self, value, level: int, path: Tuple[str, ...]) -> SchemaNode:
        tag = type_tag_of(value)
        self._version += 1
        if tag == TYPE_OBJECT:
            node = ObjectNode(level)
            for name, child_value in value.items():
                node.children[name] = self._create(child_value, level + 1, path + (name,))
            return node
        if tag == TYPE_ARRAY:
            node = ArrayNode(level)
            for element in value:
                item = node.item
                new_item = self._infer(
                    item, element, level + 1, path + (ARRAY_PATH_STEP,)
                )
                if new_item is not item:
                    node.item = new_item
            if node.item is None:
                # An empty array must still own a column: without a leaf below
                # the array node there would be nowhere to record the
                # definition level that distinguishes ``[]`` from MISSING, and
                # the shredder would silently drop the field.  A null item
                # behaves exactly like a ``[null]`` element type and unions
                # with whatever element type shows up later.
                node.item = self._create(None, level + 1, path + (ARRAY_PATH_STEP,))
            return node
        leaf = AtomicNode(level, tag)
        leaf.column = self._register_column(leaf, path)
        return leaf

    def _register_column(self, leaf: AtomicNode, path: Tuple[str, ...]) -> ColumnInfo:
        array_count = sum(1 for step in path if step == ARRAY_PATH_STEP)
        outer_array_level = None
        if array_count:
            # The outermost ancestor array's level equals the number of
            # level-contributing steps strictly before the first array step
            # (the "[*]" step descends *into* the array node).
            outer_array_level = 0
            for step in path:
                if step == ARRAY_PATH_STEP:
                    break
                if step.startswith("<") and step.endswith(">"):
                    continue  # union branches do not add levels
                outer_array_level += 1
        info = ColumnInfo(
            column_id=len(self.columns),
            path=path,
            type_tag=leaf.type_tag,
            max_def=leaf.level,
            array_count=array_count,
            outer_array_level=outer_array_level,
            is_primary_key=False,
        )
        self.columns.append(info)
        return info

    # -- traversal helpers -------------------------------------------------------
    def iter_leaves(self, node: Optional[SchemaNode] = None) -> Iterator[AtomicNode]:
        """Yield every atomic leaf below ``node`` (default: the whole tree)."""
        start = self.root if node is None else node
        stack = [start]
        while stack:
            current = stack.pop()
            if isinstance(current, AtomicNode):
                yield current
            else:
                stack.extend(current.iter_children())

    def leaf_columns(self, node: Optional[SchemaNode] = None) -> List[ColumnInfo]:
        """Column metadata for every leaf below ``node`` in column-id order."""
        columns = [leaf.column for leaf in self.iter_leaves(node) if leaf.column]
        return sorted(columns, key=lambda column: column.column_id)

    def field_node(self, field_name: str) -> Optional[SchemaNode]:
        return self.root.children.get(field_name)

    def columns_for_fields(self, field_names: Iterable[str]) -> List[ColumnInfo]:
        """Columns needed to read the given top-level fields (plus the pk)."""
        wanted: List[ColumnInfo] = [self.pk_column]
        for name in field_names:
            node = self.field_node(name)
            if node is not None:
                wanted.extend(self.leaf_columns(node))
        seen = set()
        unique = []
        for column in sorted(wanted, key=lambda column: column.column_id):
            if column.column_id not in seen:
                seen.add(column.column_id)
                unique.append(column)
        return unique

    def columns_for_paths(self, paths: Iterable[object]) -> List[ColumnInfo]:
        """Columns needed to evaluate the given (possibly nested) paths, plus the pk.

        This is the fine-grained companion of :meth:`columns_for_fields`: a
        column is needed iff one of the requested paths is a field-name-wise
        prefix of the column's path (array steps and union-branch tags are
        ignored on both sides, so ``a.b`` covers ``a.[*].b``, ``a.<object>.b``
        and everything beneath them).  Requested paths that reach *deeper*
        than an atomic column select nothing from it — the document value
        there is MISSING by construction.
        """
        from ..model.path import FieldPath

        requested = [field_name_steps(FieldPath.of(path).steps) for path in paths]
        wanted: List[ColumnInfo] = [self.pk_column]
        for column in self.columns:
            if column.is_primary_key:
                continue
            stripped = field_name_steps(column.path)
            if any(stripped[: len(steps)] == steps for steps in requested):
                wanted.append(column)
        return wanted

    def top_field_of_column(self, column: ColumnInfo) -> Optional[str]:
        """The top-level field a column belongs to (None for the pk column)."""
        if column.is_primary_key:
            return None
        return column.path[0]

    # -- serialization -----------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "primary_key_field": self.primary_key_field,
            "version": self._version,
            "root": self.root.to_dict(),
            "columns": [column.to_dict() for column in self.columns],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Schema":
        schema = cls(primary_key_field=data["primary_key_field"])
        schema.columns = [ColumnInfo.from_dict(entry) for entry in data["columns"]]
        column_by_id = {column.column_id: column for column in schema.columns}
        schema.root = _node_from_dict(data["root"], column_by_id)
        schema._version = data["version"]
        return schema

    def clone(self) -> "Schema":
        """Deep copy (used when persisting a snapshot with a flushed component)."""
        return Schema.from_dict(self.to_dict())

    # -- debugging ----------------------------------------------------------------
    def describe(self) -> str:
        """A human-readable rendering of the schema tree (used by examples)."""
        lines: List[str] = [f"root (object, level 0, pk={self.primary_key_field!r})"]
        self._describe(self.root, indent=1, lines=lines)
        return "\n".join(lines)

    def _describe(self, node: SchemaNode, indent: int, lines: List[str]) -> None:
        prefix = "  " * indent
        if isinstance(node, ObjectNode):
            for name, child in node.children.items():
                lines.append(f"{prefix}{name}: {_describe_node(child)}")
                self._describe(child, indent + 1, lines)
        elif isinstance(node, ArrayNode):
            if node.item is not None:
                lines.append(f"{prefix}[*]: {_describe_node(node.item)}")
                self._describe(node.item, indent + 1, lines)
        elif isinstance(node, UnionNode):
            for tag, branch in node.branches.items():
                lines.append(f"{prefix}<{tag}>: {_describe_node(branch)}")
                self._describe(branch, indent + 1, lines)


def _describe_node(node: SchemaNode) -> str:
    if isinstance(node, AtomicNode):
        column_id = node.column.column_id if node.column else "?"
        return f"{node.type_tag} (level {node.level}, column {column_id})"
    return f"{node.kind} (level {node.level})"


def _node_from_dict(data: dict, columns: Dict[int, ColumnInfo]) -> SchemaNode:
    kind = data["kind"]
    if kind == KIND_OBJECT:
        node = ObjectNode(data["level"])
        node.children = {
            name: _node_from_dict(child, columns)
            for name, child in data["children"].items()
        }
        return node
    if kind == KIND_ARRAY:
        node = ArrayNode(data["level"])
        node.item = (
            None if data["item"] is None else _node_from_dict(data["item"], columns)
        )
        return node
    if kind == KIND_UNION:
        node = UnionNode(data["level"])
        node.branches = {
            tag: _node_from_dict(branch, columns)
            for tag, branch in data["branches"].items()
        }
        return node
    if kind == "atomic":
        leaf = AtomicNode(data["level"], data["type"])
        if data["column"] is not None:
            leaf.column = columns[data["column"]]
        return leaf
    raise SchemaError(f"unknown schema node kind {kind!r}")
