"""Shredding records into extended-Dremel columns.

The :class:`RecordShredder` consumes schemaless documents (plus their primary
keys and anti-matter flags) and produces one :class:`~repro.core.columns.ShreddedColumn`
per atomic leaf of the (growing) schema.  It is the write-side half of the
paper's §3.2; the read-side half is :mod:`repro.core.assembly`.

Delimiter scheme
----------------
For a leaf with *k* ancestor arrays:

* elements of the array at array-depth *j* (1-based, outermost = 1) are
  separated by a delimiter whose definition level is *j* — emitted only to
  leaves that have at least one deeper ancestor array (``array_count > j``);
* when the outermost ancestor array is present, the record's repeated content
  is terminated by a delimiter with definition level 0, emitted to every leaf
  below it.

This matches the paper's Figures 5 and 7 with one deviation (documented in
DESIGN.md): separators are emitted at *every* element boundary of
non-innermost arrays, not only after elements that contained an inner array
instance.  The extra delimiters keep every column independently decodable,
which the LSM reconciliation and vertical merge paths rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..model.errors import SchemaError
from ..model.values import MISSING, TYPE_NULL, type_tag_of
from .columns import ShreddedColumn
from .schema import (
    ArrayNode,
    AtomicNode,
    ColumnInfo,
    ObjectNode,
    Schema,
    SchemaNode,
    UnionNode,
)


class RecordShredder:
    """Shreds a batch of records (e.g. one LSM flush) into columns."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._columns: Dict[int, ShreddedColumn] = {}
        self._record_count = 0
        # Cache of descendant leaf columns per schema node, invalidated when
        # the schema grows (keyed by the schema version at cache time).
        self._leaf_cache: Dict[int, tuple] = {}
        self._ensure_column(schema.pk_column)

    # -- public API ---------------------------------------------------------------
    @property
    def record_count(self) -> int:
        return self._record_count

    @property
    def columns(self) -> Dict[int, ShreddedColumn]:
        """Shredded columns keyed by column id (includes the primary key column)."""
        return self._columns

    def shred(self, key, document: Optional[dict], antimatter: bool = False) -> None:
        """Shred one record (or anti-matter entry) into the column buffers."""
        if antimatter:
            self._shred_antimatter(key)
            return
        if not isinstance(document, dict):
            raise SchemaError("documents must be JSON objects at the top level")
        self.schema.observe(document)
        pk_writer = self._ensure_column(self.schema.pk_column)
        pk_writer.add_value(1, key)
        root = self.schema.root
        for name, child in root.children.items():
            value = document.get(name, MISSING)
            if name == self.schema.primary_key_field:
                value = MISSING
            self._shred_node(child, value, last_present=0, array_depth=0)
        self._record_count += 1

    def finish(self) -> Dict[int, ShreddedColumn]:
        """Make sure every schema column has a buffer (back-filled) and return them."""
        for column in self.schema.columns:
            self._ensure_column(column)
        return self._columns

    # -- anti-matter ----------------------------------------------------------------
    def _shred_antimatter(self, key) -> None:
        pk_writer = self._ensure_column(self.schema.pk_column)
        pk_writer.add_value(0, key)
        for column in self.schema.value_columns():
            self._ensure_column(column).add_missing(0)
        self._record_count += 1

    # -- node shredding ----------------------------------------------------------------
    def _shred_node(
        self, node: SchemaNode, value, last_present: int, array_depth: int
    ) -> None:
        if isinstance(node, UnionNode):
            actual_tag = None if value is MISSING else type_tag_of(value)
            for tag, branch in node.branches.items():
                branch_value = value if tag == actual_tag else MISSING
                self._shred_node(branch, branch_value, last_present, array_depth)
            return
        if isinstance(node, AtomicNode):
            writer = self._ensure_column(node.column)
            if value is MISSING:
                writer.add_missing(last_present)
            elif node.type_tag == TYPE_NULL:
                writer.add_value(node.level, None)
            else:
                writer.add_value(node.level, value)
            return
        if isinstance(node, ObjectNode):
            if value is MISSING:
                for child in node.children.values():
                    self._shred_node(child, MISSING, last_present, array_depth)
            else:
                for name, child in node.children.items():
                    child_value = value.get(name, MISSING)
                    self._shred_node(child, child_value, node.level, array_depth)
            return
        if isinstance(node, ArrayNode):
            self._shred_array(node, value, last_present, array_depth)
            return
        raise SchemaError(f"cannot shred schema node of kind {node.kind!r}")

    def _shred_array(
        self, node: ArrayNode, value, last_present: int, array_depth: int
    ) -> None:
        depth = array_depth + 1
        item = node.item
        if item is None:
            # The array has never contained an element; there are no columns
            # below it, so there is nothing to record.
            return
        leaves = self._leaves_below(item)
        if value is MISSING:
            for column in leaves:
                self._ensure_column(column).add_missing(last_present)
            return
        if len(value) == 0:
            for column in leaves:
                self._ensure_column(column).add_missing(node.level)
        else:
            separator_leaves = [
                column for column in leaves if column.array_count > depth
            ]
            for index, element in enumerate(value):
                if index > 0:
                    for column in separator_leaves:
                        self._ensure_column(column).add_delimiter(depth)
                self._shred_node(item, element, node.level, depth)
        if depth == 1:
            for column in leaves:
                self._ensure_column(column).add_delimiter(0)

    # -- helpers ----------------------------------------------------------------
    def _ensure_column(self, column: ColumnInfo) -> ShreddedColumn:
        writer = self._columns.get(column.column_id)
        if writer is None:
            backfill = 0 if column.is_primary_key else self._record_count
            writer = ShreddedColumn(column, backfill_records=backfill)
            self._columns[column.column_id] = writer
        return writer

    def _leaves_below(self, node: SchemaNode) -> tuple:
        cached = self._leaf_cache.get(id(node))
        if cached is not None and cached[0] == self.schema.version:
            return cached[1]
        leaves = tuple(self.schema.leaf_columns(node))
        self._leaf_cache[id(node)] = (self.schema.version, leaves)
        return leaves


def shred_batch(
    schema: Schema,
    records: List[tuple],
) -> Dict[int, ShreddedColumn]:
    """Shred ``records`` (tuples ``(key, document, antimatter)``) in one pass.

    Convenience wrapper used by tests and by the flush path; the schema is
    extended in place.
    """
    shredder = RecordShredder(schema)
    for key, document, antimatter in records:
        shredder.shred(key, document, antimatter=antimatter)
    return shredder.finish()
