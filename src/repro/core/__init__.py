"""Core of the paper's contribution: schema inference and the extended Dremel format."""

from .assembly import RecordAssembler, assemble_document, assemble_path_value
from .columns import ColumnCursor, Entry, ShreddedColumn, cursor_group
from .dremel import DremelColumn, DremelShredder
from .schema import (
    ArrayNode,
    AtomicNode,
    ColumnInfo,
    ObjectNode,
    Schema,
    SchemaNode,
    UnionNode,
)
from .shredder import RecordShredder, shred_batch

__all__ = [
    "ArrayNode",
    "AtomicNode",
    "ColumnCursor",
    "ColumnInfo",
    "DremelColumn",
    "DremelShredder",
    "Entry",
    "ObjectNode",
    "RecordAssembler",
    "RecordShredder",
    "Schema",
    "SchemaNode",
    "ShreddedColumn",
    "UnionNode",
    "assemble_document",
    "assemble_path_value",
    "cursor_group",
    "shred_batch",
]
