"""Classic Dremel column striping (repetition + definition levels).

This module implements the original Dremel record-shredding algorithm
(Melnik et al., VLDB 2010) on top of the same inferred :class:`Schema` used by
the extended format.  It exists for two reasons:

* as a correctness reference — the unit tests reproduce the paper's Figure 4
  example and check the repetition/definition levels literally; and
* as the baseline for the §3.2.1 ablation, which compares the storage cost of
  repetition levels against the extended format's delimiters
  (``benchmarks/bench_ablation_levels.py``).

Only shredding (and level-size accounting) is provided; the full read path of
the library uses the extended format exclusively, as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..encoding import bitpacking, rle
from ..model.errors import SchemaError
from ..model.values import MISSING, TYPE_NULL, type_tag_of
from .schema import (
    ArrayNode,
    AtomicNode,
    ColumnInfo,
    ObjectNode,
    Schema,
    SchemaNode,
    UnionNode,
)

#: One classic-Dremel entry: (repetition level, definition level, value-or-None).
Triplet = Tuple[int, int, object]


class DremelColumn:
    """The triplets of one column, in record order."""

    __slots__ = ("column", "triplets")

    def __init__(self, column: ColumnInfo) -> None:
        self.column = column
        self.triplets: List[Triplet] = []

    @property
    def max_repetition(self) -> int:
        return self.column.array_count

    @property
    def max_definition(self) -> int:
        return self.column.max_def

    def level_bytes(self) -> int:
        """Encoded size of the repetition + definition level streams (RLE hybrid)."""
        repetition_levels = [triplet[0] for triplet in self.triplets]
        definition_levels = [triplet[1] for triplet in self.triplets]
        size = 0
        if self.max_repetition > 0:
            width = bitpacking.bit_width_for(self.max_repetition)
            size += len(rle.encode(repetition_levels, width))
        width = bitpacking.bit_width_for(self.max_definition)
        size += len(rle.encode(definition_levels, width))
        return size


class DremelShredder:
    """Shreds records into classic Dremel (repetition, definition, value) triplets."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.columns: Dict[int, DremelColumn] = {}
        self.record_count = 0

    def column(self, column_info: ColumnInfo) -> DremelColumn:
        existing = self.columns.get(column_info.column_id)
        if existing is None:
            existing = DremelColumn(column_info)
            # Back-fill records shredded before this column appeared.
            existing.triplets = [(0, 0, None)] * self.record_count
            self.columns[column_info.column_id] = existing
        return existing

    def shred(self, key, document: dict) -> None:
        """Shred one record (primary keys use definition level 1, as in §3.2.3)."""
        if not isinstance(document, dict):
            raise SchemaError("documents must be JSON objects at the top level")
        self.schema.observe(document)
        self.column(self.schema.pk_column).triplets.append((0, 1, key))
        for name, child in self.schema.root.children.items():
            value = document.get(name, MISSING)
            if name == self.schema.primary_key_field:
                value = MISSING
            self._shred_node(child, value, repetition=0, definition=0, depth=0)
        self.record_count += 1

    # -- recursion -------------------------------------------------------------------
    def _shred_node(
        self,
        node: SchemaNode,
        value,
        repetition: int,
        definition: int,
        depth: int,
    ) -> None:
        if isinstance(node, UnionNode):
            actual_tag = None if value is MISSING else type_tag_of(value)
            for tag, branch in node.branches.items():
                branch_value = value if tag == actual_tag else MISSING
                self._shred_node(branch, branch_value, repetition, definition, depth)
            return
        if isinstance(node, AtomicNode):
            if node.column is None:
                return
            if value is MISSING:
                triplet = (repetition, definition, None)
            elif node.type_tag == TYPE_NULL:
                triplet = (repetition, node.level, None)
            else:
                triplet = (repetition, node.level, value)
            self.column(node.column).triplets.append(triplet)
            return
        if isinstance(node, ObjectNode):
            child_definition = definition if value is MISSING else node.level
            for name, child in node.children.items():
                child_value = MISSING if value is MISSING else value.get(name, MISSING)
                self._shred_node(child, child_value, repetition, child_definition, depth)
            return
        if isinstance(node, ArrayNode):
            self._shred_array(node, value, repetition, definition, depth)
            return
        raise SchemaError(f"cannot shred schema node of kind {node.kind!r}")

    def _shred_array(
        self,
        node: ArrayNode,
        value,
        repetition: int,
        definition: int,
        depth: int,
    ) -> None:
        if node.item is None:
            return
        array_depth = depth + 1
        if value is MISSING or len(value) == 0:
            element_definition = definition if value is MISSING else node.level
            self._emit_missing(node.item, repetition, element_definition, array_depth)
            return
        for index, element in enumerate(value):
            element_repetition = repetition if index == 0 else array_depth
            self._shred_node(
                node.item, element, element_repetition, node.level, array_depth
            )

    def _emit_missing(
        self, node: SchemaNode, repetition: int, definition: int, depth: int
    ) -> None:
        for column in self.schema.leaf_columns(node):
            self.column(column).triplets.append((repetition, definition, None))

    # -- accounting --------------------------------------------------------------------
    def total_level_bytes(self) -> int:
        """Total encoded size of all level streams (repetition + definition)."""
        return sum(column.level_bytes() for column in self.columns.values())
