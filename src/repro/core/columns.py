"""In-memory column buffers and cursors for the extended Dremel format.

A *shredded column* is the in-memory representation of one column's entries
for a batch of records: a definition-level stream plus the present values.
Delimiters (§3.2.1) live in the definition-level stream and carry no value.

Entries are plain tuples ``(definition_level, value, is_delimiter)`` — the
hot loops in the shredder, the assembler, and the LSM merge all manipulate
them, so we keep the representation minimal.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from ..model.errors import SchemaError
from ..model.values import TYPE_NULL
from .schema import ColumnInfo

Entry = Tuple[int, Optional[object], bool]


def make_value_entry(definition_level: int, value=None) -> Entry:
    return (definition_level, value, False)


def make_delimiter_entry(definition_level: int) -> Entry:
    return (definition_level, None, True)


class ShreddedColumn:
    """Write-side buffer for one column of a batch of shredded records."""

    __slots__ = ("column", "defs", "values")

    def __init__(self, column: ColumnInfo, backfill_records: int = 0) -> None:
        self.column = column
        #: One definition level per entry (values *and* delimiters).
        self.defs: List[int] = [0] * backfill_records
        #: Present values only (entries whose definition level == max_def).
        self.values: List[object] = []
        if column.is_primary_key and backfill_records:
            raise SchemaError("the primary key column can never be back-filled")

    # -- writing ----------------------------------------------------------------
    def add_value(self, definition_level: int, value=None) -> None:
        """Append a value entry (the value is stored only when present)."""
        self.defs.append(definition_level)
        if self.column.is_primary_key:
            self.values.append(value)
        elif definition_level == self.column.max_def and self.column.type_tag != TYPE_NULL:
            self.values.append(value)

    def add_missing(self, definition_level: int) -> None:
        """Append an entry recording that an ancestor (or the value) is absent."""
        self.defs.append(definition_level)

    def add_delimiter(self, definition_level: int) -> None:
        """Append an end-of-array delimiter (§3.2.1)."""
        self.defs.append(definition_level)

    def extend_backfill(self, record_count: int) -> None:
        """Prepend implicit definition-level-0 entries for earlier records.

        Used when a column is discovered mid-batch (§3.2.2: "we can write
        NULLs in the newly inferred columns for all previous records").
        """
        if record_count:
            self.defs[0:0] = [0] * record_count

    # -- statistics --------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        return len(self.defs)

    @property
    def value_count(self) -> int:
        return len(self.values)

    def min_max_values(self) -> Tuple[Optional[object], Optional[object]]:
        """Minimum and maximum present value (None when the column has no values)."""
        if not self.values:
            return None, None
        try:
            return min(self.values), max(self.values)
        except TypeError:
            return None, None


class ColumnCursor:
    """Read-side cursor over one column's decoded streams.

    The cursor splits the streams into per-record entry lists using the
    column-local boundary rule of the extended format:

    * a column with no ancestor arrays has exactly one entry per record;
    * otherwise the first entry of a record is always a value entry.  If its
      definition level is below the outermost ancestor array's level, the
      record contributed a single entry; otherwise entries continue until the
      record-end delimiter (definition level 0) is consumed.  Within the
      content, an entry is a delimiter iff its definition level is at most the
      column's maximum delimiter and the previous entry was not a delimiter.
    """

    __slots__ = ("column", "defs", "values", "_def_pos", "_val_pos")

    def __init__(self, column: ColumnInfo, defs: Sequence[int], values: Sequence) -> None:
        self.column = column
        self.defs = defs
        self.values = values
        self._def_pos = 0
        self._val_pos = 0

    # -- iteration ----------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return self._def_pos >= len(self.defs)

    def reset(self) -> None:
        self._def_pos = 0
        self._val_pos = 0

    def _has_value(self, definition_level: int, is_delimiter: bool) -> bool:
        if is_delimiter:
            return False
        if self.column.is_primary_key:
            return True
        return (
            definition_level == self.column.max_def
            and self.column.type_tag != TYPE_NULL
        )

    def _read_entry(self, is_delimiter: bool) -> Entry:
        definition_level = self.defs[self._def_pos]
        self._def_pos += 1
        value = None
        if self._has_value(definition_level, is_delimiter):
            value = self.values[self._val_pos]
            self._val_pos += 1
        return (definition_level, value, is_delimiter)

    def next_record(self) -> List[Entry]:
        """Return the entries contributed by the next record."""
        if self.exhausted:
            raise SchemaError(
                f"column {self.column.dotted_path!r} has no more records"
            )
        column = self.column
        if column.array_count == 0:
            return [self._read_entry(False)]
        first = self._read_entry(False)
        entries = [first]
        if first[0] < (column.outer_array_level or 0):
            return entries
        max_delimiter = column.max_delimiter
        previous_was_delimiter = False
        while True:
            if self.exhausted:
                raise SchemaError(
                    f"column {self.column.dotted_path!r} is missing its record-end "
                    "delimiter"
                )
            definition_level = self.defs[self._def_pos]
            is_delimiter = (
                not previous_was_delimiter and definition_level <= max_delimiter
            )
            entry = self._read_entry(is_delimiter)
            entries.append(entry)
            if is_delimiter:
                if definition_level == 0:
                    return entries
                previous_was_delimiter = True
            else:
                previous_was_delimiter = False

    def skip_records(self, count: int) -> None:
        """Advance past ``count`` records without materializing their values.

        This is the batched-skip path used during LSM reconciliation (§4.4):
        ignored records are counted first and each column's cursor is advanced
        once, per column, by the whole batch.
        """
        for _ in range(count):
            self.next_record()

    def remaining_records(self) -> int:
        """Count the records left (consumes the cursor; used by tests/merges)."""
        count = 0
        while not self.exhausted:
            self.next_record()
            count += 1
        return count


def cursor_group(columns: Iterable[ColumnInfo], streams) -> List[ColumnCursor]:
    """Build cursors for a set of columns given ``streams[column_id] = (defs, values)``."""
    cursors = []
    for column in columns:
        defs, values = streams[column.column_id]
        cursors.append(ColumnCursor(column, defs, values))
    return cursors
