"""Record assembly: reconstructing documents (or parts of them) from columns.

This is the read-side record-assembly automaton of §3.2.4.  Given the schema
tree and, for one record, the list of entries contributed to each column, the
assembler rebuilds the original nested value:

* objects are assembled from their children (absent children are omitted);
* unions inspect their branches one by one — exactly one branch can be
  present (§3.2.2);
* arrays are rebuilt element by element.  For a leaf whose innermost ancestor
  array is the one being assembled, each entry is one element; for deeper
  leaves, element boundaries are the delimiters whose definition level equals
  the array's array-depth.

Partial assembly (projection) works on any subset of top-level fields: only
the columns under those fields need to be decoded, which is where the
columnar layouts get their I/O advantage.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..model.errors import SchemaError
from ..model.values import MISSING, TYPE_NULL
from .columns import ColumnCursor, Entry
from .schema import (
    ArrayNode,
    AtomicNode,
    ColumnInfo,
    ObjectNode,
    Schema,
    SchemaNode,
    UnionNode,
)

RecordChunk = Dict[int, List[Entry]]


def assemble_document(
    schema: Schema,
    chunk: RecordChunk,
    key=None,
    fields: Optional[Iterable[str]] = None,
) -> dict:
    """Assemble one record from its per-column entries.

    ``fields`` restricts assembly to specific top-level fields (projection);
    by default every field present in the schema is assembled.  ``key`` is
    re-attached under the schema's primary-key field when provided.
    """
    document: dict = {}
    if key is not None:
        document[schema.primary_key_field] = key
    wanted = None if fields is None else set(fields)
    for name, child in schema.root.children.items():
        if wanted is not None and name not in wanted:
            continue
        value = _assemble_node(schema, child, chunk, array_depth=0)
        if value is not MISSING:
            document[name] = value
    return document


def assemble_path_value(schema: Schema, node: SchemaNode, chunk: RecordChunk):
    """Assemble the value rooted at an arbitrary schema node (or MISSING)."""
    return _assemble_node(schema, node, chunk, array_depth=_array_depth_of(schema, node))


class RecordAssembler:
    """Streams assembled (partial) documents from a group of column cursors."""

    def __init__(
        self,
        schema: Schema,
        cursors: Sequence[ColumnCursor],
        fields: Optional[Iterable[str]] = None,
    ) -> None:
        self.schema = schema
        self.cursors = list(cursors)
        self.fields = None if fields is None else list(fields)
        self._pk_cursor = None
        for cursor in self.cursors:
            if cursor.column.is_primary_key:
                self._pk_cursor = cursor

    @property
    def exhausted(self) -> bool:
        if self._pk_cursor is not None:
            return self._pk_cursor.exhausted
        return all(cursor.exhausted for cursor in self.cursors)

    def next_chunk(self) -> RecordChunk:
        """Advance every cursor by one record and return the raw entry chunk."""
        chunk: RecordChunk = {}
        for cursor in self.cursors:
            chunk[cursor.column.column_id] = cursor.next_record()
        return chunk

    def next_document(self):
        """Assemble the next record; returns ``(key, is_antimatter, document)``."""
        chunk = self.next_chunk()
        key = None
        antimatter = False
        if self._pk_cursor is not None:
            pk_entry = chunk[self._pk_cursor.column.column_id][0]
            key = pk_entry[1]
            antimatter = pk_entry[0] == 0
        if antimatter:
            return key, True, None
        document = assemble_document(self.schema, chunk, key=key, fields=self.fields)
        return key, False, document

    def __iter__(self):
        while not self.exhausted:
            yield self.next_document()


# -- node assembly ---------------------------------------------------------------


def _assemble_node(
    schema: Schema, node: SchemaNode, chunk: RecordChunk, array_depth: int
):
    if isinstance(node, AtomicNode):
        return _assemble_atomic(node, chunk)
    if isinstance(node, UnionNode):
        for branch in node.branches.values():
            value = _assemble_node(schema, branch, chunk, array_depth)
            if value is not MISSING:
                return value
        return MISSING
    if isinstance(node, ObjectNode):
        return _assemble_object(schema, node, chunk, array_depth)
    if isinstance(node, ArrayNode):
        return _assemble_array(schema, node, chunk, array_depth)
    raise SchemaError(f"cannot assemble schema node of kind {node.kind!r}")


def _assemble_atomic(node: AtomicNode, chunk: RecordChunk):
    column = node.column
    if column is None or column.column_id not in chunk:
        return MISSING
    entries = [entry for entry in chunk[column.column_id] if not entry[2]]
    if not entries:
        return MISSING
    if len(entries) != 1:
        raise SchemaError(
            f"column {column.dotted_path!r} produced {len(entries)} entries for a "
            "single atomic slot"
        )
    definition_level, value, _ = entries[0]
    if definition_level != node.level:
        return MISSING
    if node.type_tag == TYPE_NULL:
        return None
    return value


def _collect_leaf_entries(
    schema: Schema, node: SchemaNode, chunk: RecordChunk
) -> List[tuple]:
    """Return ``(column, entries)`` for every descendant column present in the chunk."""
    collected = []
    for column in schema.leaf_columns(node):
        entries = chunk.get(column.column_id)
        if entries is not None:
            collected.append((column, entries))
    return collected


def _assemble_object(
    schema: Schema, node: ObjectNode, chunk: RecordChunk, array_depth: int
):
    leaves = _collect_leaf_entries(schema, node, chunk)
    if not leaves:
        return MISSING
    present = any(
        entry[0] >= node.level
        for _, entries in leaves
        for entry in entries
        if not entry[2]
    )
    if not present:
        return MISSING
    result = {}
    for name, child in node.children.items():
        value = _assemble_node(schema, child, chunk, array_depth)
        if value is not MISSING:
            result[name] = value
    return result


def _assemble_array(
    schema: Schema, node: ArrayNode, chunk: RecordChunk, array_depth: int
):
    if node.item is None:
        return MISSING
    depth = array_depth + 1
    leaves = _collect_leaf_entries(schema, node, chunk)
    if not leaves:
        return MISSING
    value_entries = [
        entry
        for _, entries in leaves
        for entry in entries
        if not entry[2]
    ]
    if not value_entries:
        return MISSING
    if all(entry[0] < node.level for entry in value_entries):
        return MISSING
    if all(entry[0] <= node.level for entry in value_entries):
        return []
    element_chunks = _split_elements(node, leaves, depth)
    elements = []
    for element_chunk in element_chunks:
        element = _assemble_node(schema, node.item, element_chunk, depth)
        if element is MISSING:
            raise SchemaError(
                "array element assembled to MISSING; column streams are inconsistent"
            )
        elements.append(element)
    return elements


def _split_elements(
    node: ArrayNode, leaves: List[tuple], depth: int
) -> List[RecordChunk]:
    """Split each leaf's entries into per-element chunks for an array at ``depth``.

    A column whose entries claim the array is absent (a single value entry at
    or below the array's level) carries no per-element information — this
    happens for columns discovered after the record was written, which are
    back-filled with definition level 0 (§3.2.2).  Such columns contribute a
    "missing" entry to every element instead of participating in the element
    count.
    """
    per_leaf_chunks: List[tuple] = []
    absent_leaves: List[tuple] = []
    element_count = None
    for column, entries in leaves:
        value_entries = [entry for entry in entries if not entry[2]]
        if len(value_entries) == 1 and value_entries[0][0] <= node.level:
            absent_leaves.append((column, value_entries[0]))
            continue
        if column.array_count == depth:
            # This array is the leaf's innermost ancestor array: one entry per
            # element; outer-level delimiters (e.g. the record-end 0) are dropped.
            chunks = [[entry] for entry in value_entries]
        else:
            chunks = _split_on_delimiters(entries, depth)
        per_leaf_chunks.append((column, chunks))
        if element_count is None:
            element_count = len(chunks)
        elif element_count != len(chunks):
            raise SchemaError(
                f"column {column.dotted_path!r} disagrees on the element count "
                f"({len(chunks)} vs {element_count}) at array depth {depth}"
            )
    element_chunks: List[RecordChunk] = []
    for index in range(element_count or 0):
        chunk = {column.column_id: chunks[index] for column, chunks in per_leaf_chunks}
        for column, entry in absent_leaves:
            chunk[column.column_id] = [entry]
        element_chunks.append(chunk)
    return element_chunks


def _split_on_delimiters(entries: List[Entry], depth: int) -> List[List[Entry]]:
    """Split entries on delimiters whose level equals ``depth``.

    Delimiters of shallower levels (the record-end delimiter, separators of
    enclosing arrays) are dropped; deeper delimiters stay inside the element
    chunks so that nested arrays can split on them in turn.
    """
    chunks: List[List[Entry]] = [[]]
    for entry in entries:
        definition_level, _, is_delimiter = entry
        if is_delimiter:
            if definition_level == depth:
                chunks.append([])
            elif definition_level < depth:
                continue
            else:
                chunks[-1].append(entry)
        else:
            chunks[-1].append(entry)
    return [chunk for chunk in chunks if chunk]


def _array_depth_of(schema: Schema, target: SchemaNode) -> int:
    """Number of array ancestors of ``target`` in the schema tree."""

    def walk(node: SchemaNode, depth: int) -> Optional[int]:
        if node is target:
            return depth
        next_depth = depth + 1 if isinstance(node, ArrayNode) else depth
        for child in node.iter_children():
            found = walk(child, next_depth)
            if found is not None:
                return found
        return None

    result = walk(schema.root, 0)
    if result is None:
        raise SchemaError("schema node is not part of this schema")
    return result
