"""Per-query distributed tracing: spans, the active-trace thread-local, and
renderers.

Every statement gets a ``query_id`` and a :class:`QueryTrace` — a tree of
:class:`Span` nodes (parse → bind → optimize → execute → per-operator) with
row/batch/byte attributes.  Traces serialize to plain dicts so shard engines
can return them inside wire ``done`` frames; the coordinator re-hydrates
them with :meth:`Span.from_dict` and stitches them under its own scatter
span, producing one tree for the whole distributed query.

The tracing primitives are deliberately cheap when idle: :func:`span` reads
one thread-local and yields immediately when no trace is active, so code in
hot paths can be instrumented unconditionally.
"""

from __future__ import annotations

import threading
import time
import uuid
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional


def new_query_id() -> str:
    """A fresh 12-hex-digit query identifier."""
    return uuid.uuid4().hex[:12]


class Span:
    """One timed node in a query's span tree."""

    __slots__ = ("name", "duration_s", "attrs", "children", "_start")

    def __init__(self, name: str, **attrs: Any) -> None:
        self.name = name
        self.duration_s = 0.0
        self.attrs: Dict[str, Any] = {k: v for k, v in attrs.items()
                                      if v is not None}
        self.children: List["Span"] = []
        self._start: Optional[float] = None

    def add_child(self, child: "Span") -> "Span":
        self.children.append(child)
        return child

    def to_dict(self) -> dict:
        payload: Dict[str, Any] = {
            "name": self.name,
            "duration_s": round(self.duration_s, 6),
        }
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [child.to_dict() for child in self.children]
        return payload

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(str(data.get("name", "?")))
        span.duration_s = float(data.get("duration_s", 0.0))
        span.attrs = dict(data.get("attrs") or {})
        span.children = [cls.from_dict(child)
                         for child in data.get("children") or []]
        return span


class QueryTrace:
    """The span tree of one statement, rooted at a ``statement`` span."""

    def __init__(self, query_id: Optional[str] = None,
                 text: Optional[str] = None) -> None:
        self.query_id = query_id or new_query_id()
        self.text = text
        self.root = Span("statement")

    @property
    def duration_s(self) -> float:
        return self.root.duration_s

    def to_dict(self) -> dict:
        return {
            "query_id": self.query_id,
            "text": self.text,
            "root": self.root.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QueryTrace":
        trace = cls(query_id=data.get("query_id"), text=data.get("text"))
        trace.root = Span.from_dict(data.get("root") or {"name": "statement"})
        return trace

    def render(self) -> str:
        return render_trace(self)


# ======================================================================================
# The active trace (thread-local)
# ======================================================================================

_ACTIVE = threading.local()


def current_trace() -> Optional[QueryTrace]:
    return getattr(_ACTIVE, "trace", None)


def current_span() -> Optional[Span]:
    stack = getattr(_ACTIVE, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def activate(trace: QueryTrace) -> Iterator[QueryTrace]:
    """Make ``trace`` the calling thread's active trace; times the root span."""
    previous_trace = getattr(_ACTIVE, "trace", None)
    previous_stack = getattr(_ACTIVE, "stack", None)
    _ACTIVE.trace = trace
    _ACTIVE.stack = [trace.root]
    start = time.perf_counter()
    try:
        yield trace
    finally:
        trace.root.duration_s = time.perf_counter() - start
        _ACTIVE.trace = previous_trace
        _ACTIVE.stack = previous_stack


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """A timed child of the current span; a cheap no-op when not tracing."""
    stack = getattr(_ACTIVE, "stack", None)
    if not stack:
        yield None
        return
    node = Span(name, **attrs)
    stack[-1].add_child(node)
    stack.append(node)
    start = time.perf_counter()
    try:
        yield node
    finally:
        node.duration_s = time.perf_counter() - start
        stack.pop()


def record_span(name: str, duration_s: float = 0.0, **attrs: Any) -> Optional[Span]:
    """Attach an already-measured span to the current span (no-op when idle)."""
    stack = getattr(_ACTIVE, "stack", None)
    if not stack:
        return None
    node = Span(name, **attrs)
    node.duration_s = duration_s
    return stack[-1].add_child(node)


def annotate(**attrs: Any) -> None:
    """Set attributes on the calling thread's current span (no-op when idle)."""
    stack = getattr(_ACTIVE, "stack", None)
    if not stack:
        return
    stack[-1].attrs.update(
        {k: v for k, v in attrs.items() if v is not None}
    )


# ======================================================================================
# Rendering
# ======================================================================================


def _format_attrs(attrs: Dict[str, Any]) -> str:
    if not attrs:
        return ""
    return "  [" + " ".join(f"{k}={attrs[k]}" for k in sorted(attrs)) + "]"


def _render_span(span_node: Span, prefix: str, is_last: bool,
                 lines: List[str]) -> None:
    connector = "└─ " if is_last else "├─ "
    lines.append(
        f"{prefix}{connector}{span_node.name}  "
        f"{span_node.duration_s * 1000:.3f}ms"
        f"{_format_attrs(span_node.attrs)}"
    )
    child_prefix = prefix + ("   " if is_last else "│  ")
    for index, child in enumerate(span_node.children):
        _render_span(child, child_prefix, index == len(span_node.children) - 1,
                     lines)


def render_trace(trace: QueryTrace) -> str:
    """The flame-style text tree of a trace (used by explain/``\\trace``)."""
    header = f"TRACE {trace.query_id}"
    if trace.text:
        text = " ".join(trace.text.split())
        if len(text) > 60:
            text = text[:57] + "..."
        header += f"  {text}"
    lines = [header]
    root = trace.root
    lines.append(
        f"└─ {root.name}  {root.duration_s * 1000:.3f}ms"
        f"{_format_attrs(root.attrs)}"
    )
    for index, child in enumerate(root.children):
        _render_span(child, "   ", index == len(root.children) - 1, lines)
    return "\n".join(lines)


def render_trace_dict(data: dict) -> str:
    """Render a serialized trace (e.g. from a wire ``done`` frame)."""
    return render_trace(QueryTrace.from_dict(data))
