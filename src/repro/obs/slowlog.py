"""Structured slow-query log.

Statements whose end-to-end latency reaches the configured threshold
(``StoreConfig.slow_query_log_s``) are recorded as JSON lines — query text,
``query_id``, duration, the full span tree, and I/O attribution — both in an
in-memory ring (``entries()``, for tests and the shell) and, when a path is
configured, appended to a JSONL file for offline analysis.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Deque, List, Optional


class SlowQueryLog:
    """Threshold filter + bounded in-memory ring + optional JSONL sink."""

    def __init__(self, threshold_s: Optional[float] = None,
                 path: Optional[str] = None, capacity: int = 128) -> None:
        self.threshold_s = threshold_s
        self.path = path
        self._lock = threading.Lock()
        self._entries: Deque[dict] = deque(maxlen=capacity)

    @property
    def enabled(self) -> bool:
        return self.threshold_s is not None

    def should_log(self, duration_s: float) -> bool:
        return self.threshold_s is not None and duration_s >= self.threshold_s

    def record(self, entry: dict) -> None:
        """Append one slow-statement record (already past the threshold)."""
        line = None
        if self.path is not None:
            line = json.dumps(entry, sort_keys=True, default=str)
        with self._lock:
            self._entries.append(entry)
            if line is not None:
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")

    def entries(self) -> List[dict]:
        with self._lock:
            return list(self._entries)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
