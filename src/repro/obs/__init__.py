"""Observability: metrics registry, per-query distributed tracing, slow-query
log.

See ``docs/OBSERVABILITY.md`` for the metric catalog, the trace schema, and
the slow-query log format.
"""

from .catalog import DURATION_BUCKETS, METRIC_CATALOG, MetricSpec
from .metrics import (
    IO_SOURCES,
    MetricsError,
    MetricsRegistry,
    current_io_source,
    io_source,
    maintenance_io,
)
from .slowlog import SlowQueryLog
from .trace import (
    QueryTrace,
    Span,
    activate,
    annotate,
    current_span,
    current_trace,
    new_query_id,
    record_span,
    render_trace,
    render_trace_dict,
    span,
)

__all__ = [
    "DURATION_BUCKETS",
    "METRIC_CATALOG",
    "MetricSpec",
    "IO_SOURCES",
    "MetricsError",
    "MetricsRegistry",
    "current_io_source",
    "io_source",
    "maintenance_io",
    "SlowQueryLog",
    "QueryTrace",
    "Span",
    "activate",
    "annotate",
    "current_span",
    "current_trace",
    "new_query_id",
    "record_span",
    "render_trace",
    "render_trace_dict",
    "span",
]
