"""The metric catalog: every metric the engine may emit, declared up front.

The registry (:mod:`repro.obs.metrics`) refuses to create an instrument whose
name, kind, or label set is not declared here, and ``tools/check_metrics.py``
lints the source tree so that every ``repro_*`` metric referenced at runtime
exists in this catalog (and vice versa).  ``docs/OBSERVABILITY.md`` carries a
human-readable rendering of the same table and is checked against it too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

#: Default histogram bucket upper bounds, in seconds (plus an implicit +Inf).
DURATION_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric family."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    help: str
    unit: str
    labels: Tuple[str, ...] = ()
    buckets: Tuple[float, ...] = field(default=DURATION_BUCKETS)


def _spec(name, kind, help_text, unit, labels=()):
    return MetricSpec(name=name, kind=kind, help=help_text, unit=unit,
                      labels=tuple(labels))


#: name -> MetricSpec for every metric the engine emits.
METRIC_CATALOG: Dict[str, MetricSpec] = {
    spec.name: spec
    for spec in (
        # -- storage device ---------------------------------------------------
        _spec("repro_io_pages_total", "counter",
              "Pages read/written on the storage device, split by whether the "
              "I/O was issued on behalf of a query or by background "
              "flush/merge maintenance.", "pages", ("op", "source")),
        _spec("repro_io_bytes_total", "counter",
              "Bytes read/written on the storage device.", "bytes",
              ("op", "source")),
        _spec("repro_wal_appends_total", "counter",
              "Records appended to the write-ahead log.", "records"),
        _spec("repro_wal_bytes_total", "counter",
              "Bytes appended to the write-ahead log (framing included).",
              "bytes"),
        _spec("repro_wal_fsyncs_total", "counter",
              "WAL appends flushed through to the OS (on-disk devices only).",
              "flushes"),
        # -- buffer cache -----------------------------------------------------
        _spec("repro_cache_requests_total", "counter",
              "Buffer-cache page requests by outcome.", "requests",
              ("result",)),
        _spec("repro_cache_evictions_total", "counter",
              "Pages evicted from the buffer cache.", "pages"),
        # -- LSM maintenance --------------------------------------------------
        _spec("repro_memtable_rotations_total", "counter",
              "Memtable rotations (mutable memtable frozen for flushing).",
              "rotations", ("dataset",)),
        _spec("repro_backpressure_stalls_total", "counter",
              "Writer stalls waiting for frozen memtables to drain "
              "(max_frozen_memtables backpressure).", "stalls", ("dataset",)),
        _spec("repro_flush_seconds", "histogram",
              "Wall-clock duration of one memtable flush to an on-disk "
              "component.", "seconds", ("dataset", "layout")),
        _spec("repro_merge_seconds", "histogram",
              "Wall-clock duration of one LSM component merge.", "seconds",
              ("dataset", "layout")),
        # -- background scheduler ---------------------------------------------
        _spec("repro_background_queue_depth", "gauge",
              "Background flush/merge tasks submitted but not yet finished.",
              "tasks"),
        _spec("repro_background_tasks_total", "counter",
              "Background scheduler task outcomes.", "tasks", ("event",)),
        # -- query layer ------------------------------------------------------
        _spec("repro_queries_total", "counter",
              "Statements executed, by executor.", "queries", ("executor",)),
        _spec("repro_query_seconds", "histogram",
              "End-to-end statement latency (parse through result "
              "materialization).", "seconds", ("executor",)),
        _spec("repro_slow_queries_total", "counter",
              "Statements that exceeded the slow-query-log threshold.",
              "queries"),
        # -- wire server ------------------------------------------------------
        _spec("repro_wire_frames_total", "counter",
              "Wire-protocol frames sent/received by the server.", "frames",
              ("direction",)),
        _spec("repro_wire_bytes_total", "counter",
              "Wire-protocol bytes sent/received by the server (header "
              "included).", "bytes", ("direction",)),
        # -- shard coordinator ------------------------------------------------
        _spec("repro_shard_requests_total", "counter",
              "Requests the coordinator fanned out, per shard.", "requests",
              ("shard",)),
        _spec("repro_shard_rows_transferred_total", "counter",
              "Rows shipped from shards to the coordinator, per shard.",
              "rows", ("shard",)),
    )
}
