"""Thread-safe metrics registry with Prometheus text exposition.

Three instrument kinds, all declared in :mod:`repro.obs.catalog` and
validated against it at creation time:

- **counters** — monotonically increasing floats,
- **gauges** — set/inc/dec, or *callback* gauges that read a live value
  (e.g. the background scheduler's queue depth) at render time,
- **histograms** — fixed-bucket distributions with ``p50``/``p99`` helpers.

A family is addressed by metric name; labeled children are obtained with
``family.labels(dataset="tweets")`` and cached, so hot paths resolve their
child once and pay a single lock-protected addition per event.  A registry
constructed with ``enabled=False`` hands out no-op instruments, which is how
``StoreConfig.observability = False`` turns the whole subsystem off.

The module also owns the *I/O source* thread-local used to attribute device
I/O: background flush/merge work runs inside ``maintenance_io()`` so its
reads and writes land under ``source="maintenance"`` and are never claimed
by a racing query (``source="query"``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from ..model.errors import ReproError
from .catalog import METRIC_CATALOG, MetricSpec


class MetricsError(ReproError):
    """A metric was used in a way its catalog declaration does not allow."""


# ======================================================================================
# I/O source attribution (query vs maintenance)
# ======================================================================================

_IO_SOURCE = threading.local()

#: Valid values of the ``source`` label on device I/O metrics.
IO_SOURCES = ("query", "maintenance")


def current_io_source() -> str:
    """The I/O attribution source for the calling thread (default: query)."""
    return getattr(_IO_SOURCE, "value", "query")


@contextmanager
def io_source(value: str) -> Iterator[None]:
    """Attribute device I/O issued by this thread to ``value`` while active."""
    previous = getattr(_IO_SOURCE, "value", "query")
    _IO_SOURCE.value = value
    try:
        yield
    finally:
        _IO_SOURCE.value = previous


def maintenance_io() -> "contextmanager":
    """Context manager attributing this thread's I/O to background maintenance."""
    return io_source("maintenance")


# ======================================================================================
# Instruments
# ======================================================================================


class _Instrument:
    """One child of a family: a (name, label values) time series."""

    __slots__ = ("_lock", "labels")

    def __init__(self, labels: Tuple[Tuple[str, str], ...]) -> None:
        self._lock = threading.Lock()
        self.labels = labels


class Counter(_Instrument):
    __slots__ = ("_value", "_fn")

    def __init__(self, labels=()):
        super().__init__(labels)
        self._value = 0.0
        self._fn: Optional[Callable[[], float]] = None

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise MetricsError("counters can only increase")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Gauge(_Instrument):
    __slots__ = ("_value", "_fn")

    def __init__(self, labels=(), fn: Optional[Callable[[], float]] = None):
        super().__init__(labels)
        self._value = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        with self._lock:
            return self._value


class Histogram(_Instrument):
    __slots__ = ("buckets", "bucket_counts", "_sum", "_count")

    def __init__(self, labels=(), buckets: Tuple[float, ...] = ()):
        super().__init__(labels)
        self.buckets = tuple(buckets)
        self.bucket_counts = [0] * (len(self.buckets) + 1)  # trailing +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self.bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, q: float) -> float:
        """Approximate quantile from bucket boundaries (upper bound of the
        bucket containing the q-th observation; 0.0 when empty)."""
        with self._lock:
            total = self._count
            counts = list(self.bucket_counts)
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            cumulative += count
            if cumulative >= rank and count:
                if i < len(self.buckets):
                    return self.buckets[i]
                return float("inf")
        return float("inf")

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class _Noop:
    """Instrument and family stand-in handed out by a disabled registry."""

    __slots__ = ()
    value = 0.0
    count = 0
    sum = 0.0
    p50 = 0.0
    p99 = 0.0

    def labels(self, **_labels) -> "_Noop":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0


_NOOP = _Noop()


# ======================================================================================
# Families
# ======================================================================================


class Family:
    """All children of one metric name; also acts as the child when unlabeled."""

    def __init__(self, spec: MetricSpec) -> None:
        self.spec = spec
        self._lock = threading.Lock()
        self._children: Dict[Tuple[str, ...], _Instrument] = {}
        if not spec.labels:
            self._children[()] = self._make(())

    def _make(self, label_items: Tuple[Tuple[str, str], ...]) -> _Instrument:
        if self.spec.kind == "counter":
            return Counter(label_items)
        if self.spec.kind == "gauge":
            return Gauge(label_items)
        return Histogram(label_items, buckets=self.spec.buckets)

    def labels(self, **labels: str) -> _Instrument:
        if tuple(sorted(labels)) != tuple(sorted(self.spec.labels)):
            raise MetricsError(
                f"metric {self.spec.name!r} takes labels "
                f"{sorted(self.spec.labels)}, got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.spec.labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                items = tuple(zip(self.spec.labels, key))
                child = self._make(items)
                self._children[key] = child
            return child

    def _unlabeled(self) -> _Instrument:
        if self.spec.labels:
            raise MetricsError(
                f"metric {self.spec.name!r} requires labels "
                f"{sorted(self.spec.labels)}"
            )
        return self._children[()]

    # Unlabeled convenience: the family forwards to its single child.
    def inc(self, amount: float = 1.0) -> None:
        self._unlabeled().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._unlabeled().dec(amount)

    def set(self, value: float) -> None:
        self._unlabeled().set(value)

    def observe(self, value: float) -> None:
        self._unlabeled().observe(value)

    @property
    def value(self) -> float:
        return self._unlabeled().value

    def children(self) -> List[_Instrument]:
        with self._lock:
            return [self._children[key] for key in sorted(self._children)]


# ======================================================================================
# Registry
# ======================================================================================


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, bool):
        return str(int(value))
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(items: Tuple[Tuple[str, str], ...]) -> str:
    if not items:
        return ""
    escaped = ",".join(
        '%s="%s"' % (k, v.replace("\\", "\\\\").replace('"', '\\"'))
        for k, v in items
    )
    return "{%s}" % escaped


class MetricsRegistry:
    """Owns every metric family of one engine instance."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._families: Dict[str, Family] = {}

    # -- instrument creation ---------------------------------------------------
    def _family(self, name: str, kind: str):
        if not self.enabled:
            return _NOOP
        spec = METRIC_CATALOG.get(name)
        if spec is None:
            raise MetricsError(
                f"metric {name!r} is not declared in repro.obs.catalog"
            )
        if spec.kind != kind:
            raise MetricsError(
                f"metric {name!r} is declared as a {spec.kind}, not a {kind}"
            )
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = Family(spec)
                self._families[name] = family
            return family

    def counter(self, name: str) -> Family:
        return self._family(name, "counter")

    def gauge(self, name: str) -> Family:
        return self._family(name, "gauge")

    def histogram(self, name: str) -> Family:
        return self._family(name, "histogram")

    def register_callback(self, name: str, fn: Callable[[], float],
                          **labels: str) -> None:
        """A counter/gauge whose value is read from ``fn`` at render time —
        used to absorb pre-existing live counters (e.g. the background
        scheduler's queue depth and task totals) without touching their
        increment sites."""
        if not self.enabled:
            return
        spec = METRIC_CATALOG.get(name)
        if spec is None:
            raise MetricsError(
                f"metric {name!r} is not declared in repro.obs.catalog"
            )
        if spec.kind == "histogram":
            raise MetricsError("histograms cannot be callback-backed")
        family = self._family(name, spec.kind)
        if labels:
            child = family.labels(**labels)
        else:
            child = family._unlabeled()
        child._fn = fn

    # -- reading ---------------------------------------------------------------
    def get_value(self, name: str, **labels: str) -> float:
        """Current value of a counter/gauge child (0.0 if never emitted)."""
        if not self.enabled:
            return 0.0
        with self._lock:
            family = self._families.get(name)
        if family is None:
            return 0.0
        try:
            child = family.labels(**labels) if labels else family._unlabeled()
        except MetricsError:
            return 0.0
        return child.value

    def family_names(self) -> List[str]:
        with self._lock:
            return sorted(self._families)

    # -- Prometheus text exposition ---------------------------------------------
    def render_text(self) -> str:
        """The registry in Prometheus text exposition format (version 0.0.4)."""
        if not self.enabled:
            return "# observability disabled\n"
        with self._lock:
            families = [self._families[name] for name in sorted(self._families)]
        lines: List[str] = []
        for family in families:
            spec = family.spec
            lines.append(f"# HELP {spec.name} {spec.help}")
            lines.append(f"# TYPE {spec.name} {spec.kind}")
            for child in family.children():
                if isinstance(child, Histogram):
                    with child._lock:
                        counts = list(child.bucket_counts)
                        total = child._count
                        value_sum = child._sum
                    cumulative = 0
                    for bound, count in zip(
                        tuple(child.buckets) + (float("inf"),), counts
                    ):
                        cumulative += count
                        items = child.labels + (("le", _format_value(bound)),)
                        lines.append(
                            f"{spec.name}_bucket{_format_labels(items)} "
                            f"{cumulative}"
                        )
                    label_text = _format_labels(child.labels)
                    lines.append(
                        f"{spec.name}_sum{label_text} {_format_value(value_sum)}"
                    )
                    lines.append(f"{spec.name}_count{label_text} {total}")
                else:
                    lines.append(
                        f"{spec.name}{_format_labels(child.labels)} "
                        f"{_format_value(child.value)}"
                    )
        return "\n".join(lines) + "\n"
