"""Dataset and datastore manifests: the durable catalog of the storage engine.

A *manifest* records which immutable artifacts are live — exactly the state
that cannot be rediscovered from the artifacts themselves:

* the **datastore root manifest** (``datastore.json``) holds the store
  configuration and the list of datasets;
* one **dataset manifest** (``<name>.manifest.json``) per dataset holds, for
  every partition, the live component stack (newest first), the inferred
  schema snapshot, the field-name dictionary, the component-name counter, and
  the *durable LSN* (the newest logged operation already captured by a disk
  component), plus the spilled runs of every secondary index.

Manifests are rewritten atomically (temp file + ``os.replace``) after every
flush, merge, spill, or catalog change, so a crash leaves either the old or
the new manifest — never a torn one.  Artifacts a crash orphans (a component
flushed but whose manifest write never happened) are simply never referenced
again and get overwritten by name on the next incarnation.

Recovery (:meth:`repro.store.datastore.Datastore.open`) inverts the
manifests: it reopens every referenced component file, rebuilds the
component objects from their footers, restores the indexes from their runs,
and then replays the WAL tail (records above each partition's durable LSN)
through the normal ingestion path to rebuild the memtables and index
buffers.
"""

from __future__ import annotations

import json
import os
from typing import Optional
from urllib.parse import quote

from ..index import PrimaryKeyIndex, SecondaryIndex
from ..lsm.component import load_component
from ..lsm.keys import KEY_HASH_SCHEME
from ..model.errors import StorageError
from ..rowformats.vector_format import FieldNameDictionary
from ..core.schema import Schema

#: File name of the datastore root manifest inside the storage directory.
DATASTORE_MANIFEST = "datastore.json"

DATASET_MANIFEST_FORMAT = "repro-dataset-manifest-v1"
DATASTORE_MANIFEST_FORMAT = "repro-datastore-manifest-v1"


def write_json_atomic(path: str, payload: dict) -> None:
    """Write a JSON file so readers see either the old or the new content."""
    temp_path = f"{path}.tmp"
    with open(temp_path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, default=str)
        handle.flush()
    os.replace(temp_path, path)


def read_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def dataset_manifest_filename(dataset_name: str) -> str:
    return quote(dataset_name, safe="") + ".manifest.json"


# ======================================================================================
# Dataset manifests
# ======================================================================================


def build_dataset_manifest(dataset) -> dict:
    """Snapshot a dataset's durable state (see the module docstring).

    Each partition's state comes from :meth:`~repro.lsm.lsm_tree.LSMTree.
    durable_state`, which reads the component stack, counters, durable LSN,
    and the last-completed-flush schema snapshot together under the tree's
    lock — so a manifest written while background flushes and merges are in
    flight always describes a component stack that actually existed.
    """
    partitions = [tree.durable_state() for tree in dataset.partitions]
    watermark = max(
        (state["last_logged_lsn"] for state in partitions), default=0
    )
    for state in partitions:
        del state["last_logged_lsn"]  # derived, not part of the manifest format
    return {
        "format": DATASET_MANIFEST_FORMAT,
        "name": dataset.name,
        "layout": dataset.layout,
        "primary_key_field": dataset.primary_key_field,
        "key_hash": KEY_HASH_SCHEME,
        "num_partitions": len(dataset.partitions),
        "created_lsn": dataset.created_lsn,
        "records_ingested": dataset.records_ingested,
        # The counter above covers every operation up to this LSN; replay
        # re-counts only records beyond it (avoids double counting the
        # unflushed tail, which is both in the counter and in the WAL).
        # Caveat: the counter and the watermark are read without a common
        # lock, so a manifest written by a background flush concurrent with
        # ingestion may pair them a few operations apart — after a crash in
        # exactly that window the recovered *statistic* can be off by those
        # few operations.  Record data is unaffected (replay is driven by
        # per-partition durable LSNs, not by this pair); quiesced writers
        # (checkpoint/close, the synchronous engine) always persist an exact
        # pair.
        "records_ingested_watermark": watermark,
        "partitions": partitions,
        "secondary_indexes": {
            name: index.manifest_state()
            for name, index in dataset.secondary_indexes.items()
        },
        "primary_key_index": (
            None
            if dataset.primary_key_index is None
            else dataset.primary_key_index.manifest_state()
        ),
    }


def restore_dataset(
    manifest: dict,
    config,
    device,
    buffer_cache,
    log_manager,
    manifest_path: Optional[str],
    scheduler=None,
):
    """Rebuild a :class:`~repro.store.dataset.Dataset` from its manifest.

    Components are reopened from disk and reconstructed from their footers;
    the returned dataset has empty memtables and index buffers — the caller
    (``Datastore.open``) replays the WAL tail afterwards.
    """
    # Imported here: dataset.py imports nothing from this module at runtime,
    # but a top-level import would still be a cycle through store/__init__.
    from .dataset import Dataset

    if manifest.get("format") != DATASET_MANIFEST_FORMAT:
        raise StorageError(
            f"unsupported dataset manifest format {manifest.get('format')!r}"
        )
    if manifest["key_hash"] != KEY_HASH_SCHEME:
        raise StorageError(
            f"dataset {manifest['name']!r} was partitioned with hash scheme "
            f"{manifest['key_hash']!r}; this build routes with {KEY_HASH_SCHEME!r}"
        )
    if manifest["num_partitions"] != config.total_partitions:
        raise StorageError(
            f"dataset {manifest['name']!r} has {manifest['num_partitions']} "
            f"partitions on disk but the configuration asks for "
            f"{config.total_partitions}"
        )
    dataset = Dataset(
        name=manifest["name"],
        layout=manifest["layout"],
        config=config,
        device=device,
        buffer_cache=buffer_cache,
        log_manager=log_manager,
        primary_key_field=manifest["primary_key_field"],
        manifest_path=manifest_path,
        created_lsn=manifest.get("created_lsn", 0),
        scheduler=scheduler,
    )
    dataset.records_ingested = manifest.get("records_ingested", 0)
    dataset.ingest_watermark_lsn = manifest.get("records_ingested_watermark", 0)
    for state in manifest["partitions"]:
        tree = dataset.partitions[state["partition_id"]]
        tree.schema = Schema.from_dict(state["schema"])
        tree.field_dictionary = FieldNameDictionary.from_dict(state["field_names"])
        components = [
            load_component(device.open_file(name), buffer_cache)
            for name in state["components"]
        ]
        tree.restore_state(
            components,
            component_counter=state["component_counter"],
            flush_count=state["flush_count"],
            merge_count=state["merge_count"],
            durable_lsn=state["durable_lsn"],
        )
    for name, state in manifest["secondary_indexes"].items():
        dataset.secondary_indexes[name] = SecondaryIndex.restore(state, device)
    if manifest["primary_key_index"] is not None:
        dataset.primary_key_index = PrimaryKeyIndex.restore(
            manifest["primary_key_index"], device
        )
    return dataset


# ======================================================================================
# Datastore root manifest
# ======================================================================================


def build_datastore_manifest(config, dataset_names) -> dict:
    return {
        "format": DATASTORE_MANIFEST_FORMAT,
        "config": config.to_dict(),
        "datasets": sorted(dataset_names),
    }


def read_datastore_manifest(directory: str) -> dict:
    path = os.path.join(directory, DATASTORE_MANIFEST)
    if not os.path.exists(path):
        raise StorageError(
            f"no datastore manifest at {path!r}: nothing to open"
        )
    manifest = read_json(path)
    if manifest.get("format") != DATASTORE_MANIFEST_FORMAT:
        raise StorageError(
            f"unsupported datastore manifest format {manifest.get('format')!r}"
        )
    return manifest
