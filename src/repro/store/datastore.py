"""The datastore façade: nodes, partitions, buffer cache, datasets, recovery.

A :class:`Datastore` plays the role of a (single-process) AsterixDB cluster:
it owns the storage device, the per-node buffer caches and transaction logs,
and the datasets created on top of them.  The query engine
(:mod:`repro.query`) executes against a datastore.

With ``StoreConfig.storage_directory`` set the store is *durable*: every
page and WAL record is written through to the directory, dataset manifests
track the live component stacks, and :meth:`Datastore.open` rebuilds the
whole store after a clean :meth:`close` **or** a crash — manifests restore
the on-disk state, then the WAL tail is replayed into the memtables (see
:mod:`repro.store.manifest` and ``docs/DURABILITY.md``).
"""

from __future__ import annotations

import itertools
import os
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterator, Optional

from ..lsm.scheduler import BackgroundScheduler
from ..lsm.wal import AUTO_COMMIT, CommitRecord, LogManager
from ..model.errors import DatasetError
from ..obs import (
    MetricsRegistry,
    QueryTrace,
    SlowQueryLog,
    activate,
    current_trace,
    render_trace,
)
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from ..storage.stats import DiskModel, IOStats
from . import manifest as manifest_io
from .config import StoreConfig
from .dataset import Dataset
from .txn import CommitTable, Transaction

#: Environment variable: when set (to a directory), in-memory datastores are
#: transparently given a fresh tmpdir-backed ``storage_directory`` under it.
#: This is how CI runs the whole test suite against on-disk storage.
STORAGE_ROOT_ENV = "REPRO_STORAGE_ROOT"


@dataclass
class RecoveryInfo:
    """What :meth:`Datastore.open` found and did."""

    datasets_recovered: int = 0
    components_loaded: int = 0
    wal_records_seen: int = 0
    wal_records_replayed: int = 0
    wal_records_skipped_durable: int = 0
    wal_records_skipped_unknown: int = 0
    #: Transaction commit records found in the log tail.
    wal_commit_records: int = 0
    #: Transactional write records dropped because their transaction's
    #: commit record never made it to disk (all-or-nothing replay).
    wal_records_skipped_uncommitted: int = 0


class Datastore:
    """A single-process document store with pluggable component layouts."""

    def __init__(self, config: Optional[StoreConfig] = None) -> None:
        config = config or StoreConfig()
        storage_root = os.environ.get(STORAGE_ROOT_ENV)
        if config.storage_directory is None and storage_root:
            config = replace(
                config,
                storage_directory=tempfile.mkdtemp(prefix="store-", dir=storage_root),
            )
        self.config = config
        self.config.validate()
        #: Engine-wide metrics registry (see docs/OBSERVABILITY.md); disabled
        #: instruments are no-ops when ``config.observability`` is off.
        self.metrics = MetricsRegistry(enabled=self.config.observability)
        disk_model = DiskModel(wall_clock=self.config.simulate_device_latency)
        if self.config.device_latency_s is not None:
            disk_model.per_operation_latency_s = self.config.device_latency_s
        self.device = StorageDevice(
            page_size=self.config.page_size,
            directory=self.config.storage_directory,
            disk_model=disk_model,
            metrics=self.metrics,
        )
        self.buffer_cache = BufferCache(capacity_pages=self.config.buffer_cache_pages)
        if self.config.observability:
            self.buffer_cache._eviction_counter = self.metrics.counter(
                "repro_cache_evictions_total"
            )._unlabeled()
        #: Background flush/merge pool shared by every dataset; None keeps
        #: the engine fully synchronous (the default).
        self.scheduler: Optional[BackgroundScheduler] = None
        if self.config.background_workers > 0:
            self.scheduler = BackgroundScheduler(
                workers=self.config.background_workers,
                queue_capacity=self.config.flush_queue_capacity,
            )
        if self.config.observability and self.scheduler is not None:
            # Absorb the scheduler's live counters without touching its hot
            # paths: the registry reads them through callbacks at render time.
            scheduler = self.scheduler
            self.metrics.register_callback(
                "repro_background_queue_depth", lambda: scheduler.in_flight
            )
            for event in ("submitted", "completed", "deduplicated",
                          "rejected", "failed"):
                self.metrics.register_callback(
                    "repro_background_tasks_total",
                    (lambda attr: lambda: getattr(scheduler, attr))(
                        f"tasks_{event}"
                    ),
                    event=event,
                )
        #: Thread pool for parallel multi-partition scans (None = sequential).
        self.scan_executor: Optional[ThreadPoolExecutor] = None
        if self.config.parallel_scan_workers > 0:
            self.scan_executor = ThreadPoolExecutor(
                max_workers=self.config.parallel_scan_workers,
                thread_name_prefix="scan-worker",
            )
        self.log_manager = LogManager(
            num_nodes=self.config.num_nodes,
            partitions_per_node=self.config.partitions_per_node,
            device=self.device if self.is_durable else None,
        )
        self.datasets: Dict[str, Dataset] = {}
        #: Last committed sequence per (dataset, key): what transaction
        #: commits validate first-write-wins against (see repro.store.txn).
        self.commits = CommitTable()
        #: Serializes transaction commits, and synchronizes begin() with
        #: them: a snapshot is pinned either before a commit's first apply or
        #: after its last, never in between.  Auto-committed single-document
        #: writes take it too (apply + commit-table stamp as one step), so a
        #: write can never land inside a commit's validate→apply window and
        #: be silently overwritten.  Outermost in the lock order
        #: (commit lock > per-key stripe locks > tree locks).
        self._commit_lock = threading.RLock()
        self._txn_handles = itertools.count(1)
        #: Populated by :meth:`open`; None for a freshly created store.
        self.last_recovery: Optional[RecoveryInfo] = None
        #: Structured slow-query log (see docs/OBSERVABILITY.md).
        self.slow_log = SlowQueryLog(
            threshold_s=self.config.slow_query_log_s,
            path=self.config.slow_query_log_path,
        )
        #: Span tree of the most recent traced statement (QueryTrace or None).
        self.last_trace: Optional[QueryTrace] = None
        if self.is_durable and not os.path.exists(self._root_manifest_path()):
            self._persist_root_manifest()

    # -- durability --------------------------------------------------------------------
    @property
    def is_durable(self) -> bool:
        return self.config.storage_directory is not None

    def _root_manifest_path(self) -> str:
        return os.path.join(
            self.config.storage_directory, manifest_io.DATASTORE_MANIFEST
        )

    def _dataset_manifest_path(self, name: str) -> Optional[str]:
        if not self.is_durable:
            return None
        return os.path.join(
            self.config.storage_directory,
            manifest_io.dataset_manifest_filename(name),
        )

    def _persist_root_manifest(self) -> None:
        if not self.is_durable:
            return
        manifest_io.write_json_atomic(
            self._root_manifest_path(),
            manifest_io.build_datastore_manifest(self.config, self.datasets),
        )

    @classmethod
    def open(cls, directory: str) -> "Datastore":
        """Reopen a durable datastore from its directory (crash-safe).

        Sequence: read the root manifest (configuration + dataset list),
        rebuild every dataset from its manifest (component files are reopened
        and verified against their page checksums and footers), then replay
        the WAL tail — every record whose LSN exceeds its partition's durable
        LSN — through the normal index-maintenance and memtable path.
        """
        root = manifest_io.read_datastore_manifest(directory)
        config = StoreConfig.from_dict(root["config"])
        config.storage_directory = directory
        store = cls(config)
        info = RecoveryInfo()
        for name in root["datasets"]:
            manifest_path = store._dataset_manifest_path(name)
            dataset = manifest_io.restore_dataset(
                manifest_io.read_json(manifest_path),
                store.config,
                store.device,
                store.buffer_cache,
                store.log_manager,
                manifest_path,
                scheduler=store.scheduler,
            )
            dataset.commit_table = store.commits
            dataset.commit_lock = store._commit_lock
            store.datasets[name] = dataset
            info.datasets_recovered += 1
            info.components_loaded += dataset.num_components()
        durable_floor = 1
        for dataset in store.datasets.values():
            for tree in dataset.partitions:
                durable_floor = max(durable_floor, tree.durable_lsn + 1)
        records = store.log_manager.iter_records()
        # Pass 1: which multi-statement transactions actually committed?  A
        # write record tagged with a transaction id is applied only when its
        # commit record survived the crash — all-or-nothing replay.
        committed_txns = {
            record.txn_id for record in records if isinstance(record, CommitRecord)
        }
        for record in records:
            info.wal_records_seen += 1
            if isinstance(record, CommitRecord):
                info.wal_commit_records += 1
                continue
            if record.txn_id != AUTO_COMMIT and record.txn_id not in committed_txns:
                info.wal_records_skipped_uncommitted += 1
                continue
            dataset = store.datasets.get(record.dataset)
            if (
                dataset is None
                or record.partition_id >= len(dataset.partitions)
                or record.lsn < dataset.created_lsn
            ):
                # A dropped (or dropped-and-recreated) dataset's old records.
                info.wal_records_skipped_unknown += 1
                continue
            tree = dataset.partitions[record.partition_id]
            if record.lsn <= tree.durable_lsn:
                # Already captured by a flushed component; only the tail
                # beyond the checkpoint is re-applied.
                info.wal_records_skipped_durable += 1
                continue
            dataset.apply_wal_record(record)
            info.wal_records_replayed += 1
        store.log_manager.advance_lsn(durable_floor)
        store.last_recovery = info
        return store

    def checkpoint(self) -> None:
        """Flush everything, persist the manifests, and truncate the WAL.

        After a checkpoint every logged operation lives in a disk component
        (memtables are empty), so the log carries no information the
        manifests do not — it is safe to drop, and recovery after a
        subsequent crash replays only operations logged after this point.
        Requires quiesced writers (as before the concurrency subsystem);
        in-flight background flushes and merges are drained first, and any
        exception raised on a worker resurfaces here.
        """
        self.drain_background()
        for dataset in self.datasets.values():
            dataset.flush_all()
        self._persist_root_manifest()
        self.log_manager.truncate()

    def drain_background(self) -> None:
        """Wait for every queued/running background flush and merge."""
        if self.scheduler is not None:
            self.scheduler.drain()

    def kill_background(self) -> None:
        """Crash-test hook: abandon background work like a dying process.

        Queued flushes/merges never run, workers stop, and parallel-scan
        threads are shut down without waiting — afterwards the process-level
        objects can be dropped and the directory reopened with
        :meth:`open`, which replays the WAL tail exactly as after a real
        crash with in-flight background work.
        """
        if self.scheduler is not None:
            self.scheduler.kill()
        if self.scan_executor is not None:
            self.scan_executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Checkpoint (when durable), stop the pools, release file handles.

        A closed store reopens via :meth:`open` with empty logs; a killed
        one reopens the same way, paying WAL replay for the tail instead.
        The pools and file handles are torn down even when the checkpoint
        (or a background task error it surfaces) raises — the first error
        still propagates to the caller.
        """
        try:
            if self.is_durable:
                self.checkpoint()
        finally:
            try:
                if self.scheduler is not None:
                    self.scheduler.shutdown(wait=True)
            finally:
                if self.scan_executor is not None:
                    self.scan_executor.shutdown(wait=True)
                self.device.close()

    def __enter__(self) -> "Datastore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- transactions ------------------------------------------------------------------
    def begin(self) -> Transaction:
        """Start a multi-statement transaction (snapshot reads, atomic commit).

        Pins every dataset's snapshot and reads the commit sequence under the
        commit lock, so the transaction's view is one commit-consistent point
        in time: it can never straddle another transaction's apply step, and
        every commit it missed is guaranteed to fail its first-write-wins
        validation.  See :class:`repro.store.txn.Transaction` and
        ``docs/ARCHITECTURE.md``.
        """
        with self._commit_lock:
            txn = Transaction(self, next(self._txn_handles), self.commits.current_seq())
            for name, dataset in self.datasets.items():
                txn._pin_dataset(name, dataset)
        return txn

    # -- dataset management ------------------------------------------------------------
    def create_dataset(
        self,
        name: str,
        layout: str = "amax",
        primary_key_field: Optional[str] = None,
    ) -> Dataset:
        """Create a dataset stored under the given layout (open/vector/apax/amax)."""
        if name in self.datasets:
            raise DatasetError(f"dataset {name!r} already exists")
        dataset = Dataset(
            name=name,
            layout=layout,
            config=self.config,
            device=self.device,
            buffer_cache=self.buffer_cache,
            log_manager=self.log_manager,
            primary_key_field=primary_key_field,
            manifest_path=self._dataset_manifest_path(name),
            created_lsn=self.log_manager.next_lsn,
            scheduler=self.scheduler,
        )
        dataset.commit_table = self.commits
        dataset.commit_lock = self._commit_lock
        self.datasets[name] = dataset
        dataset.persist_manifest()
        self._persist_root_manifest()
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError as exc:
            raise DatasetError(f"unknown dataset {name!r}") from exc

    def drop_dataset(self, name: str) -> None:
        dataset = self.datasets.pop(name, None)
        if dataset is None:
            return
        # A background flush/merge of this dataset racing the file deletions
        # below would rebuild or resurrect components; let it finish first.
        self.drain_background()
        # Unlist the dataset durably first: after this write a crash only
        # orphans its files.  Deleting files before the root manifest stopped
        # referencing the dataset would make the next open() fail.
        self._persist_root_manifest()
        if dataset.manifest_path is not None and os.path.exists(dataset.manifest_path):
            os.remove(dataset.manifest_path)
        for partition in dataset.partitions:
            for component in partition.components:
                component.destroy()
        for index in dataset.secondary_indexes.values():
            index.destroy()
        if dataset.primary_key_index is not None:
            dataset.primary_key_index.destroy()

    # -- observability -------------------------------------------------------------------
    @contextmanager
    def traced_statement(
        self,
        text: str,
        executor: str = "codegen",
        query_id: Optional[str] = None,
    ) -> Iterator[Optional[QueryTrace]]:
        """Trace one statement: activates a fresh :class:`QueryTrace` on the
        calling thread, then records latency/IO metrics, the slow-query log,
        and ``self.last_trace`` when the statement finishes.

        Yields None (and does nothing) when observability is off; re-yields
        the already-active trace when called reentrantly, so nested execution
        layers never double-count a statement.
        """
        if not self.config.observability:
            yield None
            return
        existing = current_trace()
        if existing is not None:
            yield existing
            return
        trace = QueryTrace(query_id=query_id, text=text)
        pages_read_before = self.metrics.get_value(
            "repro_io_pages_total", op="read", source="query"
        )
        pages_written_before = self.metrics.get_value(
            "repro_io_pages_total", op="write", source="query"
        )
        try:
            with activate(trace):
                yield trace
        finally:
            duration = trace.root.duration_s
            io_attribution = {
                "pages_read": int(
                    self.metrics.get_value(
                        "repro_io_pages_total", op="read", source="query"
                    ) - pages_read_before
                ),
                "pages_written": int(
                    self.metrics.get_value(
                        "repro_io_pages_total", op="write", source="query"
                    ) - pages_written_before
                ),
            }
            trace.root.attrs.setdefault("executor", executor)
            trace.root.attrs["io"] = io_attribution
            self.metrics.counter("repro_queries_total").labels(
                executor=executor
            ).inc()
            self.metrics.histogram("repro_query_seconds").labels(
                executor=executor
            ).observe(duration)
            if self.slow_log.should_log(duration):
                self.metrics.counter("repro_slow_queries_total").inc()
                self.slow_log.record({
                    "query_id": trace.query_id,
                    "text": text,
                    "duration_s": round(duration, 6),
                    "executor": executor,
                    "io": io_attribution,
                    "trace": trace.root.to_dict(),
                })
            self.last_trace = trace

    def metrics_text(self) -> str:
        """The metrics registry in Prometheus text exposition format."""
        return self.metrics.render_text()

    # -- SQL++ ---------------------------------------------------------------------------
    def query(
        self,
        text: str,
        executor: str = "codegen",
        pushdown: bool = True,
        optimize: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> list:
        """Run a SQL++ statement against this store and return its rows.

        The text is parsed, bound, and lowered onto the same plan nodes the
        fluent :class:`~repro.query.plan.Query` builder produces, so the
        cost-based optimizer, scan pushdown, and both executors apply
        unchanged (see :mod:`repro.sqlpp` and ``docs/QUERY_LANGUAGE.md``).

        Args:
            text: One SQL++ SELECT statement (a trailing ``;`` is optional).
            executor: ``"codegen"`` (default, fused column batches),
                ``"batch"`` (vectorized, unfused), or ``"interpreted"``
                (row-at-a-time oracle).
            pushdown: Disable to keep the assemble-then-filter baseline.
            optimize: Skip/force cost-based access-path selection
                (default: follows ``pushdown``).
            batch_size: Rows per column batch for the batch executors.

        Returns:
            Result rows as dicts — or bare values for ``SELECT VALUE``.

        Example:
            >>> from repro.store import Datastore, StoreConfig
            >>> store = Datastore(StoreConfig(partitions_per_node=1))
            >>> d = store.create_dataset("d", layout="amax")
            >>> _ = d.insert_many([{"id": 1, "a": 2}, {"id": 2, "a": 5}])
            >>> store.query("SELECT COUNT(*) FROM d AS t WHERE t.a > 3;")
            [{'count': 1}]
        """
        from ..sqlpp import compile_query

        with self.traced_statement(text, executor=executor):
            return compile_query(text).execute(
                self,
                executor=executor,
                pushdown=pushdown,
                optimize=optimize,
                batch_size=batch_size,
            )

    def explain(
        self,
        text: str,
        pushdown: bool = True,
        analyze: bool = False,
        executor: str = "codegen",
    ) -> str:
        """Explain a SQL++ statement: plan, chosen access path, alternatives.

        Args:
            text: One SQL++ SELECT statement.
            pushdown: Attach the scan-pushdown spec before explaining.
            analyze: Also execute every candidate access path and report
                estimated vs. actual row counts.
            executor: Which executor the final EXECUTOR line describes
                (``"codegen"``, ``"batch"``, or ``"interpreted"``).

        Returns:
            A multi-line plan rendering (see :meth:`repro.query.plan.Query.explain`).
        """
        from ..sqlpp import compile_query

        if analyze and self.config.observability:
            # Render the plan (with candidate-path probing) untraced, then
            # run the statement through the real executor so the appended
            # span tree shows one clean execution — every operator exactly
            # once, with actual row counts.
            rendering = compile_query(text).explain(
                self, pushdown=pushdown, analyze=True, executor=executor
            )
            self.query(text, executor=executor, pushdown=pushdown)
            if self.last_trace is not None:
                rendering += "\n\nANALYZE TRACE:\n" + render_trace(
                    self.last_trace
                )
            return rendering
        return compile_query(text).explain(
            self, pushdown=pushdown, analyze=analyze, executor=executor
        )

    # -- statistics ----------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    def io_snapshot(self) -> IOStats:
        return self.device.stats.snapshot()

    def total_storage_bytes(self) -> int:
        return sum(dataset.storage_size_bytes() for dataset in self.datasets.values())
