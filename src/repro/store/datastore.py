"""The datastore façade: nodes, partitions, buffer cache, datasets.

A :class:`Datastore` plays the role of a (single-process) AsterixDB cluster:
it owns the storage device, the per-node buffer caches and transaction logs,
and the datasets created on top of them.  The query engine
(:mod:`repro.query`) executes against a datastore.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..lsm.wal import LogManager
from ..model.errors import DatasetError
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from ..storage.stats import IOStats
from .config import StoreConfig
from .dataset import Dataset


class Datastore:
    """A single-process document store with pluggable component layouts."""

    def __init__(self, config: Optional[StoreConfig] = None) -> None:
        self.config = config or StoreConfig()
        self.config.validate()
        self.device = StorageDevice(
            page_size=self.config.page_size,
            directory=self.config.storage_directory,
        )
        self.buffer_cache = BufferCache(capacity_pages=self.config.buffer_cache_pages)
        self.log_manager = LogManager(
            num_nodes=self.config.num_nodes,
            partitions_per_node=self.config.partitions_per_node,
        )
        self.datasets: Dict[str, Dataset] = {}

    # -- dataset management ------------------------------------------------------------
    def create_dataset(
        self,
        name: str,
        layout: str = "amax",
        primary_key_field: Optional[str] = None,
    ) -> Dataset:
        """Create a dataset stored under the given layout (open/vector/apax/amax)."""
        if name in self.datasets:
            raise DatasetError(f"dataset {name!r} already exists")
        dataset = Dataset(
            name=name,
            layout=layout,
            config=self.config,
            device=self.device,
            buffer_cache=self.buffer_cache,
            log_manager=self.log_manager,
            primary_key_field=primary_key_field,
        )
        self.datasets[name] = dataset
        return dataset

    def dataset(self, name: str) -> Dataset:
        try:
            return self.datasets[name]
        except KeyError as exc:
            raise DatasetError(f"unknown dataset {name!r}") from exc

    def drop_dataset(self, name: str) -> None:
        dataset = self.datasets.pop(name, None)
        if dataset is None:
            return
        for partition in dataset.partitions:
            for component in partition.components:
                component.destroy()
        for index in dataset.secondary_indexes.values():
            index.destroy()
        if dataset.primary_key_index is not None:
            dataset.primary_key_index.destroy()

    # -- statistics ----------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self.device.stats

    def io_snapshot(self) -> IOStats:
        return self.device.stats.snapshot()

    def total_storage_bytes(self) -> int:
        return sum(dataset.storage_size_bytes() for dataset in self.datasets.values())
