"""The datastore façade: configuration, datasets, transactions, and the store."""

from .config import StoreConfig
from .dataset import Dataset
from .datastore import Datastore
from .txn import CommitTable, Transaction

__all__ = ["CommitTable", "Dataset", "Datastore", "StoreConfig", "Transaction"]
