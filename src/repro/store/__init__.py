"""The datastore façade: configuration, datasets, and the store itself."""

from .config import StoreConfig
from .dataset import Dataset
from .datastore import Datastore

__all__ = ["Dataset", "Datastore", "StoreConfig"]
