"""Datasets: hash-partitioned collections backed by per-partition LSM trees.

A dataset owns one primary LSM index per data partition (records are
hash-partitioned by primary key, §2.1.1), an optional primary-key index, and
any number of secondary indexes.  The dataset is the unit queried by the query
engine and measured by the benchmarks (storage size, ingestion time, scans).
"""

from __future__ import annotations

import itertools
import threading
from concurrent.futures import as_completed
from contextlib import contextmanager, nullcontext
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.schema import Schema
from ..index import PrimaryKeyIndex, SecondaryIndex
from ..lsm import LSMTree, MergeScheduler, TieringMergePolicy
from ..lsm.component import ALL_LAYOUTS
from ..lsm.keys import stable_key_hash
from ..lsm.scheduler import BackgroundScheduler
from ..lsm.wal import LogManager, WALRecord
from ..model.errors import DatasetError, StorageError
from ..storage.buffer_cache import BufferCache
from ..storage.device import StorageDevice
from . import manifest as manifest_io
from .config import StoreConfig


class Dataset:
    """A named collection of documents stored under one layout."""

    def __init__(
        self,
        name: str,
        layout: str,
        config: StoreConfig,
        device: StorageDevice,
        buffer_cache: BufferCache,
        log_manager: Optional[LogManager] = None,
        primary_key_field: Optional[str] = None,
        manifest_path: Optional[str] = None,
        created_lsn: int = 0,
        scheduler: Optional[BackgroundScheduler] = None,
    ) -> None:
        if layout not in ALL_LAYOUTS:
            raise DatasetError(
                f"unknown layout {layout!r}; expected one of {ALL_LAYOUTS}"
            )
        self.name = name
        self.layout = layout
        self.config = config
        self.device = device
        self.buffer_cache = buffer_cache
        self.primary_key_field = primary_key_field or config.primary_key_field
        self.log_manager = log_manager
        #: Where this dataset's manifest lives (None = transient dataset).
        self.manifest_path = manifest_path
        #: Global LSN at creation time; WAL records below it belong to an
        #: earlier, dropped incarnation of a same-named dataset.
        self.created_lsn = created_lsn
        #: Shared background flush/merge pool (None = synchronous engine).
        self.scheduler = scheduler
        merge_scheduler = MergeScheduler(
            max_concurrent_merges=config.concurrent_merge_limit()
        )
        self.partitions: List[LSMTree] = []
        for partition_id in range(config.total_partitions):
            schema = Schema(primary_key_field=self.primary_key_field)
            log = (
                log_manager.log_for_partition(partition_id)
                if log_manager is not None
                else None
            )
            self.partitions.append(
                LSMTree(
                    name=f"{name}-p{partition_id}",
                    layout=layout,
                    schema=schema,
                    device=device,
                    buffer_cache=buffer_cache,
                    memory_budget_bytes=config.memory_component_budget,
                    compression=config.compression,
                    merge_policy=TieringMergePolicy(
                        size_ratio=config.merge_size_ratio,
                        max_tolerable_components=config.max_tolerable_components,
                    ),
                    merge_scheduler=merge_scheduler,
                    transaction_log=log,
                    amax_max_records_per_leaf=config.amax_max_records_per_leaf,
                    amax_empty_page_tolerance=config.amax_empty_page_tolerance,
                    dataset_name=name,
                    partition_id=partition_id,
                    on_disk_state_changed=self._on_partition_state_changed,
                    scheduler=scheduler,
                    max_frozen_memtables=config.max_frozen_memtables,
                )
            )
        self.secondary_indexes: Dict[str, SecondaryIndex] = {}
        self.primary_key_index: Optional[PrimaryKeyIndex] = None
        #: The datastore's :class:`~repro.store.txn.CommitTable` (set by the
        #: owning Datastore); single-document writes stamp their key here so
        #: open transactions can detect first-write-wins conflicts against
        #: them.  None for standalone datasets — transactions need a store.
        self.commit_table = None
        #: The datastore's commit lock (set together with ``commit_table``).
        #: Auto-committed writes hold it across apply + stamp so they are
        #: atomic with respect to transaction validation — see
        #: :meth:`_autocommit_guard`.
        self.commit_lock: Optional[threading.RLock] = None
        self.records_ingested = 0
        self.point_lookups_performed = 0
        #: Highest LSN the persisted ``records_ingested`` already covers
        #: (recovery replays WAL records without re-counting those).
        self.ingest_watermark_lsn = 0
        #: Per-partition durable LSN at the last index-buffer spill; lets the
        #: flush/merge callback spill only when durability actually advanced.
        self._spilled_durable_lsns: Dict[int, int] = {}
        #: (version, DatasetStatistics) cache for :meth:`statistics`.
        self._statistics_cache = None
        #: Striped per-key locks make the fetch-old → index-fixup →
        #: primary-insert sequence atomic per key across concurrent writers
        #: (without them, two updates of the same key could both see the same
        #: old document and leave a stale index entry behind).  Striping by
        #: the stable key hash keeps writers of *different* keys parallel —
        #: the indexes themselves are internally locked — while all ops on
        #: one key serialize.  Taken only when the dataset has indexes.
        self._key_locks = [threading.RLock() for _ in range(16)]
        #: Guards ingestion counters shared across writer threads.
        self._counter_lock = threading.Lock()
        #: Serializes the flush/merge callback (index spill + manifest
        #: rewrite) across partitions whose background tasks finish together.
        self._durability_lock = threading.Lock()

    # -- indexes -----------------------------------------------------------------------
    def create_secondary_index(self, name: str, path: str) -> SecondaryIndex:
        if name in self.secondary_indexes:
            raise DatasetError(f"secondary index {name!r} already exists")
        index = SecondaryIndex(f"{self.name}-{name}", path, self.device)
        self.secondary_indexes[name] = index
        self.persist_manifest()
        return index

    def create_primary_key_index(self) -> PrimaryKeyIndex:
        if self.primary_key_index is None:
            self.primary_key_index = PrimaryKeyIndex(f"{self.name}-pkidx", self.device)
            self.persist_manifest()
        return self.primary_key_index

    # -- durability ---------------------------------------------------------------------
    def persist_manifest(self) -> None:
        """Atomically rewrite this dataset's manifest (no-op when transient)."""
        if self.manifest_path is None:
            return
        manifest_io.write_json_atomic(
            self.manifest_path, manifest_io.build_dataset_manifest(self)
        )

    def _has_indexes(self) -> bool:
        return bool(self.secondary_indexes) or self.primary_key_index is not None

    def _lock_for_key(self, key) -> threading.RLock:
        return self._key_locks[stable_key_hash(key) % len(self._key_locks)]

    def _autocommit_guard(self):
        """The datastore's commit lock, when transactions are possible.

        An auto-committed write applies to the partition and stamps the
        :class:`~repro.store.txn.CommitTable` inside one critical section
        with transaction commits: without it, the write could land between a
        committing transaction's ``find_conflict`` and its apply of the same
        key, and the transaction would silently overwrite the just-committed
        write with no conflict raised (a lost update, breaking
        first-write-wins).  Standalone datasets (no commit table, so no
        transactions to race) skip the lock entirely.
        """
        return self.commit_lock if self.commit_lock is not None else nullcontext()

    @contextmanager
    def _all_key_locks(self):
        """Hold every key stripe (fixed order, so concurrent holders cannot
        deadlock); writers hold exactly one stripe, never while waiting on
        the durability lock, so this always makes progress."""
        for lock in self._key_locks:
            lock.acquire()
        try:
            yield
        finally:
            for lock in reversed(self._key_locks):
                lock.release()

    def _on_partition_state_changed(self, tree: LSMTree) -> None:
        """After a flush/merge: make the matching index state durable too.

        A flush advances the partition's durable LSN, which excludes the
        flushed records from WAL replay — so any index-buffer entries those
        records produced must be spilled to runs *before* the manifest that
        carries the new durable LSN is written.  Merges leave the durable
        LSN untouched, so they only rewrite the manifest (spilling there
        would just pile up tiny runs that slow every index search).  Crash
        ordering is safe either way: a spill without a manifest only
        orphans run files.
        """
        if self.manifest_path is None:
            return
        with self._durability_lock:
            # Exclude in-flight indexed writes while spilling + persisting:
            # an insert appends its index-buffer entry and its WAL record
            # inside one per-key stripe lock, so holding every stripe here
            # guarantees no spilled run ever contains an entry whose
            # operation was not yet logged (a crash right after this spill
            # would otherwise leave a phantom index entry with no WAL record
            # to justify it).
            with self._all_key_locks():
                if tree.durable_lsn > self._spilled_durable_lsns.get(
                    tree.partition_id, 0
                ):
                    self._spilled_durable_lsns[tree.partition_id] = tree.durable_lsn
                    for index in self.secondary_indexes.values():
                        index.flush()
                    if self.primary_key_index is not None:
                        self.primary_key_index.flush()
                self.persist_manifest()

    def apply_wal_record(self, record: WALRecord) -> None:
        """Replay one recovered WAL operation (recovery only).

        Re-runs the same index maintenance as the original ingestion (the
        buffered index entries died with the process) and applies the
        operation to the partition's memtable without re-logging it.
        """
        tree = self.partitions[record.partition_id]
        if record.antimatter:
            if self.secondary_indexes:
                old_document = self._fetch_old_document(record.key)
                for index in self.secondary_indexes.values():
                    index.delete(index.extract(old_document), record.key)
            tree.apply_replayed(record.key, None, True, record.lsn)
        else:
            self._maintain_secondary_indexes(record.key, record.document)
            tree.apply_replayed(record.key, record.document, False, record.lsn)
            if record.lsn > self.ingest_watermark_lsn:
                # Records at or below the watermark were already counted by
                # the recovered ``records_ingested``.
                self.records_ingested += 1
        if tree.needs_flush:
            tree.flush()

    # -- ingestion ----------------------------------------------------------------------
    def _partition_for(self, key) -> LSMTree:
        # Routing must be stable across processes: the builtin ``hash`` is
        # salted per process for strings, which would scatter keys to the
        # wrong partitions after a reopen.
        return self.partitions[stable_key_hash(key) % len(self.partitions)]

    def _key_of(self, document: dict):
        try:
            return document[self.primary_key_field]
        except (KeyError, TypeError) as exc:
            raise DatasetError(
                f"document is missing the primary key field {self.primary_key_field!r}"
            ) from exc

    def insert(self, document: dict, auto_flush: bool = True) -> Optional[int]:
        """Insert or upsert one document (newest version wins at query time).

        Thread-safe: each partition serializes its own writers; when the
        dataset maintains indexes, the old-value fetch, the index fixup, and
        the primary insert additionally execute as one atomic step so
        concurrent updates of the same key cannot strand stale index entries.
        With a background scheduler attached, a full memtable is rotated and
        flushed on a worker instead of stalling this call.

        Returns:
            The commit-table sequence stamped for this auto-committed write
            (None when the dataset is not attached to a commit table) — the
            wire server reports it so clients can record write histories.
        """
        key = self._key_of(document)
        partition = self._partition_for(key)
        sequence: Optional[int] = None
        with self._autocommit_guard():
            if self._has_indexes():
                with self._lock_for_key(key):
                    self._maintain_secondary_indexes(key, document)
                    partition.insert(key, document)
            else:
                partition.insert(key, document)
            if self.commit_table is not None:
                # Stamp after the write is visible, inside the same commit-lock
                # critical section: a transaction whose snapshot missed this
                # write is guaranteed to see a version above its start sequence
                # and abort, never to overwrite it silently.
                sequence = self.commit_table.record_write(self.name, key)
        with self._counter_lock:
            self.records_ingested += 1
        if auto_flush and partition.needs_flush:
            partition.request_flush()
        return sequence

    def insert_many(self, documents: Iterable[dict], auto_flush: bool = True) -> int:
        count = 0
        for document in documents:
            self.insert(document, auto_flush=auto_flush)
            count += 1
        return count

    def delete(self, key) -> Optional[int]:
        """Delete by primary key (adds anti-matter); returns the commit sequence."""
        partition = self._partition_for(key)
        sequence: Optional[int] = None
        with self._autocommit_guard():
            if self.secondary_indexes:
                with self._lock_for_key(key):
                    old_document = self._fetch_old_document(key)
                    for index in self.secondary_indexes.values():
                        index.delete(index.extract(old_document), key)
                    partition.delete(key)
            else:
                partition.delete(key)
            if self.commit_table is not None:
                sequence = self.commit_table.record_write(self.name, key)
        return sequence

    def apply_committed_write(
        self, key, document: Optional[dict], antimatter: bool, lsn: int
    ) -> None:
        """Apply one validated transactional write (commit path).

        The caller (:meth:`repro.store.txn.Transaction.commit`) already
        appended this operation's WAL record and the transaction's commit
        record, so the write is applied through
        :meth:`~repro.lsm.LSMTree.apply_replayed` — the same
        index-maintenance + memtable path as ingestion, minus the logging.
        The commit-table stamp for the whole transaction is published by the
        caller in one step, after every write is applied.
        """
        partition = self._partition_for(key)
        if antimatter:
            if self.secondary_indexes:
                with self._lock_for_key(key):
                    old_document = self._fetch_old_document(key)
                    for index in self.secondary_indexes.values():
                        index.delete(index.extract(old_document), key)
                    partition.apply_replayed(key, None, True, lsn)
            else:
                partition.apply_replayed(key, None, True, lsn)
        else:
            if self._has_indexes():
                with self._lock_for_key(key):
                    self._maintain_secondary_indexes(key, document)
                    partition.apply_replayed(key, document, False, lsn)
            else:
                partition.apply_replayed(key, document, False, lsn)
            with self._counter_lock:
                self.records_ingested += 1
        if partition.needs_flush:
            partition.request_flush()

    def _maintain_secondary_indexes(self, key, document: dict) -> None:
        if not self.secondary_indexes:
            if self.primary_key_index is not None:
                self.primary_key_index.insert(key)
            return
        may_exist = True
        if self.primary_key_index is not None:
            may_exist = key in self.primary_key_index
            self.primary_key_index.insert(key)
        old_document = self._fetch_old_document(key) if may_exist else None
        for index in self.secondary_indexes.values():
            if old_document is not None:
                # Clean out the stale entry before inserting the new one (§4.6).
                index.delete(index.extract(old_document), key)
            index.insert(index.extract(document), key)

    def _fetch_old_document(self, key) -> Optional[dict]:
        self.point_lookups_performed += 1
        return self._partition_for(key).point_lookup(key)

    # -- maintenance -----------------------------------------------------------------------
    def flush_all(self) -> None:
        """Flush every partition's in-memory component (and the index buffers).

        Synchronous even with a background scheduler attached: each
        partition's flush runs inline (serializing with any in-flight
        background work for that partition), so when this returns every
        ingested record sits in a disk component.
        """
        for partition in self.partitions:
            partition.flush()
        with self._durability_lock:
            with self._all_key_locks():  # same spill/WAL atomicity as the callback
                for index in self.secondary_indexes.values():
                    index.flush()
                if self.primary_key_index is not None:
                    self.primary_key_index.flush()
                self.persist_manifest()

    # -- reads -------------------------------------------------------------------------------
    def scan(
        self, fields: Optional[Sequence[str]] = None, pushdown=None
    ) -> Iterator[Tuple[object, dict]]:
        """Reconciled scan over every partition (keys are not globally ordered).

        Every partition's snapshot is pinned *when scan() is called* — not
        when its turn in the iteration comes — so a scan started before a
        flush or merge reads the pre-flush/pre-merge state of every
        partition, however long the caller takes to consume it.

        ``pushdown`` carries the query's projection paths and pushed
        predicates down to the columnar component cursors (see
        :mod:`repro.query.pushdown`); row layouts ignore it.
        """
        scans = [
            partition.scan(fields, pushdown=pushdown) for partition in self.partitions
        ]
        return itertools.chain.from_iterable(scans)

    def parallel_scan(
        self,
        fields: Optional[Sequence[str]] = None,
        pushdown=None,
        executor=None,
    ) -> Iterator[Tuple[object, dict]]:
        """Fan the reconciled scan out across partitions on a thread pool.

        Each partition pins its snapshot up front (on the calling thread, so
        the set of visible records is fixed before this returns an iterator),
        then materializes on a pool worker; results stream back in completion
        order — partition order was never meaningful, keys are hash-routed.
        Falls back to the sequential :meth:`scan` without an executor or with
        a single partition.
        """
        if executor is None or len(self.partitions) <= 1:
            return self.scan(fields, pushdown=pushdown)
        # Pin all snapshots (and start the workers) before returning: the
        # scan observes one point in time however late it is consumed.
        scans = [
            partition.scan(fields, pushdown=pushdown) for partition in self.partitions
        ]
        futures = [executor.submit(list, scan) for scan in scans]

        def _completion_order():
            for future in as_completed(futures):
                yield from future.result()

        return _completion_order()

    def scan_batches(
        self,
        variable: str,
        fields: Optional[Sequence[str]] = None,
        pushdown=None,
        batch_size: int = 1024,
        direct: bool = False,
        executor=None,
    ) -> Iterator:
        """Scan every partition as column batches for the batch executors.

        Every partition's snapshot is pinned up front, exactly like
        :meth:`scan`.  With ``direct=True``, partitions whose pinned state
        qualifies (columnar components only, empty memtables, disjoint key
        ranges — see :func:`repro.query.batch_executor.partition_batches`)
        emit assembly-free path-column batches straight from the pruned
        column streams; the rest fall back to the reconciled row scan,
        batched row-wise.  With ``executor`` (a thread pool) and multiple
        partitions, each partition's batches materialize on a pool worker,
        but results stream back in *partition* order — unlike
        :meth:`parallel_scan`'s completion order — so a given snapshot
        always produces the same batch sequence.
        """
        from ..query.batch_executor import partition_batches

        snapshots = [partition.pin_snapshot() for partition in self.partitions]
        partition_iters = [
            partition_batches(
                partition,
                snapshot,
                variable,
                fields,
                pushdown,
                batch_size,
                allow_direct=direct,
            )
            for partition, snapshot in zip(self.partitions, snapshots)
        ]
        if executor is None or len(self.partitions) <= 1:
            return itertools.chain.from_iterable(partition_iters)
        futures = [
            executor.submit(list, batches) for batches in partition_iters
        ]

        def _partition_order():
            for future in futures:
                yield from future.result()

        return _partition_order()

    def count(self) -> int:
        return sum(partition.count() for partition in self.partitions)

    def point_lookup(self, key, fields: Optional[Sequence[str]] = None) -> Optional[dict]:
        """Newest version of ``key`` (None when absent/deleted).

        ``fields`` optionally projects the lookup: columnar layouts then
        decode only the needed columns of the leaf holding the key.
        """
        return self._partition_for(key).point_lookup(key, fields)

    def fetch_many(self, keys: Sequence, fields: Optional[Sequence[str]] = None) -> List[dict]:
        """Sorted, batched point lookups (§4.6).

        Keys are sorted first so consecutive lookups hit the same leaf pages
        through the buffer cache; each lookup itself still pays the per-leaf
        key search and (projected) column decode — the cost the optimizer's
        index-fetch plans are charged for.
        """
        documents = []
        for key in sorted(keys):
            document = self.point_lookup(key, fields)
            if document is not None:
                documents.append(document)
        return documents

    # -- statistics -----------------------------------------------------------------------------
    def statistics(self):
        """Dataset-level statistics for the cost-based optimizer.

        Aggregates the per-component column statistics (collected at
        flush/merge time) across every partition, plus record/group/page
        counts and secondary-index entry counts.  The result is cached and
        recomputed only when a flush, merge, or index spill changes the
        on-disk state — never per insert, and never by reading data pages.
        Memtable and index-buffer counts in the snapshot may therefore lag
        behind by up to one memory component; the optimizer only consumes
        them as estimates.

        Returns:
            A :class:`repro.query.stats.DatasetStatistics`.
        """
        # Imported lazily: the store layer otherwise stays independent of the
        # query layer (same pattern as Query.build_plan's pushdown import).
        from ..query.stats import collect_dataset_statistics

        version = (
            tuple((p.flush_count, p.merge_count) for p in self.partitions),
            tuple(sorted(
                (name, index.run_count)
                for name, index in self.secondary_indexes.items()
            )),
        )
        cached = self._statistics_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        statistics = collect_dataset_statistics(self)
        self._statistics_cache = (version, statistics)
        return statistics

    def storage_size_bytes(self, include_indexes: bool = True) -> int:
        total = sum(partition.storage_size_bytes() for partition in self.partitions)
        if include_indexes:
            total += sum(index.size_bytes for index in self.secondary_indexes.values())
            if self.primary_key_index is not None:
                total += self.primary_key_index.size_bytes
        return total

    def storage_payload_bytes(self, include_indexes: bool = True) -> int:
        total = sum(partition.storage_payload_bytes() for partition in self.partitions)
        if include_indexes:
            total += sum(index.size_bytes for index in self.secondary_indexes.values())
            if self.primary_key_index is not None:
                total += self.primary_key_index.size_bytes
        return total

    def num_components(self) -> int:
        return sum(partition.num_components for partition in self.partitions)

    def inferred_column_count(self) -> int:
        """Number of inferred columns (union of all partitions' schemas)."""
        return max(partition.schema.num_columns for partition in self.partitions)

    @property
    def schemas(self) -> List[Schema]:
        return [partition.schema for partition in self.partitions]
