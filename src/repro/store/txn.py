"""Multi-statement transactions: optimistic validation over pinned snapshots.

A :class:`Transaction` (created with :meth:`Datastore.begin
<repro.store.datastore.Datastore.begin>`) gives multi-key writes the three
properties single-document operations already had individually:

* **Snapshot reads** — at ``begin()`` the transaction pins every dataset's
  component stack (the same :class:`~repro.lsm.lsm_tree.TreeSnapshot`
  mechanism long scans use), so every ``get()`` observes one commit-atomic
  point in time, however many commits land meanwhile.  Reads also see the
  transaction's own buffered writes (read-your-writes).
* **First-write-wins conflict detection** — writes are buffered, never
  applied before commit.  At commit, validation checks a store-wide
  :class:`CommitTable` (last committed sequence per ``(dataset, key)``): any
  written key committed by someone else *after* this transaction's snapshot
  was pinned aborts the commit with
  :class:`~repro.model.errors.TransactionConflictError`, and nothing is
  applied.
* **Atomic durability** — a validated commit logs every buffered write to
  the WAL tagged with the transaction's id, then appends one
  :class:`~repro.lsm.wal.CommitRecord`.  Replay after a crash applies a
  transaction's records only when its commit record survived, so recovery is
  all-or-nothing (see ``docs/DURABILITY.md``).

Commits serialize on the datastore's commit lock, and ``begin()`` pins its
snapshot under the same lock — a transaction can never observe half of
another transaction's apply step.  Plain (non-transactional) reads take no
lock and may observe a committing transaction's writes one partition at a
time; they are read-committed, not snapshot reads.  The
:mod:`repro.verify` checker makes both claims testable from recorded
histories.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..lsm.keys import stable_key_hash
from ..model.errors import TransactionConflictError, TransactionError

#: A buffered write: ``(antimatter, document)``.
_BufferedWrite = Tuple[bool, Optional[dict]]


class CommitTable:
    """Last committed sequence number per ``(dataset, key)``.

    One per datastore.  Every commit — a multi-statement transaction or an
    auto-committed single-document write — advances the global sequence and
    stamps the keys it wrote; validation compares those stamps against the
    sequence a transaction observed when it pinned its snapshot.  The table
    is process-local (rebuilt empty on recovery): conflicts only need to be
    detected between transactions alive in the same process, and a fresh
    process has none.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq = 0
        self._versions: Dict[Tuple[str, object], int] = {}

    def current_seq(self) -> int:
        with self._lock:
            return self._seq

    def record_write(self, dataset: str, key) -> int:
        """Stamp one auto-committed single-document write; returns its seq.

        Called *after* the write is applied (visible): a snapshot pinned
        before the stamp therefore missed the write but will fail validation
        against it — never the reverse (which would be a lost update).
        """
        with self._lock:
            self._seq += 1
            self._versions[(dataset, key)] = self._seq
            return self._seq

    def find_conflict(
        self, start_seq: int, keys: Iterable[Tuple[str, object]]
    ) -> Optional[Tuple[str, object]]:
        """First written key committed after ``start_seq`` (None = valid)."""
        with self._lock:
            for identity in keys:
                if self._versions.get(identity, 0) > start_seq:
                    return identity
            return None

    def publish(self, keys: Iterable[Tuple[str, object]]) -> int:
        """Stamp a validated transaction's keys with one new sequence."""
        with self._lock:
            self._seq += 1
            for identity in keys:
                self._versions[identity] = self._seq
            return self._seq


class Transaction:
    """One multi-statement transaction over a datastore.

    Create with :meth:`Datastore.begin`; use as a context manager to
    guarantee the snapshot pins are released (an open transaction is aborted
    on exit)::

        with store.begin() as txn:
            a = txn.get("accounts", 1)
            b = txn.get("accounts", 2)
            txn.insert("accounts", {**a, "balance": a["balance"] - 10})
            txn.insert("accounts", {**b, "balance": b["balance"] + 10})
            txn.commit()

    All methods raise :class:`~repro.model.errors.TransactionError` once the
    transaction is committed or aborted.
    """

    def __init__(self, store, txn_handle: int, start_seq: int) -> None:
        self._store = store
        #: Process-local handle (history recording, diagnostics); the WAL
        #: transaction id is allocated separately at commit, from the LSN
        #: space, so it can never collide with an id from a crashed run.
        self.id = txn_handle
        self.start_seq = start_seq
        self.status = "open"
        #: Commit sequence assigned at a successful writing commit.
        self.commit_seq: Optional[int] = None
        self._snapshots: Dict[str, Tuple] = {}
        self._writes: Dict[Tuple[str, object], _BufferedWrite] = {}
        #: Test-only fault hook: called at commit checkpoints with
        #: ``(stage, index)`` — ``("write-logged", i)`` after the i-th write
        #: record hit the WAL, ``("commit-logged", 0)`` after the commit
        #: record, ``("applied", i)`` after the i-th write was applied.
        #: Raising from the hook models a process crash mid-commit.
        self.testing_fault: Optional[Callable[[str, int], None]] = None

    # -- lifecycle ---------------------------------------------------------------------
    def _require_open(self) -> None:
        if self.status != "open":
            raise TransactionError(
                f"transaction #{self.id} is {self.status}; begin a new one"
            )

    def _pin_dataset(self, name: str, dataset) -> None:
        self._snapshots[name] = tuple(
            tree.pin_snapshot() for tree in dataset.partitions
        )

    def _release_snapshots(self) -> None:
        for snapshots in self._snapshots.values():
            for snapshot in snapshots:
                snapshot.close()
        self._snapshots = {}

    def _finish(self, status: str) -> None:
        self.status = status
        self._release_snapshots()
        self._writes = {}

    def abort(self) -> None:
        """Discard every buffered write and release the snapshot pins."""
        self._require_open()
        self._finish("aborted")

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.status == "open":
            self.abort()

    # -- reads -------------------------------------------------------------------------
    def _snapshot_for(self, dataset_name: str):
        snapshots = self._snapshots.get(dataset_name)
        if snapshots is not None:
            return snapshots
        self._store.dataset(dataset_name)  # raises DatasetError when unknown
        # begin() pinned every dataset that existed, so an unpinned name was
        # created *after* this transaction began: it held nothing at the
        # snapshot point, and reads must see it that way.  Pinning its live
        # trees now would splice a later point in time into the snapshot —
        # a commit landing between begin() and this read would be visible
        # here yet invisible in the datasets pinned at begin(), so the view
        # would no longer be commit-consistent.
        self._snapshots[dataset_name] = ()
        return ()

    def get(self, dataset_name: str, key, fields: Optional[Sequence[str]] = None):
        """Snapshot point lookup, overlaid with this transaction's writes.

        A dataset created after ``begin()`` reads as empty (it was, at the
        snapshot point), though the transaction still sees its own buffered
        writes to it and may commit into it.
        """
        self._require_open()
        buffered = self._writes.get((dataset_name, key))
        if buffered is not None:
            antimatter, document = buffered
            return None if antimatter else document
        snapshots = self._snapshot_for(dataset_name)
        if not snapshots:  # created after begin(): empty at the snapshot point
            return None
        partition_index = stable_key_hash(key) % len(snapshots)
        return snapshots[partition_index].point_lookup(key, fields)

    def get_many(self, dataset_name: str, keys: Sequence) -> List[Optional[dict]]:
        """One snapshot lookup per key, in the order given."""
        return [self.get(dataset_name, key) for key in keys]

    # -- writes ------------------------------------------------------------------------
    def insert(self, dataset_name: str, document: dict) -> None:
        """Buffer an insert/upsert (applied only at a successful commit)."""
        self._require_open()
        dataset = self._store.dataset(dataset_name)
        key = dataset._key_of(document)
        self._writes[(dataset_name, key)] = (False, document)

    upsert = insert

    def delete(self, dataset_name: str, key) -> None:
        """Buffer a delete by primary key."""
        self._require_open()
        self._store.dataset(dataset_name)  # raises DatasetError when unknown
        self._writes[(dataset_name, key)] = (True, None)

    @property
    def write_count(self) -> int:
        return len(self._writes)

    # -- commit ------------------------------------------------------------------------
    def _fault(self, stage: str, index: int) -> None:
        if self.testing_fault is not None:
            self.testing_fault(stage, index)

    def commit(self) -> Optional[int]:
        """Validate, log, and apply the buffered writes atomically.

        Returns:
            The commit sequence number, or None for a read-only transaction.

        Raises:
            TransactionConflictError: First-write-wins validation failed —
                a written key was committed by someone else after this
                transaction pinned its snapshot.  The transaction is aborted
                and nothing was applied.

        Once the commit record is durable the transaction is finalized as
        *committed* even if applying a write afterwards raises: the error
        propagates, but ``status``, ``commit_seq``, and the commit-table
        stamp all reflect the on-disk outcome (a reopen replays the commit
        and heals whatever the failed apply left behind).
        """
        self._require_open()
        if not self._writes:
            self._finish("committed")
            return None
        store = self._store
        with store._commit_lock:
            conflict = store.commits.find_conflict(self.start_seq, self._writes)
            if conflict is not None:
                dataset_name, key = conflict
                self._finish("aborted")
                raise TransactionConflictError(
                    f"transaction #{self.id} conflicts on {dataset_name!r} key "
                    f"{key!r}: committed after this transaction began "
                    f"(first write wins); aborted — retry on a fresh snapshot",
                    dataset=dataset_name,
                    key=key,
                )
            # WAL: every write record first, the commit record last.  Each
            # append flushes, so a surviving commit record implies every
            # write record survived too — replay is all-or-nothing.
            wal_txn_id = store.log_manager.allocate_txn_id()
            logged = []
            for index, ((dataset_name, key), (antimatter, document)) in enumerate(
                self._writes.items()
            ):
                dataset = store.datasets[dataset_name]
                partition_index = stable_key_hash(key) % len(dataset.partitions)
                log = dataset.partitions[partition_index].transaction_log
                lsn = log.log_record(
                    dataset_name, partition_index, key, document, antimatter,
                    txn_id=wal_txn_id,
                )
                logged.append((dataset, key, antimatter, document, lsn))
                self._fault("write-logged", index)
            store.log_manager.log_commit_record(wal_txn_id, len(logged))
            # The commit record is durable: from here on the transaction IS
            # committed, whatever happens while applying.  Publish the
            # commit-table stamp and finalize even if an apply raises
            # (index-maintenance or flush-scheduling error), so in-process
            # conflict detection and ``status`` never disagree with the
            # on-disk truth — the error still propagates, and replay on the
            # next open() heals whatever the failed apply left behind.
            try:
                self._fault("commit-logged", 0)
                # Apply (indexes + memtables, no re-logging) while still
                # holding the commit lock: begin() synchronizes on it, so no
                # transaction snapshot can be pinned between the first and
                # last apply.
                for index, (dataset, key, antimatter, document, lsn) in enumerate(
                    logged
                ):
                    dataset.apply_committed_write(key, document, antimatter, lsn)
                    self._fault("applied", index)
            finally:
                self.commit_seq = store.commits.publish(self._writes)
                self._finish("committed")
        return self.commit_seq
