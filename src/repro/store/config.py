"""Datastore configuration.

Defaults follow the paper's experiment setup (§6) scaled down to laptop-sized
synthetic datasets: 128 KB on-disk pages, Snappy-style page compression, a
tiering merge policy with ratio 1.2 and at most 5 components, and a cap on
concurrent merges for the columnar layouts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields
from typing import Optional


@dataclass
class StoreConfig:
    """Tunable parameters of a :class:`~repro.store.datastore.Datastore`."""

    #: On-disk page size in bytes (the paper uses 128 KB).
    page_size: int = 128 * 1024
    #: In-memory component budget per partition, in bytes.
    memory_component_budget: int = 4 * 1024 * 1024
    #: Buffer cache capacity in pages (shared by all partitions of a node).
    buffer_cache_pages: int = 2048
    #: Page compression codec: "snappy", "zlib", or "none".
    compression: str = "snappy"
    #: Number of node controllers (NCs).
    num_nodes: int = 1
    #: Data partitions per node.
    partitions_per_node: int = 2
    #: Tiering merge policy parameters (§6.3).
    merge_size_ratio: float = 1.2
    max_tolerable_components: int = 5
    #: Concurrent-merge cap; None means "half the partitions" (§4.5.3).
    max_concurrent_merges: Optional[int] = None
    #: AMAX: maximum records per mega leaf (Page 0 key count limit, §4.5.2).
    amax_max_records_per_leaf: int = 15000
    #: AMAX: fraction of a physical page that may stay empty so the next
    #: column starts on a fresh page (§4.3).
    amax_empty_page_tolerance: float = 0.15
    #: Optional directory for persisting component pages (None = in memory).
    storage_directory: Optional[str] = None
    #: Default primary key field name.
    primary_key_field: str = "id"
    #: Background flush/merge worker threads; 0 (the default) preserves the
    #: fully synchronous engine — flushes and merges run inline on the
    #: caller's thread, exactly as before the concurrency subsystem existed.
    background_workers: int = 0
    #: Bounded background task queue (writer backpressure past this depth).
    flush_queue_capacity: int = 64
    #: Rotated-but-unflushed memtables a partition may accumulate before the
    #: writer blocks waiting for a background flush (memory backpressure).
    max_frozen_memtables: int = 4
    #: Thread-pool size for fanning a scan out across partitions; 0 keeps
    #: scans sequential on the caller's thread.
    parallel_scan_workers: int = 0
    #: When True the disk model's per-operation costs become real sleeps, so
    #: wall-clock benchmarks observe device latency that background flushing
    #: and parallel scans can overlap (see bench_concurrency.py).
    simulate_device_latency: bool = False
    #: Override the disk model's per-operation latency in seconds (None keeps
    #: the NVMe default).  Raising it models slower devices — e.g. ~1 ms for
    #: cloud block storage — where overlapping I/O matters most.
    device_latency_s: Optional[float] = None
    #: Observability master switch: the metrics registry and per-statement
    #: tracing (repro/obs).  Off turns every instrument into a no-op, which
    #: is what bench_observability.py compares against.
    observability: bool = True
    #: Statements at least this slow (seconds) are recorded in the structured
    #: slow-query log; None disables the log entirely.
    slow_query_log_s: Optional[float] = None
    #: Optional JSONL file the slow-query log appends to (None keeps entries
    #: in memory only, readable via ``Datastore.slow_log.entries()``).
    slow_query_log_path: Optional[str] = None

    @property
    def total_partitions(self) -> int:
        return self.num_nodes * self.partitions_per_node

    def concurrent_merge_limit(self) -> int:
        if self.max_concurrent_merges is not None:
            return self.max_concurrent_merges
        return max(1, self.total_partitions // 2)

    def validate(self) -> None:
        if self.page_size < 4096:
            raise ValueError("page_size must be at least 4 KiB")
        if self.total_partitions < 1:
            raise ValueError("at least one partition is required")
        if not 0.0 <= self.amax_empty_page_tolerance < 1.0:
            raise ValueError("amax_empty_page_tolerance must be in [0, 1)")
        if self.background_workers < 0:
            raise ValueError("background_workers must be >= 0")
        if self.parallel_scan_workers < 0:
            raise ValueError("parallel_scan_workers must be >= 0")
        if self.flush_queue_capacity < 1:
            raise ValueError("flush_queue_capacity must be >= 1")
        if self.max_frozen_memtables < 1:
            raise ValueError("max_frozen_memtables must be >= 1")
        if self.slow_query_log_s is not None and self.slow_query_log_s < 0:
            raise ValueError("slow_query_log_s must be >= 0")
        if self.slow_query_log_path is not None and self.slow_query_log_s is None:
            raise ValueError(
                "slow_query_log_path requires slow_query_log_s to be set"
            )

    # -- serialization (the datastore root manifest) -------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "StoreConfig":
        """Rebuild a config persisted by :meth:`to_dict`.

        Unknown keys are ignored so a datastore written by a newer version
        (with extra tunables) still opens; missing keys keep their defaults.
        """
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})
