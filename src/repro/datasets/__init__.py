"""Synthetic workload generators reproducing the paper's five datasets."""

from .generators import (
    DEFAULT_BENCH_SIZES,
    GENERATORS,
    CellGenerator,
    DatasetGenerator,
    SensorsGenerator,
    Tweet1Generator,
    Tweet2Generator,
    WosGenerator,
    make_generator,
)

__all__ = [
    "DEFAULT_BENCH_SIZES",
    "GENERATORS",
    "CellGenerator",
    "DatasetGenerator",
    "SensorsGenerator",
    "Tweet1Generator",
    "Tweet2Generator",
    "WosGenerator",
    "make_generator",
]
