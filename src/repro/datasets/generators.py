"""Synthetic dataset generators matching the paper's five datasets (Table 1).

The paper's evaluation uses two real, one scaled, and two synthetic/converted
datasets that cannot be redistributed; the generators below reproduce the
structural properties the paper itself uses to explain its results:

=========  =======================================================================
``cell``     flat (1NF), tiny records, mixed int/double/string values, huge
             record count — ingestion is bound by the transaction log.
``sensors``  nested ``readings`` array of numeric values — encodable numeric
             domains where the columnar layouts shine.
``tweet_1``  large, text-heavy records with many distinct columns (deeply
             nested ``user``/``entities`` objects) — hundreds of columns.
``tweet_2``  a moderate-column Twitter sample (shorter text, fewer fields),
             with a monotonically increasing ``timestamp`` for the secondary
             index experiments.
``wos``      Web-of-Science-like publication metadata with long abstracts and
             a heterogeneous ``address_name`` field (object *or* array of
             objects) exercising the union-type extension.
=========  =======================================================================

All generators are deterministic given a seed and yield plain dicts whose
primary key field is ``id``.
"""

from __future__ import annotations

import random
import string
from typing import Dict, Iterator, List, Optional

_WORDS = (
    "data systems columnar storage query analytics document store lsm tree "
    "schema flexible nested merge flush component index scan filter join "
    "cloud cluster partition tweet game sensor reading publication science"
).split()

_COUNTRIES = [
    "USA", "China", "Germany", "UK", "France", "Japan", "Brazil", "India",
    "Canada", "Australia", "Italy", "Spain", "Netherlands", "Korea",
]

_FIELDS_OF_STUDY = [
    "Computer Science", "Biology", "Physics", "Chemistry", "Mathematics",
    "Medicine", "Economics", "Psychology", "Materials Science", "Engineering",
]

_HASHTAGS = ["jobs", "news", "sports", "music", "tech", "food", "travel", "games"]

_CONSOLES = ["PC", "PS4", "XBOX", "Switch"]


def _sentence(rng: random.Random, words: int) -> str:
    return " ".join(rng.choice(_WORDS) for _ in range(words))


def _name(rng: random.Random) -> str:
    return "".join(rng.choice(string.ascii_lowercase) for _ in range(rng.randint(4, 9)))


class DatasetGenerator:
    """Base class: deterministic, seekable document generator."""

    name = "base"
    #: Dominant atomic type, as reported in Table 1.
    dominant_type = "mixed"

    def __init__(self, num_records: int, seed: int = 7) -> None:
        self.num_records = num_records
        self.seed = seed

    def record(self, rng: random.Random, record_id: int) -> dict:  # pragma: no cover
        raise NotImplementedError

    def __iter__(self) -> Iterator[dict]:
        rng = random.Random(self.seed)
        for record_id in range(self.num_records):
            yield self.record(rng, record_id)

    def documents(self) -> List[dict]:
        return list(self)

    def __len__(self) -> int:
        return self.num_records


class CellGenerator(DatasetGenerator):
    """Telecom call records: flat, small, mixed types (the paper's ``cell``)."""

    name = "cell"
    dominant_type = "mixed"

    def record(self, rng: random.Random, record_id: int) -> dict:
        return {
            "id": record_id,
            "caller": rng.randint(1_000_000, 1_050_000),
            "callee": rng.randint(1_000_000, 1_050_000),
            "duration": rng.randint(1, 3600),
            "tower": f"T{rng.randint(0, 999):03d}",
            "signal": round(rng.uniform(-120.0, -60.0), 2),
            "dropped": rng.random() < 0.02,
        }


class SensorsGenerator(DatasetGenerator):
    """IoT sensors with numeric readings arrays (the paper's ``sensors``)."""

    name = "sensors"
    dominant_type = "int64"

    def __init__(self, num_records: int, seed: int = 7, readings_per_record: int = 12):
        super().__init__(num_records, seed)
        self.readings_per_record = readings_per_record

    def record(self, rng: random.Random, record_id: int) -> dict:
        base_time = 1_556_496_000_000 + record_id * 60_000
        return {
            "id": record_id,
            "sensor_id": record_id % 500,
            "report_time": base_time,
            "battery": rng.randint(0, 100),
            "connectivity": {
                "protocol": rng.choice(["lora", "wifi", "zigbee"]),
                "rssi": rng.randint(-110, -40),
                "uptime_s": rng.randint(0, 10_000_000),
            },
            "readings": [
                {
                    "seq": index,
                    "temp": rng.randint(-20, 45),
                    "humidity": rng.randint(5, 95),
                }
                for index in range(self.readings_per_record)
            ],
        }


class Tweet1Generator(DatasetGenerator):
    """Wide, text-heavy tweets (the paper's ``tweet_1``; hundreds of columns)."""

    name = "tweet_1"
    dominant_type = "string"

    def __init__(self, num_records: int, seed: int = 7, extra_fields: int = 60):
        super().__init__(num_records, seed)
        self.extra_fields = extra_fields

    def record(self, rng: random.Random, record_id: int) -> dict:
        text = _sentence(rng, rng.randint(20, 45))
        user_name = _name(rng)
        document = {
            "id": record_id,
            "created_at": f"2020-0{1 + record_id % 9}-{1 + record_id % 27:02d}",
            "text": text,
            "lang": rng.choice(["en", "es", "ar", "fr", "ja"]),
            "source": "<a href=\"https://example.com\">App</a>",
            "user": {
                "id": rng.randint(1, 10_000_000),
                "name": user_name,
                "screen_name": user_name[:6],
                "description": _sentence(rng, rng.randint(5, 15)),
                "followers_count": rng.randint(0, 100_000),
                "friends_count": rng.randint(0, 5_000),
                "verified": rng.random() < 0.05,
                "location": rng.choice(_COUNTRIES),
            },
            "entities": {
                "hashtags": [
                    {"text": rng.choice(_HASHTAGS), "indices": [0, 5]}
                    for _ in range(rng.randint(0, 3))
                ],
                "urls": [
                    {"url": f"https://t.co/{_name(rng)}", "expanded_url": f"https://example.com/{_name(rng)}"}
                    for _ in range(rng.randint(0, 2))
                ],
            },
            "retweet_count": rng.randint(0, 500),
            "favorite_count": rng.randint(0, 1000),
            "possibly_sensitive": rng.random() < 0.1,
        }
        # The real tweet_1 dataset has ~933 inferred columns; the long tail of
        # rarely present metadata fields is what blows the column count up.
        for index in range(self.extra_fields):
            if rng.random() < 0.25:
                document[f"meta_{index:03d}"] = _sentence(rng, 3)
        return document


class Tweet2Generator(DatasetGenerator):
    """A moderate-size tweet sample with a monotone timestamp (``tweet_2``)."""

    name = "tweet_2"
    dominant_type = "string"

    def __init__(self, num_records: int, seed: int = 7, extra_fields: int = 25):
        super().__init__(num_records, seed)
        self.extra_fields = extra_fields

    def record(self, rng: random.Random, record_id: int) -> dict:
        document = {
            "id": record_id,
            # Synthetic, monotonically increasing posting time (§6.1).
            "timestamp": 1_460_000_000_000 + record_id * 1000,
            "text": _sentence(rng, rng.randint(8, 20)),
            "lang": rng.choice(["en", "es", "pt"]),
            "user": {
                "id": rng.randint(1, 1_000_000),
                "name": _name(rng),
                "followers_count": rng.randint(0, 50_000),
            },
            "entities": {
                "hashtags": [
                    {"text": rng.choice(_HASHTAGS)} for _ in range(rng.randint(0, 2))
                ]
            },
            "retweet_count": rng.randint(0, 100),
        }
        for index in range(self.extra_fields):
            if rng.random() < 0.3:
                document[f"meta_{index:02d}"] = rng.randint(0, 10_000)
        return document


class WosGenerator(DatasetGenerator):
    """Web-of-Science-like publications with heterogeneous values (``wos``)."""

    name = "wos"
    dominant_type = "string"

    def record(self, rng: random.Random, record_id: int) -> dict:
        author_count = rng.randint(1, 6)
        addresses = [
            {
                "address_spec": {
                    "country": rng.choice(_COUNTRIES),
                    "city": _name(rng).title(),
                    "organization": f"{_name(rng).title()} University",
                }
            }
            for _ in range(author_count)
        ]
        # The XML→JSON conversion makes single-author address_name an object
        # and multi-author ones an array of objects (§6.1): a union type.
        address_name = addresses[0] if author_count == 1 else addresses
        return {
            "id": record_id,
            "static_data": {
                "summary": {
                    "pub_info": {
                        "pubyear": 1980 + record_id % 35,
                        "pubtype": rng.choice(["Journal", "Conference"]),
                    },
                    "titles": {"title": _sentence(rng, rng.randint(6, 14)).title()},
                },
                "fullrecord_metadata": {
                    "abstracts": {
                        "abstract": {
                            # Long, multi-paragraph text values (§6.2).
                            "abstract_text": _sentence(rng, rng.randint(120, 260)),
                        }
                    },
                    "addresses": {"address_name": address_name},
                    "category_info": {
                        "subjects": {
                            "subject": [
                                {
                                    "ascatype": rng.choice(["traditional", "extended"]),
                                    "value": rng.choice(_FIELDS_OF_STUDY),
                                }
                                for _ in range(rng.randint(1, 3))
                            ]
                        }
                    },
                    "fund_ack": {
                        "grants": {
                            "grant": [
                                {"grant_agency": f"{_name(rng).title()} Foundation"}
                                for _ in range(rng.randint(0, 2))
                            ]
                        }
                    },
                },
            },
        }


GENERATORS: Dict[str, type] = {
    "cell": CellGenerator,
    "sensors": SensorsGenerator,
    "tweet_1": Tweet1Generator,
    "tweet_2": Tweet2Generator,
    "wos": WosGenerator,
}

#: Record-count scale factors used by the benchmark harness.  The paper's
#: datasets hold 17 M – 1.43 B records; the defaults below keep each benchmark
#: in seconds while preserving the relative cardinalities (cell has by far the
#: most records, wos/tweets fewer but larger ones).
DEFAULT_BENCH_SIZES: Dict[str, int] = {
    "cell": 12000,
    "sensors": 3000,
    "tweet_1": 1500,
    "wos": 1200,
    "tweet_2": 3000,
}


def make_generator(name: str, num_records: Optional[int] = None, seed: int = 7):
    """Instantiate a generator by dataset name."""
    try:
        factory = GENERATORS[name]
    except KeyError as exc:
        raise KeyError(f"unknown dataset {name!r}; expected one of {sorted(GENERATORS)}") from exc
    if num_records is None:
        num_records = DEFAULT_BENCH_SIZES[name]
    return factory(num_records, seed=seed)
