"""``python -m repro.server`` — the wire server executable.

Two modes share one protocol:

* **engine** (default): serve a single :class:`~repro.store.datastore.
  Datastore` — in-memory (``--empty``/``--demo``) or durable (``--store
  DIR``, reopened through recovery when the directory already holds a
  manifest).  This is what each *shard* of a cluster runs.
* **coordinator**: serve a :class:`~repro.shard.coordinator.
  ShardedDatastore` — either over shards this process spawns itself
  (``--shards N --data-dir DIR``) or over externally managed ones
  (``--shard-addrs host:port,host:port``).

Startup handshake: with ``--ready-file PATH`` the server atomically writes
``{"host", "port", "pid", "role"}`` once it is listening — with ``--port 0``
that file is how the parent learns the bound port.

SIGTERM/SIGINT trigger the graceful drain: stop accepting, finish in-flight
statements, roll back open transactions (notifying their clients), and close
the store through its checkpoint path so a restart replays an empty WAL
tail.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import List, Optional, Tuple

from .net.server import (
    DEFAULT_DRAIN_TIMEOUT,
    DEFAULT_EXECUTOR_WORKERS,
    EngineSessionHandler,
    WireServer,
)
from .store.config import StoreConfig
from .store.datastore import Datastore
from .store.manifest import DATASTORE_MANIFEST


def _parse_address(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


def _engine_store(args: argparse.Namespace) -> Datastore:
    overrides = {}
    if args.config_json:
        overrides.update(json.loads(args.config_json))
    if args.partitions_per_node is not None:
        overrides["partitions_per_node"] = args.partitions_per_node
    if args.parallel_scan_workers is not None:
        overrides["parallel_scan_workers"] = args.parallel_scan_workers
    if args.background_workers is not None:
        overrides["background_workers"] = args.background_workers
    if args.store:
        if os.path.exists(os.path.join(args.store, DATASTORE_MANIFEST)):
            # Existing directory: recover; config comes from its manifest.
            return Datastore.open(args.store)
        os.makedirs(args.store, exist_ok=True)
        return Datastore(StoreConfig(storage_directory=args.store, **overrides))
    if args.demo:
        from .shell import make_demo_store

        return make_demo_store()
    return Datastore(StoreConfig(**overrides))


def _write_ready_file(path: str, server: WireServer, role: str) -> None:
    payload = {
        "host": server.bound_host,
        "port": server.bound_port,
        "pid": os.getpid(),
        "role": role,
    }
    # Atomic: pollers must never observe a half-written JSON document.
    temporary = f"{path}.tmp.{os.getpid()}"
    with open(temporary, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)


async def _serve(args: argparse.Namespace) -> None:
    cluster = None
    sharded = None
    if args.shards or args.shard_addrs:
        from .shard.coordinator import (
            CoordinatorSessionHandler,
            ShardCluster,
            ShardedDatastore,
        )

        if args.shard_addrs:
            addresses: List[Tuple[str, int]] = args.shard_addrs
        else:
            if not args.data_dir:
                raise SystemExit("--shards requires --data-dir")
            cluster = ShardCluster(
                args.shards, args.data_dir, host=args.host
            )
            addresses = cluster.live_addresses()
        sharded = ShardedDatastore(addresses)
        role = "coordinator"
        metrics = sharded.metrics

        def backend_close() -> None:
            if cluster is not None:
                sharded.shutdown_shards()  # graceful per-shard checkpoint
            sharded.close()
            if cluster is not None:
                cluster.terminate()

        def session_factory() -> object:
            return CoordinatorSessionHandler(sharded)

    else:
        store = _engine_store(args)
        role = "engine"
        backend_close = store.close
        metrics = store.metrics

        def session_factory() -> object:
            return EngineSessionHandler(store)

    server = WireServer(
        session_factory,
        host=args.host,
        port=args.port,
        role=role,
        backend_close=backend_close,
        drain_timeout=args.drain_timeout,
        executor_workers=args.executor_workers,
        metrics=metrics,
    )
    await server.start()
    server.install_signal_handlers()
    if args.ready_file:
        _write_ready_file(args.ready_file, server, role)
    print(
        f"repro {role} server listening on "
        f"{server.bound_host}:{server.bound_port}",
        file=sys.stderr,
    )
    await server.wait_closed()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description="Serve a datastore (or a shard cluster) over the wire protocol.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    backend = parser.add_mutually_exclusive_group()
    backend.add_argument(
        "--store", metavar="DIR", help="durable datastore directory (engine mode)"
    )
    backend.add_argument(
        "--empty", action="store_true", help="empty in-memory store (engine mode)"
    )
    backend.add_argument(
        "--demo",
        action="store_true",
        help="in-memory store with the gamers demo dataset (engine mode)",
    )
    backend.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="coordinator mode: spawn N shard engines under --data-dir",
    )
    backend.add_argument(
        "--shard-addrs",
        type=lambda text: [_parse_address(part) for part in text.split(",")],
        metavar="H:P,H:P",
        help="coordinator mode: use already-running shards at these addresses",
    )
    parser.add_argument(
        "--data-dir", metavar="DIR", help="root directory for spawned shard stores"
    )
    parser.add_argument(
        "--ready-file",
        metavar="PATH",
        help="write {host, port, pid} here once listening",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=DEFAULT_DRAIN_TIMEOUT,
        help="seconds to wait for in-flight statements on shutdown",
    )
    parser.add_argument(
        "--executor-workers",
        type=int,
        default=DEFAULT_EXECUTOR_WORKERS,
        help="statement-execution thread-pool size",
    )
    parser.add_argument(
        "--config-json",
        metavar="JSON",
        help="StoreConfig field overrides as a JSON object, applied when "
        "creating a new store (an existing --store directory keeps the "
        "config persisted in its manifest)",
    )
    parser.add_argument(
        "--partitions-per-node", type=int, default=None, help="store partition count"
    )
    parser.add_argument(
        "--parallel-scan-workers",
        type=int,
        default=None,
        help="scan-pool threads per shard store",
    )
    parser.add_argument(
        "--background-workers",
        type=int,
        default=None,
        help="background flush/merge threads per shard store",
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 130
    return 0


if __name__ == "__main__":
    sys.exit(main())
