"""repro — Columnar Formats for Schemaless LSM-based Document Stores.

A pure-Python reproduction of the VLDB 2022 paper by Alkowaileet and Carey.
The package implements a schemaless LSM-based document store whose on-disk
components can use row-major layouts (``open``, ``vector``) or the paper's
columnar layouts (``apax``, ``amax``), built on an extended Dremel format with
union types, plus an analytical query engine with interpreted and
code-generating executors.

Quickstart::

    from repro import Datastore

    store = Datastore()
    gamers = store.create_dataset("gamers", layout="amax")
    gamers.insert({"id": 1, "name": {"first": "Ann"}, "games": [{"title": "NBA"}]})
    gamers.flush_all()

    result = store.query("SELECT COUNT(*) FROM gamers AS g;")   # SQL++ text

    from repro.query import Query                               # or the builder
    result = Query("gamers").count().execute(store)

There is also an interactive SQL++ shell: ``python -m repro.shell``.
"""

from __future__ import annotations

__version__ = "1.0.0"

from .model import FieldPath, ReproError
from .store import Datastore, StoreConfig

__all__ = ["Datastore", "FieldPath", "ReproError", "StoreConfig", "__version__"]
