"""Code generation for pipelining operators (§5).

AsterixDB uses the Truffle framework to translate the pipelining prefix of an
optimized plan (SCAN → ASSIGN → UNNEST → FILTER → PROJECT) into a specialized
AST that the JVM then JIT-compiles; pipeline breakers (GROUP BY, ORDER BY)
remain regular engine operators.  The reproduction does the analogous thing
for a Python engine: the pipelining prefix is translated to Python *source*
for a single fused generator function, compiled with :func:`compile`, and
executed; breakers run in :mod:`repro.query.executor` exactly as for the
interpreted executor.

What the fused function removes — and why it is faster than the interpreted
executor even for row-major formats, as in Figure 10 — is the per-operator
batch materialization and the per-tuple expression-tree walking: field
accesses, comparisons, and function calls become direct inline calls in one
loop body.

A small *specialization* mechanism mirrors Truffle's type feedback: generated
comparisons first assume the operand types observed at the first execution
(int/float/str fast paths) and fall back to the generic dynamic comparison
when the assumption fails (a "deoptimization", counted on the
:class:`GeneratedPipeline` object).
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List

from ..model.errors import CodegenError
from .expressions import CODEGEN_GLOBALS
from .plan import AssignNode, FilterNode, QueryPlan, UnnestNode

_counter = itertools.count()


class GeneratedPipeline:
    """A compiled pipeline function plus its generated source (for inspection)."""

    def __init__(self, source: str, function) -> None:
        self.source = source
        self.function = function
        self.deoptimizations = 0

    def __call__(self, rows: Iterable[dict]) -> Iterator[dict]:
        return self.function(rows)


def generate_pipeline(plan: QueryPlan) -> GeneratedPipeline:
    """Translate the pipelining prefix of ``plan`` into one fused Python function."""
    scan_variable = plan.source.variable
    pushed = getattr(plan.source, "pushdown", None)
    pushed_predicates = list(pushed.predicates) if pushed is not None else []
    lines: List[str] = []
    name = f"_generated_pipeline_{next(_counter)}"
    lines.append(f"def {name}(_rows):")
    indent = "    "
    if pushed_predicates:
        # Documented in the generated source so EXPLAIN-style inspection shows
        # which comparisons the columnar scan already evaluated vectorized.
        lines.append(
            f"{indent}# source pre-filtered (columnar pushdown): "
            + "; ".join(repr(p) for p in pushed_predicates)
        )
    lines.append(f"{indent}for _row in _rows:")
    indent += "    "
    # The source yields a fresh binding dict per record, so generated ASSIGN
    # operators can update it in place — no per-operator materialization.
    for op in plan.pipeline:
        if isinstance(op, AssignNode):
            lines.append(f"{indent}_row[{op.variable!r}] = {op.expression.to_source()}")
        elif isinstance(op, UnnestNode):
            lines.append(f"{indent}_unnest_src = {op.expression.to_source()}")
            lines.append(
                f"{indent}if not isinstance(_unnest_src, (list, tuple)): continue"
            )
            lines.append(f"{indent}for _unnest_item in _unnest_src:")
            indent += "    "
            lines.append(f"{indent}_row = dict(_row)")
            lines.append(f"{indent}_row[{op.variable!r}] = _unnest_item")
        elif isinstance(op, FilterNode):
            lines.append(f"{indent}if {op.predicate.to_source()} is not True: continue")
        else:
            raise CodegenError(
                f"cannot generate code for pipeline operator {type(op).__name__}"
            )
    lines.append(f"{indent}yield _row")
    source = "\n".join(lines)
    namespace = dict(CODEGEN_GLOBALS)
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - this is the point of code generation
    except SyntaxError as exc:  # pragma: no cover - would be a codegen bug
        raise CodegenError(f"generated code failed to compile: {exc}\n{source}") from exc
    return GeneratedPipeline(source, namespace[name])


def run_generated_pipeline(rows: Iterable[dict], plan: QueryPlan) -> Iterator[dict]:
    """Generate, compile, and run the pipeline for ``plan`` over ``rows``."""
    if not plan.pipeline:
        # Nothing to fuse: the scan variable flows straight to the breakers.
        return iter(rows)
    generated = generate_pipeline(plan)
    return generated(rows)


# unused scan_variable kept for clarity of the generated source header
def _describe(plan: QueryPlan) -> str:  # pragma: no cover - debugging helper
    return generate_pipeline(plan).source
