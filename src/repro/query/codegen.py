"""Code generation for pipelining operators (§5).

AsterixDB uses the Truffle framework to translate the pipelining prefix of an
optimized plan (SCAN → ASSIGN → UNNEST → FILTER → PROJECT) into a specialized
AST that the JVM then JIT-compiles; pipeline breakers (GROUP BY, ORDER BY)
remain regular engine operators.  The reproduction does the analogous thing
for a Python engine: the pipelining prefix is translated to Python *source*
for a single fused generator function, compiled with :func:`compile`, and
executed; breakers run in :mod:`repro.query.executor` exactly as for the
interpreted executor.

What the fused function removes — and why it is faster than the interpreted
executor even for row-major formats, as in Figure 10 — is the per-operator
batch materialization and the per-tuple expression-tree walking: field
accesses, comparisons, and function calls become direct inline calls in one
loop body.

A small *specialization* mechanism mirrors Truffle's type feedback: generated
comparisons first assume the operand types observed at the first execution
(int/float/str fast paths) and fall back to the generic dynamic comparison
when the assumption fails (a "deoptimization", counted on the
:class:`GeneratedPipeline` object).
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..model.errors import CodegenError
from ..model.path import FieldPath
from .batch import ColumnBatch
from .expressions import (
    CODEGEN_GLOBALS,
    And,
    Call,
    Compare,
    Expression,
    Field,
    Literal,
    Or,
    Var,
)
from .plan import AssignNode, FilterNode, JoinNode, QueryPlan, UnnestNode

_counter = itertools.count()


class GeneratedPipeline:
    """A compiled pipeline function plus its generated source (for inspection)."""

    def __init__(self, source: str, function) -> None:
        self.source = source
        self.function = function
        self.deoptimizations = 0

    def __call__(self, rows: Iterable[dict]) -> Iterator[dict]:
        return self.function(rows)


def generate_pipeline(plan: QueryPlan) -> GeneratedPipeline:
    """Translate the pipelining prefix of ``plan`` into one fused Python function."""
    scan_variable = plan.source.variable
    pushed = getattr(plan.source, "pushdown", None)
    pushed_predicates = list(pushed.predicates) if pushed is not None else []
    lines: List[str] = []
    name = f"_generated_pipeline_{next(_counter)}"
    lines.append(f"def {name}(_rows):")
    indent = "    "
    if pushed_predicates:
        # Documented in the generated source so EXPLAIN-style inspection shows
        # which comparisons the columnar scan already evaluated vectorized.
        lines.append(
            f"{indent}# source pre-filtered (columnar pushdown): "
            + "; ".join(repr(p) for p in pushed_predicates)
        )
    lines.append(f"{indent}for _row in _rows:")
    indent += "    "
    extra_globals: Dict[str, object] = {}
    # The source yields a fresh binding dict per record, so generated ASSIGN
    # operators can update it in place — no per-operator materialization.
    for index, op in enumerate(plan.pipeline):
        if isinstance(op, AssignNode):
            lines.append(f"{indent}_row[{op.variable!r}] = {op.expression.to_source()}")
        elif isinstance(op, UnnestNode):
            lines.append(f"{indent}_unnest_src = {op.expression.to_source()}")
            lines.append(
                f"{indent}if not isinstance(_unnest_src, (list, tuple)): continue"
            )
            lines.append(f"{indent}for _unnest_item in _unnest_src:")
            indent += "    "
            lines.append(f"{indent}_row = dict(_row)")
            lines.append(f"{indent}_row[{op.variable!r}] = _unnest_item")
        elif isinstance(op, FilterNode):
            lines.append(f"{indent}if {op.predicate.to_source()} is not True: continue")
        elif isinstance(op, JoinNode):
            if op.table is None:
                raise CodegenError("hash join compiled before prepare_plan()")
            # The prepared hash table is injected as a namespace constant; the
            # probe becomes one dict lookup plus a fan-out loop, like UNNEST.
            table_name = f"_join_tbl{index}"
            extra_globals[table_name] = op.table
            lines.append(
                f"{indent}_join_matches = {table_name}.get("
                f"_join_key({op.probe_key.to_source()}), ())"
            )
            lines.append(f"{indent}for _join_item in _join_matches:")
            indent += "    "
            lines.append(f"{indent}_row = dict(_row)")
            lines.append(f"{indent}_row[{op.variable!r}] = _join_item")
        else:
            raise CodegenError(
                f"cannot generate code for pipeline operator {type(op).__name__}"
            )
    lines.append(f"{indent}yield _row")
    source = "\n".join(lines)
    namespace = dict(CODEGEN_GLOBALS)
    namespace.update(extra_globals)
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - this is the point of code generation
    except SyntaxError as exc:  # pragma: no cover - would be a codegen bug
        raise CodegenError(f"generated code failed to compile: {exc}\n{source}") from exc
    return GeneratedPipeline(source, namespace[name])


def run_generated_pipeline(rows: Iterable[dict], plan: QueryPlan) -> Iterator[dict]:
    """Generate, compile, and run the pipeline for ``plan`` over ``rows``."""
    if not plan.pipeline:
        # Nothing to fuse: the scan variable flows straight to the breakers.
        return iter(rows)
    generated = generate_pipeline(plan)
    return generated(rows)


# -- batch fusion (the codegen executor's end-to-end vectorized mode) --------------------


class _DirectContext:
    """Name bindings while generating a direct (assembly-free) batch pipeline."""

    def __init__(self, scan_variable: str) -> None:
        self.scan_variable = scan_variable
        #: ASSIGN/UNNEST variable name -> generated local (latest binding wins).
        self.locals: Dict[str, str] = {}
        #: Path on the scan variable -> (column local, namespace path constant).
        self.columns: Dict[FieldPath, Tuple[str, str]] = {}

    def column_local(self, path: FieldPath) -> str:
        entry = self.columns.get(path)
        if entry is None:
            index = len(self.columns)
            entry = (f"_c{index}", f"_path{index}")
            self.columns[path] = entry
        return entry[0]


def _direct_source(expression: Expression, ctx: _DirectContext) -> str:
    """Python source for one expression over column locals (direct batches).

    Scalars come straight out of the prologue-materialized path vectors
    (``_cN[_i]``) and ASSIGN/UNNEST locals; the helpers (`_compare`,
    ``_get_path``, ``_functions``) are the same ones the row code generator
    uses, so the scalar semantics are shared by construction.
    """
    if isinstance(expression, Literal):
        return repr(expression.value)
    if isinstance(expression, Var):
        local = ctx.locals.get(expression.name)
        if local is not None:
            return local
        if expression.name == ctx.scan_variable:
            raise CodegenError(
                "direct pipelines cannot materialize the scan variable"
            )
        return "MISSING"  # unbound variable, as in Var.evaluate
    if isinstance(expression, Field):
        base = expression.base
        if isinstance(base, Var) and base.name not in ctx.locals:
            if base.name == ctx.scan_variable:
                return f"{ctx.column_local(expression.path)}[_i]"
            return "MISSING"  # field of an unbound variable
        return (
            f"_get_path({_direct_source(base, ctx)}, {str(expression.path)!r})"
        )
    if isinstance(expression, Compare):
        left = _direct_source(expression.left, ctx)
        right = _direct_source(expression.right, ctx)
        return f"_compare({expression.op!r}, {left}, {right})"
    if isinstance(expression, And):
        return (
            "("
            + " and ".join(
                f"({_direct_source(o, ctx)} is True)" for o in expression.operands
            )
            + ")"
        )
    if isinstance(expression, Or):
        return (
            "("
            + " or ".join(
                f"({_direct_source(o, ctx)} is True)" for o in expression.operands
            )
            + ")"
        )
    if isinstance(expression, Call):
        arguments = ", ".join(
            f"_missing_to_none({_direct_source(a, ctx)})"
            for a in expression.arguments
        )
        return f"_functions[{expression.function!r}]({arguments})"
    raise CodegenError(
        f"cannot generate direct code for {type(expression).__name__}"
    )


def generate_direct_pipeline(plan: QueryPlan) -> GeneratedPipeline:
    """Fuse the pipelining prefix into one function over a *direct* batch.

    The generated function materializes each referenced path vector once from
    the batch, runs one fused loop over the row indices (FILTER = ``continue``,
    UNNEST = inner loop), and gathers the surviving indices — plus any
    ASSIGN/UNNEST output columns — with :meth:`ColumnBatch.take`.  No row
    dict is ever built, which is what lets direct scans stay assembly-free
    end to end.
    """
    name = f"_direct_pipeline_{next(_counter)}"
    ctx = _DirectContext(plan.source.variable)
    temp = itertools.count()
    body: List[str] = []
    indent = "        "
    for op in plan.pipeline:
        if isinstance(op, FilterNode):
            body.append(
                f"{indent}if {_direct_source(op.predicate, ctx)} is not True:"
            )
            body.append(f"{indent}    continue")
        elif isinstance(op, AssignNode):
            # Generate the expression before (re)binding, as in-place ASSIGN
            # evaluates its right-hand side against the incoming row.
            source_text = _direct_source(op.expression, ctx)
            local = f"_v{next(temp)}"
            body.append(f"{indent}{local} = {source_text}")
            ctx.locals[op.variable] = local
        elif isinstance(op, UnnestNode):
            source_text = _direct_source(op.expression, ctx)
            items = f"_u{next(temp)}"
            local = f"_v{next(temp)}"
            body.append(f"{indent}{items} = {source_text}")
            body.append(f"{indent}if not isinstance({items}, (list, tuple)):")
            body.append(f"{indent}    continue")
            body.append(f"{indent}for {local} in {items}:")
            indent += "    "
            ctx.locals[op.variable] = local
        else:
            raise CodegenError(
                f"cannot generate code for pipeline operator {type(op).__name__}"
            )
    body.append(f"{indent}_selection.append(_i)")
    outputs = [
        (variable, local, f"_o{index}")
        for index, (variable, local) in enumerate(ctx.locals.items())
    ]
    for _, local, out in outputs:
        body.append(f"{indent}{out}.append({local})")
    lines = [f"def {name}(_batch):"]
    namespace = dict(CODEGEN_GLOBALS)
    for path, (column_local, path_constant) in ctx.columns.items():
        namespace[path_constant] = path
        lines.append(
            f"    {column_local} = _batch.path_values("
            f"{ctx.scan_variable!r}, {path_constant})"
        )
    lines.append("    _selection = []")
    for _, _, out in outputs:
        lines.append(f"    {out} = []")
    lines.append("    for _i in range(_batch.length):")
    lines.extend(body)
    if outputs:
        extra = (
            "{" + ", ".join(f"{variable!r}: {out}" for variable, _, out in outputs) + "}"
        )
        lines.append(f"    return _batch.take(_selection, extra_vars={extra})")
    else:
        lines.append("    return _batch.take(_selection)")
    source = "\n".join(lines)
    try:
        code = compile(source, filename=f"<generated:{name}>", mode="exec")
        exec(code, namespace)  # noqa: S102 - this is the point of code generation
    except SyntaxError as exc:  # pragma: no cover - would be a codegen bug
        raise CodegenError(f"generated code failed to compile: {exc}\n{source}") from exc
    return GeneratedPipeline(source, namespace[name])


def run_generated_batches(
    batches: Iterable[ColumnBatch], plan: QueryPlan
) -> Iterator[ColumnBatch]:
    """Run the fused pipeline batch-at-a-time (the ``codegen`` executor core).

    Direct (path-column) batches go through :func:`generate_direct_pipeline`;
    row-backed batches reuse the row code generator per batch.  Both pipeline
    flavours are compiled lazily, at most once each per plan execution.
    """
    if not plan.pipeline:
        for batch in batches:
            if batch.length:
                yield batch
        return
    row_pipeline: Optional[GeneratedPipeline] = None
    direct_pipeline: Optional[GeneratedPipeline] = None
    for batch in batches:
        if not batch.length:
            continue
        if batch.paths:
            if direct_pipeline is None:
                direct_pipeline = generate_direct_pipeline(plan)
            out = direct_pipeline.function(batch)
        else:
            if row_pipeline is None:
                row_pipeline = generate_pipeline(plan)
            rows = list(row_pipeline(batch.iter_rows()))
            out = ColumnBatch.from_rows(rows) if rows else None
        if out is not None and out.length:
            yield out


# unused scan_variable kept for clarity of the generated source header
def _describe(plan: QueryPlan) -> str:  # pragma: no cover - debugging helper
    return generate_pipeline(plan).source
