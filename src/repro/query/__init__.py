"""Analytical query engine: expressions, plans, interpreted and code-generating executors."""

from .codegen import GeneratedPipeline, generate_pipeline
from .executor import execute_plan
from .expressions import And, Call, Compare, Field, Literal, Or, SomeSatisfies, Var, lift
from .plan import Query, QueryPlan
from .pushdown import ColumnPredicate, PushdownSpec, attach_pushdown

__all__ = [
    "And",
    "Call",
    "ColumnPredicate",
    "Compare",
    "Field",
    "GeneratedPipeline",
    "Literal",
    "Or",
    "PushdownSpec",
    "Query",
    "QueryPlan",
    "SomeSatisfies",
    "Var",
    "attach_pushdown",
    "execute_plan",
    "generate_pipeline",
    "lift",
]
