"""Analytical query engine: expressions, plans, interpreted and code-generating executors."""

from .codegen import GeneratedPipeline, generate_pipeline
from .executor import execute_plan
from .expressions import And, Call, Compare, Field, Literal, Or, SomeSatisfies, Var, lift
from .plan import Query, QueryPlan

__all__ = [
    "And",
    "Call",
    "Compare",
    "Field",
    "GeneratedPipeline",
    "Literal",
    "Or",
    "Query",
    "QueryPlan",
    "SomeSatisfies",
    "Var",
    "execute_plan",
    "generate_pipeline",
    "lift",
]
