"""Analytical query engine: expressions, plans, interpreted and code-generating executors."""

from ..model.errors import UnknownFunctionError
from .codegen import GeneratedPipeline, generate_pipeline
from .executor import execute_plan
from .expressions import (
    And,
    Call,
    Compare,
    Field,
    Literal,
    Or,
    SomeSatisfies,
    Var,
    lift,
    register_function,
)
from .optimizer import CostModel, OptimizerReport, optimize_plan
from .plan import Query, QueryPlan
from .pushdown import ColumnPredicate, PushdownSpec, attach_pushdown
from .stats import DatasetStatistics, collect_dataset_statistics

__all__ = [
    "And",
    "Call",
    "ColumnPredicate",
    "Compare",
    "CostModel",
    "DatasetStatistics",
    "Field",
    "GeneratedPipeline",
    "Literal",
    "OptimizerReport",
    "Or",
    "PushdownSpec",
    "Query",
    "QueryPlan",
    "SomeSatisfies",
    "UnknownFunctionError",
    "Var",
    "attach_pushdown",
    "collect_dataset_statistics",
    "execute_plan",
    "generate_pipeline",
    "lift",
    "optimize_plan",
    "register_function",
]
