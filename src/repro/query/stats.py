"""Dataset-level statistics for cost-based access-path selection.

The storage layer collects per-component column statistics whenever a
component is written (flush or merge — see
:class:`~repro.lsm.component.ComponentMetadata` and the builders in
:mod:`repro.lsm.component` / :mod:`repro.columnar.base`).  This module
aggregates them into one :class:`DatasetStatistics` snapshot the optimizer
(:mod:`repro.query.optimizer`) consumes:

* reconciliation-free **record-count estimates** (disk components plus the
  in-memory component; duplicate keys across components make this an upper
  bound, which is documented on :attr:`DatasetStatistics.record_count`);
* **merged per-column statistics** — histograms re-bucketed, distinct
  sketches OR-ed — keyed by dotted, array-free field path;
* **physical shape** numbers the cost model needs: columnar leaf-group counts
  (the per-lookup decode unit, §4.6) and row-layout data-page counts;
* **secondary-index entry counts**.

Statistics describe only *flushed* data.  A fresh dataset whose records still
sit in the memtable reports ``has_statistics() == False`` and the optimizer
falls back to the full scan, which is always correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.schema import field_name_steps
from ..storage.stats import ColumnStatistics

#: Fallback selectivity per operator when a predicate's column has no
#: statistics (unseen path, string range, fresh dataset...).  Deliberately
#: conservative (high) so an unstatistiqued index plan is not chosen blindly.
DEFAULT_OP_SELECTIVITY = {
    "==": 0.1,
    "!=": 0.9,
    "<": 1.0 / 3.0,
    "<=": 1.0 / 3.0,
    ">": 1.0 / 3.0,
    ">=": 1.0 / 3.0,
}


@dataclass
class DatasetStatistics:
    """An aggregated, read-only statistics snapshot of one dataset.

    Attributes:
        dataset: The dataset name.
        disk_record_count: Entries across all on-disk components, anti-matter
            included (each component counts its own entries, so a key updated
            in two components counts twice).
        disk_antimatter_count: Anti-matter entries across all components.
        memtable_record_count: Entries currently buffered in memory (invisible
            to column statistics until the next flush).
        columnar_groups: Total leaf groups across columnar components (0 for
            row layouts).
        row_data_pages: Total data pages across row components (0 for
            columnar layouts).
        stats_component_count: How many components carried column statistics.
        component_count: Total on-disk components.
        columns: Merged per-column statistics, keyed by dotted path.
        index_entries: Secondary-index entry counts, keyed by index name.
    """

    dataset: str
    disk_record_count: int = 0
    disk_antimatter_count: int = 0
    memtable_record_count: int = 0
    columnar_groups: int = 0
    row_data_pages: int = 0
    stats_component_count: int = 0
    component_count: int = 0
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)
    index_entries: Dict[str, int] = field(default_factory=dict)

    # -- derived numbers ---------------------------------------------------------------
    @property
    def record_count(self) -> int:
        """Estimated live records (upper bound: cross-component duplicates count)."""
        return max(
            0,
            self.disk_record_count
            - self.disk_antimatter_count
            + self.memtable_record_count,
        )

    def has_statistics(self) -> bool:
        """True when at least one flushed component carried column statistics."""
        return self.stats_component_count > 0 and bool(self.columns)

    def average_group_records(self) -> float:
        """Mean records per columnar leaf group (the §4.6 point-lookup unit)."""
        if self.columnar_groups <= 0:
            return float(self.disk_record_count or 1)
        return self.disk_record_count / self.columnar_groups

    def average_page_records(self) -> float:
        """Mean records per row-layout data page (the row point-lookup unit)."""
        if self.row_data_pages <= 0:
            return float(self.disk_record_count or 1)
        return self.disk_record_count / self.row_data_pages

    # -- column access -----------------------------------------------------------------
    def column(self, path) -> Optional[ColumnStatistics]:
        """Merged statistics for a column, or None when never observed.

        Args:
            path: A dotted string ("user.name") or a
                :class:`~repro.model.path.FieldPath`; array steps are
                stripped, matching how statistics are keyed.
        """
        return self.columns.get(_dotted(path))

    def estimate_predicate_selectivity(self, predicate, record_count: Optional[int] = None) -> float:
        """Estimated fraction of records passing one pushed-down predicate.

        Args:
            predicate: A :class:`~repro.query.pushdown.ColumnPredicate`.
            record_count: Denominator override (defaults to
                :attr:`record_count`).

        Returns:
            A fraction in ``[0, 1]``; the per-operator default when the
            column has no statistics.
        """
        total = self.record_count if record_count is None else record_count
        stats = self.column(predicate.path)
        if stats is None or total <= 0:
            return DEFAULT_OP_SELECTIVITY.get(predicate.op, 0.5)
        return stats.value_fraction(predicate.op, predicate.value, total)

    def estimate_selectivity(self, predicates: Sequence) -> float:
        """Combined selectivity of a conjunction of pushed predicates.

        Range predicates on the *same* column are intersected into one
        ``[low, high]`` interval and estimated with a single histogram query —
        multiplying ``P(x >= low)`` by ``P(x <= high)`` under independence
        would wildly overestimate narrow ranges.  Distinct columns multiply
        (independence assumed, as everywhere in textbook cost models).
        """
        by_path: Dict[str, List] = {}
        selectivity = 1.0
        for predicate in predicates:
            if predicate.op in ("<", "<=", ">", ">=", "=="):
                by_path.setdefault(_dotted(predicate.path), []).append(predicate)
            else:
                selectivity *= self.estimate_predicate_selectivity(predicate)
        for path, group in by_path.items():
            if len(group) == 1:
                selectivity *= self.estimate_predicate_selectivity(group[0])
                continue
            selectivity *= self._combined_range_selectivity(path, group)
        return selectivity

    def _combined_range_selectivity(self, path: str, predicates: List) -> float:
        stats = self.columns.get(path)
        total = self.record_count
        if stats is None or total <= 0:
            # No statistics: a both-sided range defaults tighter than the
            # one-sided per-op default would compound to.
            return 0.25 if len(predicates) > 1 else DEFAULT_OP_SELECTIVITY.get(
                predicates[0].op, 0.5
            )
        bounds = intersect_predicate_bounds(predicates)
        if bounds is None:
            return 0.0  # cross-type conjunction: unsatisfiable
        low, high = bounds
        equalities = [p for p in predicates if p.op == "=="]
        if equalities:
            values = {p.value for p in equalities}
            if len(values) > 1:
                return 0.0  # x == a AND x == b, a != b
            return stats.value_fraction("==", equalities[0].value, total)
        if low is not None and high is not None and not isinstance(low, str):
            try:
                if low > high:
                    return 0.0
            except TypeError:
                pass
        return stats.range_selectivity(low, high, total)

    def describe(self) -> str:
        """One-line summary used by ``Query.explain``."""
        if not self.has_statistics():
            return (
                f"statistics: ABSENT (no flushed components; "
                f"{self.memtable_record_count} memtable records)"
            )
        return (
            f"statistics: {self.stats_component_count}/{self.component_count} "
            f"components, ~{self.record_count} records, "
            f"{len(self.columns)} columns, "
            f"indexes={{{', '.join(f'{k}: {v}' for k, v in sorted(self.index_entries.items()))}}}"
        )


def _dotted(path) -> str:
    """Normalize a FieldPath / dotted string to the statistics key format."""
    steps = getattr(path, "steps", None)
    if steps is not None:
        return ".".join(field_name_steps(steps))
    return str(path)


def comparison_type_rank(value) -> int:
    """SQL++ comparison-type bucket of a literal (matches the index order).

    Values of different buckets never compare (cross-type comparisons yield
    NULL), so bounds from different buckets make a conjunction unsatisfiable.
    """
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 0
    if isinstance(value, str):
        return 2
    return 3


def intersect_predicate_bounds(predicates: Sequence):
    """Fold range/equality predicates on one column into ``(low, high)``.

    Args:
        predicates: ``ColumnPredicate``s with ops in ``==/</<=/>/>=``.

    Returns:
        ``(low, high)`` (either side possibly None = open), or None when the
        conjunction is unsatisfiable — bounds of different comparison-type
        buckets (``x > 5 AND x > 'm'``, ``x == True AND x >= 1``) can never
        both hold, since cross-type comparisons are NULL.  Type-guarding here
        is what keeps the fold itself from raising TypeError on ``max(5,
        'm')``.
    """
    low = None
    high = None
    for predicate in predicates:
        p_low, p_high = predicate.bounds()
        if p_low is not None:
            if low is not None and comparison_type_rank(low) != comparison_type_rank(p_low):
                return None
            low = p_low if low is None else max(low, p_low)
        if p_high is not None:
            if high is not None and comparison_type_rank(high) != comparison_type_rank(p_high):
                return None
            high = p_high if high is None else min(high, p_high)
    if (
        low is not None
        and high is not None
        and comparison_type_rank(low) != comparison_type_rank(high)
    ):
        return None
    return low, high


def collect_dataset_statistics(dataset) -> DatasetStatistics:
    """Aggregate component-level statistics for one dataset.

    Walks every partition's component stack and merges the column statistics
    each component recorded when it was built; no data pages are read.  Called
    (and cached) by :meth:`repro.store.dataset.Dataset.statistics`.

    Args:
        dataset: A :class:`repro.store.dataset.Dataset`.

    Returns:
        A fresh :class:`DatasetStatistics` snapshot.
    """
    statistics = DatasetStatistics(dataset=dataset.name)
    merged: Dict[str, ColumnStatistics] = {}
    for partition in dataset.partitions:
        statistics.memtable_record_count += len(partition.memtable)
        for component in partition.components:
            statistics.component_count += 1
            statistics.disk_record_count += component.metadata.record_count
            statistics.disk_antimatter_count += component.metadata.antimatter_count
            groups = getattr(component, "groups", None)
            if groups is not None:
                statistics.columnar_groups += len(groups)
            else:
                statistics.row_data_pages += component.metadata.extra.get(
                    "data_page_count", 0
                )
            if component.metadata.column_stats:
                statistics.stats_component_count += 1
            for path, stats in component.metadata.column_stats.items():
                existing = merged.get(path)
                merged[path] = stats if existing is None else existing.merge(stats)
    statistics.columns = merged
    statistics.index_entries = {
        name: index.entry_count for name, index in dataset.secondary_indexes.items()
    }
    return statistics
