"""Vectorized kernels shared by the batch executors.

The batch executor (:mod:`repro.query.batch_executor`) and the fused batch
code generator exchange plain Python lists as column vectors.  The kernels in
this module are the only place the optional NumPy dependency is touched: when
NumPy is importable (and not disabled via ``REPRO_DISABLE_NUMPY``), homogeneous
fixed-width vectors take vectorized fast paths; otherwise — or for vectors the
fast paths cannot handle *exactly* — everything falls back to pure Python with
bit-identical results.

Exactness is the contract here, not just speed.  The interpreted executor is
the correctness oracle (the executor-differential fuzz suite compares results
row for row), so a kernel may only engage NumPy when the answer provably
matches the scalar path:

* comparison fast paths require every value (and the literal) to be a plain
  ``int``/``float`` — ``bool`` is excluded by ``type()`` checks because SQL++
  treats booleans as incomparable with numbers, while NumPy would happily
  coerce them to 0/1;
* an int64 vector compared against a float literal (or vice versa) only
  vectorizes when the integers are exactly representable as float64, since
  Python compares int-to-float exactly and float64 casting does not;
* Python ints beyond the int64 range make ``np.asarray`` silently promote the
  whole vector to float64 (or uint64) — the dtype-kind check after ``asarray``
  detects that and routes the vector to the scalar path;
* aggregation folds (`sum`/`min`/`max`) use Python's builtin left folds, which
  perform the *same sequence of operations* as the row-at-a-time aggregator —
  NumPy's pairwise summation would differ in the last ulp for floats — and
  NaN-containing float vectors drop to the per-value loop because ``min``/
  ``max`` are not associative under NaN.
"""

from __future__ import annotations

import os
from typing import List, Optional

from .expressions import _COMPARE_OPS, compare_values

#: Set (to any non-empty value) to force the pure-Python fallback even when
#: NumPy is importable — the CI executor-matrix job runs the differential
#: suite once per mode so the optional dependency can never change results.
DISABLE_ENV = "REPRO_DISABLE_NUMPY"

try:  # pragma: no cover - exercised via both CI matrix legs
    if os.environ.get(DISABLE_ENV):
        _numpy = None
    else:
        import numpy as _numpy
except ImportError:  # pragma: no cover - numpy-less environments
    _numpy = None

#: The active NumPy handle (None = pure-Python mode).  Tests flip this via
#: :func:`use_numpy` to assert kernel equivalence on the same inputs.
_np = _numpy

#: Vectors shorter than this stay on the scalar path (ndarray setup overhead).
MIN_VECTOR_LENGTH = 16

#: Largest integer magnitude exactly representable as a float64.
_FLOAT64_EXACT_INT = 2 ** 53

_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def numpy_available() -> bool:
    """True when NumPy was importable (regardless of the active toggle)."""
    return _numpy is not None


def numpy_active() -> bool:
    """True when the kernels are currently using NumPy fast paths."""
    return _np is not None


def use_numpy(enabled: bool) -> bool:
    """Toggle the NumPy fast paths at runtime (for tests); returns the new state."""
    global _np
    _np = _numpy if enabled else None
    return _np is not None


def _numeric_shape(values: list):
    """``(has_int, has_float)`` when every value is a plain int/float, else None.

    ``type()`` rather than ``isinstance`` deliberately excludes ``bool`` (a
    subclass of ``int``): SQL++ comparison semantics treat booleans as
    incomparable with numbers, and the aggregators skip them entirely.
    """
    has_int = has_float = False
    for value in values:
        kind = type(value)
        if kind is int:
            has_int = True
        elif kind is float:
            has_float = True
        else:
            return None
    return has_int, has_float


def _exact_as_array(values: list, literal, has_int: bool, has_float: bool) -> bool:
    """Would comparing via a NumPy array give exactly Python's answer?"""
    if not has_float and type(literal) is int:
        # Pure integer comparison stays exact as long as the int64 *scalar*
        # conversion of the literal cannot overflow; values beyond int64 are
        # caught after ``asarray`` by the dtype-kind check (NumPy silently
        # promotes them to float64 rather than raising).
        return _INT64_MIN <= literal <= _INT64_MAX
    if type(literal) is int and abs(literal) > _FLOAT64_EXACT_INT:
        return False
    if has_int and has_float:
        for value in values:
            if type(value) is int and abs(value) > _FLOAT64_EXACT_INT:
                return False
    elif has_int:  # int values vs float literal: float64 cast must be exact
        for value in values:
            if abs(value) > _FLOAT64_EXACT_INT:
                return False
    return True


def compare_with_literal(op: str, values: list, literal) -> list:
    """Vectorized ``compare_values(op, v, literal)`` over a column vector.

    Returns one ``True``/``False``/``None`` entry per value, identical to
    mapping :func:`~repro.query.expressions.compare_values`.
    """
    if (
        _np is not None
        and len(values) >= MIN_VECTOR_LENGTH
        and type(literal) in (int, float)
    ):
        shape = _numeric_shape(values)
        if shape is not None and _exact_as_array(values, literal, *shape):
            has_float = shape[1]
            try:
                array = _np.asarray(values)
            except (OverflowError, ValueError):  # ragged or unconvertible
                array = None
            # The dtype must reflect the Python types exactly: an int-only
            # vector that came back as anything but int64 (e.g. float64 or
            # uint64 because a value overflowed int64) would compare with
            # rounding, so it drops to the scalar path.
            if array is not None and array.dtype.kind == ("f" if has_float else "i"):
                return _COMPARE_OPS[op](array, literal).tolist()
    return [compare_values(op, value, literal) for value in values]


def selection_from_mask(mask: list) -> List[int]:
    """Indices whose mask entry is exactly ``True`` (NULL/MISSING never pass)."""
    if _np is not None and len(mask) >= MIN_VECTOR_LENGTH:
        # Only the exact booleans (and None, which never passes) may take the
        # array path: np.asarray(..., dtype=bool) would let truthy non-True
        # entries like 1 or MISSING through, breaking ``is True`` semantics.
        if all(value is True or value is False or value is None for value in mask):
            array = _np.asarray([value is True for value in mask], dtype=bool)
            return array.nonzero()[0].tolist()
    return [index for index, value in enumerate(mask) if value is True]


def gather(column: list, indices: List[int]) -> list:
    """Select ``column[i]`` for each selection index (duplicates allowed)."""
    return [column[index] for index in indices]


def _has_nan(values: list) -> bool:
    if _np is not None and len(values) >= MIN_VECTOR_LENGTH:
        try:
            array = _np.asarray(values)
        except (OverflowError, ValueError):
            array = None
        if array is not None:
            if array.dtype.kind == "f":
                return bool(_np.isnan(array).any())
            if array.dtype.kind == "i":
                return False
    return any(value != value for value in values)


def aggregate_add_many(aggregator, values: list) -> None:
    """Feed a whole column vector into one running aggregator.

    ``aggregator`` is a :class:`repro.query.executor._Aggregator` (duck-typed:
    ``function``/``count``/``total``/``minimum``/``maximum``/``add``).  The
    fast paths below perform the same left-fold operations as repeated
    ``add`` calls, so the result is bit-identical — including float rounding
    — and any vector they cannot handle exactly drops to the per-value loop.
    """
    function = aggregator.function
    if function == "count":
        # COUNT counts every row, MISSING and NULL included (SQL++ COUNT(x)
        # equals COUNT(*) in this engine, matching the scalar aggregator).
        aggregator.count += len(values)
        return
    if not values:
        return
    shape = _numeric_shape(values)
    if function == "countv":
        # Internal partial-AVG count (see repro.shard.partial): counts the
        # contributing numeric non-bool values, exactly like the scalar
        # aggregator.  Must be handled explicitly — falling through to the
        # min/max branch below would also accept all-string vectors.
        if shape is not None:
            aggregator.count += len(values)
            return
    elif function in ("sum", "avg"):
        if shape is not None:
            aggregator.count += len(values)
            # sum(values, start) is the exact left fold the scalar path does.
            aggregator.total = sum(values, aggregator.total)
            return
    elif shape is not None or all(type(value) is str for value in values):
        if shape is None or not _has_nan(values):
            aggregator.count += len(values)
            if function == "min":
                best = min(values)
                aggregator.minimum = (
                    best
                    if aggregator.minimum is None
                    else min(aggregator.minimum, best)
                )
            else:
                best = max(values)
                aggregator.maximum = (
                    best
                    if aggregator.maximum is None
                    else max(aggregator.maximum, best)
                )
            return
    for value in values:
        aggregator.add(value)
