"""Cost-based access-path selection (the Figure 15 crossover, automated).

The paper's §6.3.3 evaluation shows secondary-index access beating full scans
only at low selectivities; before this module the user had to pick the access
path by hand (``Query.use_index``).  The optimizer chooses automatically from
the statistics the storage layer collects at flush/merge time
(:mod:`repro.query.stats`), considering three candidates:

(a) **columnar scan** — the full scan with PR 1's pushdown (projection
    pruning, vectorized predicate pre-filtering, min/max group skipping);
(b) **index fetch** — a secondary-index range access followed by sorted,
    batched point lookups into the primary index, projected to the columns
    the plan needs; the residual FILTER operators are retained, so inclusive
    index bounds may safely over-approximate strict predicates;
(c) **index only** — for COUNT-style queries whose predicates are *exactly*
    subsumed by the index range and whose plan touches no other field, the
    point lookups are skipped entirely and the reconciled index entries alone
    answer the query (the subsumed FILTERs are removed from the plan).

Cost model
----------
Costs are abstract "record units" (1.0 ≈ the cost of pushing one record
through the reconciling scan).  They deliberately mirror where this
reproduction actually spends time:

* a scan pays a per-record reconciliation cost for *every* record, a
  per-record decode cost for each pushed-predicate column, and an assembly
  cost per surviving row and needed column;
* an index fetch pays a small per-entry cost for the index range itself, then
  a per-lookup cost proportional to the *leaf group size* — a columnar point
  lookup decodes the group's key column and linearly searches it, then
  decodes each needed column's streams (§4.6); this is what makes
  high-selectivity index plans lose (Figure 15b);
* an index-only plan pays just the per-entry cost, so it wins for covered
  COUNT queries at any selectivity where the index applies.

The estimated selectivity comes from the per-column equi-width histograms and
distinct-count sketches; when a dataset has no flushed statistics at all the
optimizer falls back to the scan, which is always correct.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Sequence, Tuple

from ..core.schema import field_name_steps
from .plan import (
    AggregateNode,
    AssignNode,
    DataScanNode,
    FilterNode,
    GroupByNode,
    IndexScanNode,
    ProjectNode,
    QueryPlan,
    UnnestNode,
    collect_expressions,
)
from .pushdown import ColumnPredicate, _as_column_predicate, _conjuncts
from .stats import intersect_predicate_bounds

#: Access-path kind tags (also used by tests and the benchmark).
PATH_SCAN = "scan"
PATH_INDEX_FETCH = "index-fetch"
PATH_INDEX_ONLY = "index-only"


@dataclass(frozen=True)
class CostModel:
    """Per-operation weights of the cost formulas, in abstract record units.

    Calibrated against this repository's measured behaviour (see
    ``benchmarks/bench_optimizer.py``): per-index-entry work is several times
    cheaper than pushing a record through the reconciling scan, while a
    columnar point lookup costs on the order of the leaf group size.
    """

    #: Reconciliation + iteration cost per scanned record (heap merge, row
    #: binding, residual filter call).
    scan_record: float = 1.0
    #: Decoding one pushed-predicate column value during the vectorized
    #: pre-filter (cheaper than generic per-record work).
    scan_predicate_value: float = 0.25
    #: Assembling one column of one surviving row into a document.
    assemble_value: float = 1.0
    #: Extra per-record decode cost of the row layouts (whole record decodes).
    row_decode: float = 2.0
    #: Per-index-entry cost (range search, reconciliation, sorting the keys).
    index_entry: float = 0.4
    #: Per-record-in-group cost of one columnar point lookup's key search
    #: (decode the group's keys, scan linearly — §4.6).
    lookup_key: float = 0.5
    #: Per-record-in-group cost of decoding one needed column in a lookup.
    lookup_value: float = 0.3
    #: Per-record-in-page cost of one row-layout point lookup.
    lookup_row: float = 1.5


DEFAULT_COST_MODEL = CostModel()


@dataclass
class AccessPathCandidate:
    """One costed access path, with its ready-to-run plan variant."""

    kind: str
    description: str
    plan: QueryPlan
    estimated_source_rows: int
    estimated_result_rows: int
    estimated_cost: float
    chosen: bool = False
    reason: str = ""
    #: Filled by :func:`analyze_candidates` (``Query.explain(analyze=True)``).
    actual_source_rows: Optional[int] = None
    actual_result_rows: Optional[int] = None
    #: Pages touched while running this candidate (device reads + buffer-cache
    #: hits), aggregated across parallel scan-pool workers — the shared
    #: ``device.stats`` counters include every worker thread's reads.
    actual_pages_read: Optional[int] = None

    def describe(self) -> str:
        marker = "=> " if self.chosen else "   "
        lines = [
            f"{marker}{self.kind}: {self.description}",
            f"      est cost={self.estimated_cost:.0f} units, "
            f"est rows: source={self.estimated_source_rows} "
            f"result={self.estimated_result_rows}",
        ]
        if self.actual_source_rows is not None:
            lines.append(
                f"      actual rows: source={self.actual_source_rows} "
                f"result={self.actual_result_rows}"
            )
        if self.actual_pages_read is not None:
            lines.append(f"      actual pages read: {self.actual_pages_read}")
        if self.reason:
            lines.append(f"      {self.reason}")
        return "\n".join(lines)


@dataclass
class OptimizerReport:
    """Why the optimizer picked what it picked (rendered by ``explain``)."""

    dataset: str
    statistics_summary: str
    selectivity: float
    candidates: List[AccessPathCandidate] = dataclass_field(default_factory=list)

    @property
    def chosen(self) -> AccessPathCandidate:
        for candidate in self.candidates:
            if candidate.chosen:
                return candidate
        return self.candidates[0]

    def describe(self) -> str:
        lines = [
            f"OPTIMIZER {self.dataset}: chose {self.chosen.kind} "
            f"(est selectivity {self.selectivity:.4%})",
            f"  {self.statistics_summary}",
        ]
        for candidate in self.candidates:
            for line in candidate.describe().splitlines():
                lines.append("  " + line)
        return "\n".join(lines)


@dataclass(frozen=True)
class _IndexRange:
    """A usable [low, high] range on one secondary index."""

    index_name: str
    low: object
    high: object
    exact: bool  # bounds are closed and equivalent to the subsumed predicates
    subsumed: Tuple[ColumnPredicate, ...]


# ======================================================================================
# Entry point
# ======================================================================================


def optimize_plan(
    store,
    plan: QueryPlan,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    force_scan: bool = False,
) -> Optional[OptimizerReport]:
    """Choose the cheapest access path for ``plan`` and rewrite it in place.

    Args:
        store: The :class:`~repro.store.datastore.Datastore` the plan will run
            against (statistics and index metadata come from its dataset).
        plan: A built plan whose source is a :class:`DataScanNode` (plans that
            already use :meth:`Query.use_index` are never rewritten).
        cost_model: Cost weights (tests may override).
        force_scan: When True only the scan candidate is considered, but the
            report still lists the rejected index paths (``Query.force_scan``).

    Returns:
        The :class:`OptimizerReport` (also attached to ``plan.optimizer``), or
        None when the plan has no data-scan source to optimize.
    """
    source = plan.source
    if not isinstance(source, DataScanNode):
        return None
    dataset = store.dataset(source.dataset)
    statistics = dataset.statistics()
    spec = source.pushdown
    predicates: List[ColumnPredicate] = list(spec.predicates) if spec is not None else []
    selectivity = statistics.estimate_selectivity(predicates)
    record_count = statistics.record_count
    result_rows = _clamp_rows(record_count * selectivity, record_count)

    layout = dataset.layout
    needed_columns = _needed_column_count(source, spec, statistics)
    # The scan candidate gets its own plan snapshot: `plan` itself is later
    # rewritten to the winner, and a candidate aliasing it would make
    # explain(analyze=True) re-run the winning plan under the scan's name.
    scan_plan = QueryPlan(source, list(plan.pipeline), plan.breakers)
    columnar = layout in ("apax", "amax")
    scan_candidate = AccessPathCandidate(
        kind=PATH_SCAN,
        description=_scan_description(layout, spec),
        plan=scan_plan,
        # Columnar scans pre-filter on the pushed predicates, so their source
        # emits ~result_rows; row layouts have no pre-filter and always emit
        # every record.
        estimated_source_rows=result_rows if (predicates and columnar) else record_count,
        estimated_result_rows=result_rows,
        estimated_cost=_scan_cost(
            cost_model, layout, record_count, result_rows, predicates, needed_columns
        ),
    )
    candidates = [scan_candidate]

    for index_range in _usable_index_ranges(dataset, statistics, predicates):
        candidates.extend(
            _index_candidates(
                dataset,
                statistics,
                plan,
                source,
                index_range,
                cost_model,
                needed_columns,
                result_rows,
            )
        )

    _choose(candidates, statistics, force_scan)
    report = OptimizerReport(
        dataset=dataset.name,
        statistics_summary=statistics.describe(),
        selectivity=selectivity,
        candidates=candidates,
    )
    chosen = report.chosen
    plan.source = chosen.plan.source
    plan.pipeline = chosen.plan.pipeline
    plan.optimizer = report
    return report


def _choose(
    candidates: List[AccessPathCandidate], statistics, force_scan: bool
) -> None:
    """Mark the winning candidate and record rejection reasons."""
    scan = candidates[0]
    if force_scan:
        scan.chosen = True
        scan.reason = "forced by Query.force_scan()"
        for candidate in candidates[1:]:
            candidate.reason = "rejected: scan forced by the query"
        return
    if not statistics.has_statistics():
        # Fresh dataset (nothing flushed yet): no histograms exist, so index
        # estimates would be guesses.  The scan is always correct and reads
        # the memtable it would have to read anyway.
        scan.chosen = True
        scan.reason = "fallback: no statistics collected yet (nothing flushed)"
        for candidate in candidates[1:]:
            candidate.reason = "rejected: no statistics to estimate selectivity"
        return
    winner = min(candidates, key=lambda candidate: candidate.estimated_cost)
    winner.chosen = True
    for candidate in candidates:
        if candidate is not winner:
            candidate.reason = (
                f"rejected: estimated {candidate.estimated_cost / max(winner.estimated_cost, 1e-9):.1f}x "
                f"the cost of {winner.kind}"
            )


# ======================================================================================
# Candidate construction
# ======================================================================================


def _scan_description(layout: str, spec) -> str:
    if layout in ("apax", "amax"):
        detail = spec.describe() if spec is not None else "none"
        return f"full {layout} scan with pushdown ({detail})"
    return f"full {layout} scan (row layout; residual filter only)"


def _scan_cost(
    model: CostModel,
    layout: str,
    record_count: int,
    result_rows: int,
    predicates: Sequence[ColumnPredicate],
    needed_columns: int,
) -> float:
    if layout in ("apax", "amax"):
        cost = record_count * model.scan_record
        cost += record_count * len(predicates) * model.scan_predicate_value
        cost += result_rows * needed_columns * model.assemble_value
        return cost
    return record_count * (model.scan_record + model.row_decode)


def _usable_index_ranges(
    dataset, statistics, predicates: Sequence[ColumnPredicate]
) -> List[_IndexRange]:
    """Index ranges derivable from the pushed predicates, type-checked."""
    ranges: List[_IndexRange] = []
    for name, index in dataset.secondary_indexes.items():
        index_steps = field_name_steps(index.path.steps)
        matching = [
            predicate
            for predicate in predicates
            if field_name_steps(predicate.path.steps) == index_steps
            and predicate.op in ("==", "<", "<=", ">", ">=")
        ]
        if not matching:
            continue
        index_range = _combine_bounds(name, matching)
        if index_range is not None:
            ranges.append(index_range)
    return ranges


def _combine_bounds(
    name: str, predicates: Sequence[ColumnPredicate]
) -> Optional[_IndexRange]:
    """Intersect the predicates into one [low, high] index range.

    Strict bounds (``<``, ``>``) *widen* to the inclusive value — the range
    may over-fetch (the bound value itself), and the residual FILTER drops
    it.  They are never narrowed: the indexed column is dynamically typed, so
    ``x > 5`` can be satisfied by ``5.5`` and rewriting to ``>= 6`` would
    silently lose it.  A range built from any strict bound is therefore not
    ``exact`` and never eligible for an index-only plan (which has no
    residual filter left to repair over-fetching).

    Bounds of different comparison-type buckets make the conjunction
    unsatisfiable (:func:`~repro.query.stats.intersect_predicate_bounds`); no
    index candidate is built then — the scan's residual filters produce the
    correct empty result without special-casing an empty range here.
    """
    bounds = intersect_predicate_bounds(predicates)
    if bounds is None:
        return None
    low, high = bounds
    if low is None and high is None:
        return None
    exact = all(predicate.op not in ("<", ">") for predicate in predicates)
    return _IndexRange(name, low, high, exact, tuple(predicates))


def _index_candidates(
    dataset,
    statistics,
    plan: QueryPlan,
    source: DataScanNode,
    index_range: _IndexRange,
    model: CostModel,
    needed_columns: int,
    result_rows: int,
) -> List[AccessPathCandidate]:
    record_count = statistics.record_count
    range_selectivity = statistics.estimate_selectivity(index_range.subsumed)
    fetched_rows = _clamp_rows(record_count * range_selectivity, record_count)
    layout = dataset.layout

    fetch_plan = QueryPlan(
        IndexScanNode(
            source.dataset,
            source.variable,
            index_range.index_name,
            index_range.low,
            index_range.high,
            fields=source.fields,
            keys_only=False,
        ),
        list(plan.pipeline),
        plan.breakers,
    )
    if layout in ("apax", "amax"):
        group = statistics.average_group_records()
        lookup_cost = group * model.lookup_key + needed_columns * group * model.lookup_value
    else:
        lookup_cost = statistics.average_page_records() * model.lookup_row
    candidates = [
        AccessPathCandidate(
            kind=PATH_INDEX_FETCH,
            description=(
                f"index {index_range.index_name} "
                f"[{index_range.low} .. {index_range.high}] "
                f"+ sorted batched point lookups (fields={source.fields})"
            ),
            plan=fetch_plan,
            estimated_source_rows=fetched_rows,
            estimated_result_rows=min(result_rows, fetched_rows),
            estimated_cost=fetched_rows * (model.index_entry + lookup_cost),
        )
    ]

    keys_only_plan = _keys_only_plan(plan, source, index_range)
    if keys_only_plan is not None:
        candidates.append(
            AccessPathCandidate(
                kind=PATH_INDEX_ONLY,
                description=(
                    f"index {index_range.index_name} "
                    f"[{index_range.low} .. {index_range.high}] keys only "
                    f"(no primary-index fetch; subsumed filters removed)"
                ),
                plan=keys_only_plan,
                estimated_source_rows=fetched_rows,
                estimated_result_rows=fetched_rows,
                estimated_cost=fetched_rows * model.index_entry,
            )
        )
    return candidates


def _keys_only_plan(
    plan: QueryPlan, source: DataScanNode, index_range: _IndexRange
) -> Optional[QueryPlan]:
    """The index-only plan variant, or None when it would be incorrect.

    Eligibility (all must hold, checked syntactically — never heuristically):

    * the index bounds are *exact* (closed bounds equivalent to the subsumed
      predicates), because removed FILTERs can no longer repair a widened
      range;
    * every pipeline FILTER consists solely of conjuncts subsumed by the
      range — a partially-subsumed FILTER cannot be dropped, and a retained
      one could not be evaluated on key-only rows;
    * there are no ASSIGN/UNNEST operators (they read record fields);
    * the first breaker *replaces* the rows (GROUP BY / aggregate / project)
      — without one, the key-only rows themselves would become the query
      output, silently dropping every non-key field;
    * after dropping the subsumed FILTERs, no remaining expression references
      the scan variable at all (bare or by path) — COUNT(*)-style breakers.
    """
    if not index_range.exact:
        return None
    if not plan.breakers or not isinstance(
        plan.breakers[0], (AggregateNode, GroupByNode, ProjectNode)
    ):
        return None
    subsumed = set(index_range.subsumed)
    for op in plan.pipeline:
        if isinstance(op, (AssignNode, UnnestNode)):
            return None
        if not isinstance(op, FilterNode):
            return None
        conjuncts = list(_conjuncts(op.predicate))
        as_predicates = [
            _as_column_predicate(conjunct, source.variable) for conjunct in conjuncts
        ]
        if all(predicate in subsumed for predicate in as_predicates):
            continue  # fully subsumed by the index range: drop it
        # A partially-subsumed FILTER can neither be dropped nor evaluated on
        # key-only rows, so there is no "retain it" branch: the whole plan is
        # ineligible.  The emitted pipeline is therefore always empty.
        return None
    for expression in collect_expressions([], plan.breakers):
        if source.variable in expression.referenced_variables():
            return None
    return QueryPlan(
        IndexScanNode(
            source.dataset,
            source.variable,
            index_range.index_name,
            index_range.low,
            index_range.high,
            fields=[],
            keys_only=True,
        ),
        [],
        plan.breakers,
    )


# ======================================================================================
# Helpers
# ======================================================================================


def _clamp_rows(estimate: float, record_count: int) -> int:
    return int(max(0, min(record_count, round(estimate))))


def _needed_column_count(source: DataScanNode, spec, statistics) -> int:
    """How many columns the plan materializes per surviving row."""
    if spec is not None and spec.paths is not None:
        return max(1, len(spec.paths))
    if source.fields is not None:
        return max(1, len(source.fields)) if source.fields else 0
    return max(1, len(statistics.columns))


# ======================================================================================
# EXPLAIN ANALYZE support
# ======================================================================================


def analyze_candidates(store, report: OptimizerReport, executor: str = "interpreted") -> None:
    """Execute every candidate plan and record its actual row counts.

    Fills ``actual_source_rows`` (rows the access path produced),
    ``actual_result_rows`` (rows surviving the residual pipeline), and
    ``actual_pages_read`` (pages touched: device reads plus buffer-cache
    hits) on each candidate, so ``Query.explain(store, analyze=True)`` can
    report estimated vs. actual cardinalities and I/O for the chosen *and*
    the rejected paths.  The page delta is taken from the store's shared
    device counters after the source is fully materialized, so reads issued
    by parallel scan-pool workers are included rather than undercounted.
    """
    from .executor import prepare_plan, run_interpreted_pipeline, source_rows

    for candidate in report.candidates:
        prepare_plan(store, candidate.plan)
        before = store.io_snapshot()
        rows = list(source_rows(store, candidate.plan))
        survivors = list(run_interpreted_pipeline(rows, candidate.plan.pipeline))
        delta = store.io_stats.delta_since(before)
        candidate.actual_source_rows = len(rows)
        candidate.actual_result_rows = len(survivors)
        candidate.actual_pages_read = delta.pages_read + delta.cache_hits
