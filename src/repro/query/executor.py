"""Query execution: the interpreted engine, the pipeline breakers, and sources.

Two executors share the same sources and breakers:

* the **interpreted** executor mimics AsterixDB's Hyracks model as described in
  §5: operators process a *batch* of tuples at a time and materialize the
  batch between operators (the per-tuple interpretation and materialization
  overheads are exactly what made Q2-Interpreted slow in Figure 10);
* the **code-generating** executor (:mod:`repro.query.codegen`) fuses the
  pipelining operators into one generated Python function.

Both stop at pipeline breakers (GROUP BY / ORDER BY / aggregate), which are
executed by the shared engine code below.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Optional

from ..model.errors import QueryError
from ..model.values import MISSING
from ..obs import annotate, current_trace, record_span, span
from .expressions import Expression, Subquery, join_key, truthy
from .plan import (
    AggregateNode,
    AssignNode,
    DataScanNode,
    FilterNode,
    GroupByNode,
    IndexScanNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    ProjectNode,
    QueryPlan,
    UnnestNode,
    WindowNode,
    collect_expressions,
)

#: Batch size of the interpreted (Hyracks-like) executor.
INTERPRETED_BATCH_SIZE = 256

#: Rows per :class:`~repro.query.batch.ColumnBatch` in the batch executors.
DEFAULT_BATCH_SIZE = 1024

#: Executor names accepted by :func:`execute_plan` (``codegen-batch`` is the
#: explicit spelling of the default fused batch mode).
EXECUTORS = ("interpreted", "batch", "codegen", "codegen-batch")


def describe_executor(executor: str, batch_size: Optional[int] = None) -> str:
    """One EXPLAIN line describing how a plan will be executed."""
    if executor == "interpreted":
        return f"EXECUTOR interpreted (row batches of {INTERPRETED_BATCH_SIZE})"
    size = batch_size or DEFAULT_BATCH_SIZE
    if executor == "batch":
        return f"EXECUTOR batch (column batches of {size})"
    if executor in ("codegen", "codegen-batch"):
        return f"EXECUTOR {executor} (fused column batches of {size})"
    raise QueryError(f"unknown executor {executor!r}")


# -- sources ----------------------------------------------------------------------------


def source_rows(store, plan: QueryPlan) -> Iterator[dict]:
    """Yield the plan's source tuples (dicts binding the scan variable).

    Args:
        store: The datastore to read from.
        plan: The plan whose source node drives the read — a full scan
            (with optional pushdown), an index fetch, or an index-only scan.

    Yields:
        One ``{variable: document}`` binding per source row; index-only
        sources bind ``{variable: {pk_field: key}}`` (§4.6).
    """
    source = plan.source
    dataset = store.dataset(source.dataset)
    if isinstance(source, DataScanNode):
        # The scan consumes batches the storage layer already pre-filtered
        # and column-pruned according to the pushdown spec; rows arriving
        # here either passed the pushed predicates or come from sources that
        # cannot pre-filter (memtable, row layouts) and are re-checked by the
        # residual FILTER operators downstream.
        pool = getattr(store, "scan_executor", None)
        use_parallel = (
            source.parallel if source.parallel is not None else pool is not None
        )
        if use_parallel and pool is not None:
            # Fan the per-partition scans out on the datastore's scan pool;
            # every partition reads a snapshot pinned before the first row is
            # yielded, and rows merge in completion order (hash-partitioned
            # datasets have no cross-partition key order to preserve).
            rows = dataset.parallel_scan(
                source.fields, pushdown=source.pushdown, executor=pool
            )
        else:
            rows = dataset.scan(source.fields, pushdown=source.pushdown)
        for _, document in rows:
            yield {source.variable: document}
        return
    if isinstance(source, IndexScanNode):
        index = dataset.secondary_indexes.get(source.index_name)
        if index is None:
            raise QueryError(
                f"dataset {source.dataset!r} has no secondary index "
                f"{source.index_name!r}"
            )
        primary_keys = index.search_range(source.low, source.high)
        primary_keys.sort()
        if source.keys_only:
            # Index-only plan (optimizer-generated for covered COUNT-style
            # queries): the reconciled index entries alone answer the query;
            # rows carry just the primary key.
            for key in primary_keys:
                yield {source.variable: {dataset.primary_key_field: key}}
            return
        # Sorted, batched point lookups (§4.6): keys ascend so consecutive
        # lookups hit the same leaves through the buffer cache, and the
        # lookup decodes only the projected columns.  Deleted/updated-away
        # records resolve to None and are dropped here (their index entries
        # were anti-mattered, but reconciliation is per-entry, not global).
        for key in primary_keys:
            document = dataset.point_lookup(key, source.fields)
            if document is not None:
                yield {source.variable: document}
        return
    raise QueryError(f"unknown source node {type(source).__name__}")


# -- runtime preparation -----------------------------------------------------------------


def prepare_plan(store, plan: QueryPlan) -> None:
    """Resolve the plan's runtime state before execution (any executor).

    Two responsibilities, shared by all three executors so they can never
    disagree: point every :class:`~repro.query.expressions.Subquery` at the
    datastore (resetting uncorrelated caches), and build the hash table of
    every :class:`~repro.query.plan.JoinNode` by scanning its build side.
    """
    for expression in collect_expressions(plan.pipeline, plan.breakers):
        _bind_subqueries(expression, store)
    for op in plan.pipeline:
        if isinstance(op, JoinNode):
            _build_join_table(store, plan, op)


def _bind_subqueries(expression: Expression, store) -> None:
    if isinstance(expression, Subquery):
        expression.bind_store(store)
        return
    for child in expression.children():
        _bind_subqueries(child, store)


def _join_build_fields(plan: QueryPlan, node: JoinNode) -> Optional[List[str]]:
    """Top-level fields of the build variable referenced anywhere in the plan.

    Mirrors ``Query._pushdown_fields`` for the join's build side: None when
    the whole build document is consumed (e.g. projected bare), else the
    referenced top-level fields so the build scan can project.
    """
    fields: List[str] = []
    for expression in collect_expressions(plan.pipeline, plan.breakers):
        if node.variable in expression.referenced_bare_variables():
            return None
        for variable, path in expression.referenced_paths():
            if variable == node.variable and len(path) > 0:
                top = path.top_field
                if top and top not in fields:
                    fields.append(top)
    return fields


def _build_join_table(store, plan: QueryPlan, node: JoinNode) -> None:
    dataset = store.dataset(node.dataset)
    table: Dict[object, list] = {}
    for _, document in dataset.scan(_join_build_fields(plan, node)):
        key = join_key(node.build_key.evaluate({node.variable: document}))
        if key is None:
            continue
        table.setdefault(key, []).append(document)
    node.table = table


# -- tracing helpers ---------------------------------------------------------------------


def op_span_name(node) -> str:
    """The span name of a plan node: its class name (e.g. ``FilterNode``)."""
    return type(node).__name__


def traced_row_source(rows: Iterable[dict], source_node) -> Iterator[dict]:
    """Count rows and producer-side time of a source iterator; on exhaustion
    (or early close, e.g. under a LIMIT) records the source node's span."""
    count = 0
    elapsed = 0.0
    iterator = iter(rows)
    try:
        while True:
            started = time.perf_counter()
            try:
                row = next(iterator)
            except StopIteration:
                elapsed += time.perf_counter() - started
                return
            elapsed += time.perf_counter() - started
            count += 1
            yield row
    finally:
        record_span(
            op_span_name(source_node),
            elapsed,
            dataset=getattr(source_node, "dataset", None),
            rows_out=count,
        )


def traced_batch_source(batches, source_node):
    """Like :func:`traced_row_source` but over column batches — the span
    carries both the batch count and the total row count."""
    row_count = 0
    batch_count = 0
    elapsed = 0.0
    iterator = iter(batches)
    try:
        while True:
            started = time.perf_counter()
            try:
                batch = next(iterator)
            except StopIteration:
                elapsed += time.perf_counter() - started
                return
            elapsed += time.perf_counter() - started
            batch_count += 1
            row_count += batch.length
            yield batch
    finally:
        record_span(
            op_span_name(source_node),
            elapsed,
            dataset=getattr(source_node, "dataset", None),
            rows_out=row_count,
            batches=batch_count,
        )


# -- interpreted pipeline ----------------------------------------------------------------


def _batched(rows: Iterable[dict], batch_size: int) -> Iterator[List[dict]]:
    batch: List[dict] = []
    for row in rows:
        batch.append(row)
        if len(batch) >= batch_size:
            yield batch
            batch = []
    if batch:
        yield batch


def _apply_interpreted_op(op, current: List[dict]) -> List[dict]:
    """Apply one pipelining operator to a materialized row batch."""
    materialized: List[dict] = []
    if isinstance(op, AssignNode):
        for row in current:
            new_row = dict(row)  # materialization between operators
            new_row[op.variable] = op.expression.evaluate(row)
            materialized.append(new_row)
    elif isinstance(op, UnnestNode):
        for row in current:
            value = op.expression.evaluate(row)
            if not isinstance(value, (list, tuple)):
                continue
            for item in value:
                new_row = dict(row)
                new_row[op.variable] = item
                materialized.append(new_row)
    elif isinstance(op, FilterNode):
        for row in current:
            if truthy(op.predicate.evaluate(row)):
                materialized.append(dict(row))
    elif isinstance(op, JoinNode):
        if op.table is None:
            raise QueryError("hash join executed before prepare_plan()")
        for row in current:
            key = join_key(op.probe_key.evaluate(row))
            matches = op.table.get(key) if key is not None else None
            if not matches:
                continue
            for document in matches:
                new_row = dict(row)
                new_row[op.variable] = document
                materialized.append(new_row)
    else:
        raise QueryError(f"unsupported pipeline operator {type(op).__name__}")
    return materialized


def run_interpreted_pipeline(rows: Iterable[dict], pipeline: List) -> Iterator[dict]:
    """Apply the pipelining operators batch-at-a-time with materialization.

    When a trace is active, per-operator row counts and cumulative operator
    time are recorded as one span per pipeline node once the generator
    finishes (exhaustion or early close).
    """
    tracing = current_trace() is not None
    counts = [0] * len(pipeline)
    elapsed = [0.0] * len(pipeline)
    try:
        for batch in _batched(rows, INTERPRETED_BATCH_SIZE):
            current = batch
            for index, op in enumerate(pipeline):
                if tracing:
                    started = time.perf_counter()
                    current = _apply_interpreted_op(op, current)
                    elapsed[index] += time.perf_counter() - started
                    counts[index] += len(current)
                else:
                    current = _apply_interpreted_op(op, current)
            yield from current
    finally:
        if tracing:
            for op, rows_out, seconds in zip(pipeline, counts, elapsed):
                record_span(op_span_name(op), seconds, rows_out=rows_out)


# -- breakers ------------------------------------------------------------------------------


class _Aggregator:
    """Running state of one aggregate function.

    Besides the user-facing functions (``count``/``sum``/``min``/``max``/
    ``avg``), the internal ``countv`` function counts the *contributing*
    values — the numeric non-bool values ``sum``/``avg`` fold — and is what
    the shard coordinator uses to decompose AVG into SUM + COUNTV partials
    (:mod:`repro.shard.partial`).  It is not exposed through the builder or
    SQL++ (:data:`~repro.query.plan.AGGREGATE_FUNCTIONS` gates those).
    """

    def __init__(self, function: str) -> None:
        self.function = function
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def add(self, value) -> None:
        if self.function == "count":
            self.count += 1
            return
        if value is MISSING or value is None:
            return
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            if self.function in ("min", "max") and isinstance(value, str):
                pass
            else:
                return
        self.count += 1
        if self.function in ("sum", "avg"):
            self.total += value
        if self.function in ("min",):
            self.minimum = value if self.minimum is None else min(self.minimum, value)
        if self.function in ("max",):
            self.maximum = value if self.maximum is None else max(self.maximum, value)

    def result(self):
        if self.function in ("count", "countv"):
            return self.count
        if self.function == "sum":
            return self.total if self.count else None
        if self.function == "avg":
            return self.total / self.count if self.count else None
        if self.function == "min":
            return self.minimum
        return self.maximum


def _run_group_by(rows: Iterable[dict], node: GroupByNode) -> List[dict]:
    groups: Dict[tuple, List[_Aggregator]] = {}
    key_values: Dict[tuple, tuple] = {}
    for row in rows:
        raw = tuple(expression.evaluate(row) for _, expression in node.keys)
        key = tuple(_hashable(value) for value in raw)
        aggregators = groups.get(key)
        if aggregators is None:
            aggregators = [_Aggregator(function) for _, function, _ in node.aggregates]
            groups[key] = aggregators
            key_values[key] = raw
        elif rep_ranks(raw) < rep_ranks(key_values[key]):
            key_values[key] = raw
        for aggregator, (_, _, expression) in zip(aggregators, node.aggregates):
            aggregator.add(None if expression is None else expression.evaluate(row))
    results = []
    for key, aggregators in groups.items():
        row = {}
        for (name, _), value in zip(node.keys, key_values[key]):
            row[name] = None if value is MISSING else value
        for (name, _, _), aggregator in zip(node.aggregates, aggregators):
            row[name] = aggregator.result()
        results.append(row)
    return results


def _hashable(value):
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    if value is MISSING:
        return None
    return value


def _rep_rank(value):
    """A deterministic total order over values ``_hashable`` conflates.

    ``_hashable`` buckets ``1``/``1.0``/``True`` (and MISSING with None)
    under one group key, so *some* representative must be chosen for the
    group's output.  First-seen order depends on scan order — and differs
    between a single process and a shard merge.  Ranking by type instead
    (MISSING < None < bool < int < float < str < array < object, recursing
    into containers) makes the choice order-free: every executor and the
    shard coordinator pick the same representative, the minimum-ranked one.
    """
    if value is MISSING:
        return (0, 0)
    if value is None:
        return (1, 0)
    if isinstance(value, bool):
        return (2, 0)
    if isinstance(value, int):
        return (3, 0)
    if isinstance(value, float):
        return (4, 0)
    if isinstance(value, str):
        return (5, 0)
    if isinstance(value, (list, tuple)):
        return (6, tuple(_rep_rank(item) for item in value))
    if isinstance(value, dict):
        return (7, tuple(sorted((key, _rep_rank(item)) for key, item in value.items())))
    return (8, 0)


def rep_ranks(values) -> tuple:
    """Rank a tuple of group-key values (see :func:`_rep_rank`)."""
    return tuple(_rep_rank(value) for value in values)


def _run_aggregate(rows: Iterable[dict], node: AggregateNode) -> List[dict]:
    aggregators = [_Aggregator(function) for _, function, _ in node.aggregates]
    for row in rows:
        for aggregator, (_, _, expression) in zip(aggregators, node.aggregates):
            aggregator.add(None if expression is None else expression.evaluate(row))
    return [
        {
            name: aggregator.result()
            for (name, _, _), aggregator in zip(node.aggregates, aggregators)
        }
    ]


def _run_window(rows: Iterable[dict], node: WindowNode) -> List[dict]:
    """Evaluate window columns over each partition; preserves input order."""
    materialized = [dict(row) for row in rows]
    partitions: Dict[tuple, List[int]] = {}
    for index, row in enumerate(materialized):
        key = tuple(_hashable(e.evaluate(row)) for e in node.partition_by)
        partitions.setdefault(key, []).append(index)
    for indices in partitions.values():
        ordered = list(indices)
        for expression, descending in reversed(node.order_by):
            ordered.sort(
                key=lambda i, e=expression: _sort_key(e.evaluate(materialized[i])),
                reverse=descending,
            )
        aggregators = [_Aggregator(function) for _, function, _ in node.columns]
        if node.order_by:
            # Running frame: partition start through the current row.
            for position, index in enumerate(ordered):
                row = materialized[index]
                for (name, function, argument), aggregator in zip(
                    node.columns, aggregators
                ):
                    if function == "row_number":
                        row[name] = position + 1
                    else:
                        aggregator.add(
                            None if argument is None else argument.evaluate(row)
                        )
                        row[name] = aggregator.result()
        else:
            # Whole-partition frame; ROW_NUMBER numbers rows in input order.
            for index in indices:
                row = materialized[index]
                for (_, function, argument), aggregator in zip(
                    node.columns, aggregators
                ):
                    if function != "row_number":
                        aggregator.add(
                            None if argument is None else argument.evaluate(row)
                        )
            for position, index in enumerate(indices):
                row = materialized[index]
                for (name, function, _), aggregator in zip(node.columns, aggregators):
                    row[name] = (
                        position + 1 if function == "row_number" else aggregator.result()
                    )
    return materialized


def run_breakers(rows: Iterable[dict], breakers: List) -> List[dict]:
    """Run the pipeline-breaker suffix of a plan over the pipelined rows.

    When a trace is active every breaker records one span with its duration
    and output row count (shared by all executors and the shard
    coordinator's merge phase).
    """
    tracing = current_trace() is not None
    current: Iterable[dict] = rows
    materialized: Optional[List[dict]] = None
    for op in breakers:
        started = time.perf_counter() if tracing else 0.0
        if isinstance(op, GroupByNode):
            materialized = _run_group_by(current, op)
        elif isinstance(op, AggregateNode):
            materialized = _run_aggregate(current, op)
        elif isinstance(op, WindowNode):
            materialized = _run_window(current, op)
        elif isinstance(op, OrderByNode):
            materialized = sorted(
                list(current),
                key=lambda row: _sort_key(row.get(op.key, MISSING)),
                reverse=op.descending,
            )
        elif isinstance(op, LimitNode):
            materialized = list(current)[: op.count]
        elif isinstance(op, ProjectNode):
            materialized = [
                {
                    name: _none_if_missing(expression.evaluate(row))
                    for name, expression in op.columns
                }
                for row in current
            ]
        else:
            raise QueryError(f"unsupported breaker {type(op).__name__}")
        if tracing:
            record_span(
                op_span_name(op),
                time.perf_counter() - started,
                rows_out=len(materialized),
            )
        current = materialized
    if materialized is None:
        materialized = [dict(row) for row in current]
    return materialized


def _sort_key(value):
    # MISSING sorts strictly before NULL (AsterixDB order); keeping the two
    # distinguishable also makes the coordinator's re-sort of shard partials
    # agree with the single-process oracle on MISSING-vs-None ties.
    if value is MISSING:
        return (0, 0)
    if value is None:
        return (0, 1)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))


def _none_if_missing(value):
    return None if value is MISSING else value


# -- entry point -----------------------------------------------------------------------------


def execute_plan(
    store,
    plan: QueryPlan,
    executor: str = "codegen",
    batch_size: Optional[int] = None,
) -> List[dict]:
    """Execute a plan and return its result rows.

    Args:
        store: The datastore to run against.
        plan: A built (and possibly optimizer-rewritten) plan.
        executor: ``"interpreted"`` runs the Hyracks-style row-at-a-time
            engine (the correctness oracle); ``"batch"`` exchanges column
            batches between operators (:mod:`repro.query.batch_executor`);
            ``"codegen"`` (default; alias ``"codegen-batch"``) additionally
            fuses the pipelining prefix of every batch into one generated
            Python function (§5).  Breakers are shared.
        batch_size: Rows per column batch for the batch executors
            (default :data:`DEFAULT_BATCH_SIZE`); ignored by
            ``"interpreted"``.

    Returns:
        The materialized result rows.
    """
    with span("execute", executor=executor):
        with span("prepare"):
            prepare_plan(store, plan)
        if executor == "interpreted":
            rows = source_rows(store, plan)
            if current_trace() is not None:
                rows = traced_row_source(rows, plan.source)
            piped = run_interpreted_pipeline(rows, plan.pipeline)
            result = run_breakers(piped, plan.breakers)
        elif executor in ("batch", "codegen", "codegen-batch"):
            from .batch_executor import run_batch_plan

            result = run_batch_plan(
                store, plan, fused=executor != "batch", batch_size=batch_size
            )
        else:
            raise QueryError(f"unknown executor {executor!r}")
        annotate(rows_out=len(result))
        return result
