"""Query expressions over dynamically typed document values.

Expressions evaluate against a *tuple* — a dict mapping variable names to
values (the scan variable binds the whole document, ASSIGN/UNNEST bind more).
Semantics follow SQL++/AsterixDB: a missing field yields MISSING, comparisons
between incompatible types yield NULL (None), and NULL/MISSING filter
predicates are treated as false.

Every expression can also *compile itself to Python source*
(:meth:`Expression.to_source`), which is how the code-generation executor
(§5) builds its fused pipeline functions.
"""

from __future__ import annotations

import weakref
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..model.errors import QueryError, UnknownFunctionError
from ..model.path import FieldPath, get_path
from ..model.values import MISSING

Tuple_ = Dict[str, Any]


class Expression:
    """Base class of all query expressions."""

    def evaluate(self, row: Tuple_):  # pragma: no cover - interface
        raise NotImplementedError

    def evaluate_batch(self, batch) -> list:
        """Evaluate against a :class:`~repro.query.batch.ColumnBatch`.

        Returns one value per batch row.  The default materializes rows and
        defers to :meth:`evaluate` (only row-backed batches support that);
        vector-aware subclasses override it to stay columnar.
        """
        return [self.evaluate(row) for row in batch.iter_rows()]

    def to_source(self) -> str:  # pragma: no cover - interface
        raise NotImplementedError

    def referenced_variables(self) -> set:
        return set()

    def referenced_paths(self) -> List[Tuple[str, FieldPath]]:
        """``(variable, path)`` pairs accessed by this expression (for pushdown)."""
        return []

    def children(self) -> List["Expression"]:
        """Direct sub-expressions (for recursive plan walks, e.g. subquery binding)."""
        return []

    def referenced_bare_variables(self) -> set:
        """Variables whose *whole* value this expression consumes.

        A variable accessed only as the base of a field path is not bare —
        projection pruning may narrow it to the referenced paths.  Any bare
        use (``Var(t)`` fed to a function, compared directly, projected
        as-is...) forces the full record.  The base implementation is
        conservative so unknown expression types disable pruning.
        """
        return self.referenced_variables()

    # Convenience constructors for a fluent feel -------------------------------------
    def __eq__(self, other):  # type: ignore[override]
        return Compare("==", self, lift(other))

    def __ne__(self, other):  # type: ignore[override]
        return Compare("!=", self, lift(other))

    def __lt__(self, other):
        return Compare("<", self, lift(other))

    def __le__(self, other):
        return Compare("<=", self, lift(other))

    def __gt__(self, other):
        return Compare(">", self, lift(other))

    def __ge__(self, other):
        return Compare(">=", self, lift(other))

    def __hash__(self):
        return id(self)


def lift(value) -> Expression:
    """Wrap a plain Python value in a :class:`Literal` (expressions pass through)."""
    if isinstance(value, Expression):
        return value
    return Literal(value)


class Literal(Expression):
    """A constant value."""

    def __init__(self, value) -> None:
        self.value = value

    def evaluate(self, row: Tuple_):
        return self.value

    def evaluate_batch(self, batch) -> list:
        return [self.value] * batch.length

    def to_source(self) -> str:
        return repr(self.value)

    def __repr__(self) -> str:
        return f"Literal({self.value!r})"


class Var(Expression):
    """A reference to a bound variable (scan/assign/unnest binding)."""

    def __init__(self, name: str) -> None:
        self.name = name

    def evaluate(self, row: Tuple_):
        return row.get(self.name, MISSING)

    def evaluate_batch(self, batch) -> list:
        return batch.var_values(self.name)

    def to_source(self) -> str:
        return f"_row[{self.name!r}]"

    def referenced_variables(self) -> set:
        return {self.name}

    def field(self, path: str) -> "Field":
        return Field(self, path)

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Field(Expression):
    """Field access (possibly nested, possibly through arrays) on an expression."""

    def __init__(self, base: Expression, path: "FieldPath | str") -> None:
        self.base = base
        self.path = FieldPath.of(path)

    def evaluate(self, row: Tuple_):
        value = self.base.evaluate(row)
        if value is MISSING or value is None:
            return MISSING
        return get_path(value, self.path)

    def evaluate_batch(self, batch) -> list:
        if isinstance(self.base, Var):
            return batch.path_values(self.base.name, self.path)
        return [
            MISSING if value is MISSING or value is None else get_path(value, self.path)
            for value in self.base.evaluate_batch(batch)
        ]

    def to_source(self) -> str:
        return f"_get_path({self.base.to_source()}, {str(self.path)!r})"

    def referenced_variables(self) -> set:
        return self.base.referenced_variables()

    def referenced_paths(self) -> List[Tuple[str, FieldPath]]:
        if isinstance(self.base, Var):
            return [(self.base.name, self.path)]
        inherited = self.base.referenced_paths()
        return inherited

    def referenced_bare_variables(self) -> set:
        if isinstance(self.base, Var):
            return set()
        return self.base.referenced_bare_variables()

    def children(self) -> List[Expression]:
        return [self.base]

    def __repr__(self) -> str:
        return f"Field({self.base!r}, {str(self.path)!r})"


_COMPARE_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_NUMERIC = (int, float)

#: Mirror image of each comparison operator (``lit <op> x`` ≡ ``x <flip> lit``).
_FLIPPED_OPS = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def compare_values(op: str, left, right):
    """AsterixDB-style dynamic comparison: incompatible types yield NULL (None).

    Args:
        op: One of ``==``, ``!=``, ``<``, ``<=``, ``>``, ``>=``.
        left: Left operand (any document value, possibly MISSING).
        right: Right operand.

    Returns:
        True/False for comparable operands; None (NULL) for incomparable
        ones — except ``==``/``!=``, which are decidable across types.

    Example:
        >>> compare_values(">", 3, 2)
        True
        >>> compare_values(">", "3", 2) is None   # int vs str: NULL
        True
        >>> compare_values("!=", "3", 2)
        True
    """
    if left is MISSING or right is MISSING or left is None or right is None:
        return None
    left_numeric = isinstance(left, _NUMERIC) and not isinstance(left, bool)
    right_numeric = isinstance(right, _NUMERIC) and not isinstance(right, bool)
    compatible = (
        (left_numeric and right_numeric)
        or (isinstance(left, str) and isinstance(right, str))
        or (isinstance(left, bool) and isinstance(right, bool))
    )
    if not compatible:
        if op == "==":
            return False
        if op == "!=":
            return True
        return None
    return _COMPARE_OPS[op](left, right)


def join_key(value):
    """Canonical hash-join key for a document value.

    Two values get the same key exactly when ``compare_values("==", a, b)``
    is True: numbers share a bucket (``1`` joins ``1.0``) but booleans and
    strings do not join numbers.  NULL, MISSING, and non-scalar values map to
    None, which join probes/builds treat as "never matches" — mirroring the
    NULL semantics of the equality predicate a hash join replaces.
    """
    if value is MISSING or value is None:
        return None
    if isinstance(value, bool):
        return ("bool", value)
    if isinstance(value, _NUMERIC):
        return ("num", value)
    if isinstance(value, str):
        return ("str", value)
    return None


def in_list(needle, collection):
    """``needle IN collection`` with SQL++ semantics.

    NULL/MISSING needles yield NULL; a non-array collection yields NULL;
    otherwise True iff some element compares equal (so ``1 IN [1.0]`` holds
    but ``1 IN [true]`` does not).
    """
    if needle is MISSING or needle is None:
        return None
    if not isinstance(collection, (list, tuple)):
        return None
    return any(compare_values("==", needle, item) is True for item in collection)


class Compare(Expression):
    """A binary comparison with dynamic-typing semantics."""

    def __init__(self, op: str, left: Expression, right: Expression) -> None:
        if op not in _COMPARE_OPS:
            raise QueryError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = lift(left)
        self.right = lift(right)

    def evaluate(self, row: Tuple_):
        return compare_values(self.op, self.left.evaluate(row), self.right.evaluate(row))

    def evaluate_batch(self, batch) -> list:
        from . import kernels  # lazy: kernels imports compare_values from here

        if isinstance(self.right, Literal):
            return kernels.compare_with_literal(
                self.op, self.left.evaluate_batch(batch), self.right.value
            )
        if isinstance(self.left, Literal):
            return kernels.compare_with_literal(
                _FLIPPED_OPS[self.op], self.right.evaluate_batch(batch), self.left.value
            )
        left = self.left.evaluate_batch(batch)
        right = self.right.evaluate_batch(batch)
        return [compare_values(self.op, a, b) for a, b in zip(left, right)]

    def to_source(self) -> str:
        return (
            f"_compare({self.op!r}, {self.left.to_source()}, {self.right.to_source()})"
        )

    def referenced_variables(self) -> set:
        return self.left.referenced_variables() | self.right.referenced_variables()

    def referenced_paths(self):
        return self.left.referenced_paths() + self.right.referenced_paths()

    def referenced_bare_variables(self) -> set:
        return (
            self.left.referenced_bare_variables()
            | self.right.referenced_bare_variables()
        )

    def children(self) -> List[Expression]:
        return [self.left, self.right]

    def __repr__(self) -> str:
        return f"Compare({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    def __init__(self, *operands: Expression) -> None:
        self.operands = [lift(operand) for operand in operands]

    def evaluate(self, row: Tuple_):
        for operand in self.operands:
            if operand.evaluate(row) is not True:
                return False
        return True

    def evaluate_batch(self, batch) -> list:
        vectors = [operand.evaluate_batch(batch) for operand in self.operands]
        return [
            all(vector[index] is True for vector in vectors)
            for index in range(batch.length)
        ]

    def to_source(self) -> str:
        return "(" + " and ".join(f"({o.to_source()} is True)" for o in self.operands) + ")"

    def referenced_variables(self) -> set:
        out = set()
        for operand in self.operands:
            out |= operand.referenced_variables()
        return out

    def referenced_paths(self):
        out = []
        for operand in self.operands:
            out.extend(operand.referenced_paths())
        return out

    def referenced_bare_variables(self) -> set:
        out = set()
        for operand in self.operands:
            out |= operand.referenced_bare_variables()
        return out

    def children(self) -> List[Expression]:
        return list(self.operands)

    def __repr__(self) -> str:
        return "And(" + ", ".join(repr(operand) for operand in self.operands) + ")"


class Or(Expression):
    def __init__(self, *operands: Expression) -> None:
        self.operands = [lift(operand) for operand in operands]

    def evaluate(self, row: Tuple_):
        return any(operand.evaluate(row) is True for operand in self.operands)

    def evaluate_batch(self, batch) -> list:
        vectors = [operand.evaluate_batch(batch) for operand in self.operands]
        return [
            any(vector[index] is True for vector in vectors)
            for index in range(batch.length)
        ]

    def to_source(self) -> str:
        return "(" + " or ".join(f"({o.to_source()} is True)" for o in self.operands) + ")"

    def referenced_variables(self) -> set:
        out = set()
        for operand in self.operands:
            out |= operand.referenced_variables()
        return out

    def referenced_paths(self):
        out = []
        for operand in self.operands:
            out.extend(operand.referenced_paths())
        return out

    def referenced_bare_variables(self) -> set:
        out = set()
        for operand in self.operands:
            out |= operand.referenced_bare_variables()
        return out

    def children(self) -> List[Expression]:
        return list(self.operands)

    def __repr__(self) -> str:
        return "Or(" + ", ".join(repr(operand) for operand in self.operands) + ")"


class InList(Expression):
    """``needle IN collection`` — see :func:`in_list` for the semantics."""

    def __init__(self, needle: Expression, collection: Expression) -> None:
        self.needle = lift(needle)
        self.collection = lift(collection)

    def evaluate(self, row: Tuple_):
        return in_list(self.needle.evaluate(row), self.collection.evaluate(row))

    def evaluate_batch(self, batch) -> list:
        needles = self.needle.evaluate_batch(batch)
        collections = self.collection.evaluate_batch(batch)
        return [in_list(n, c) for n, c in zip(needles, collections)]

    def to_source(self) -> str:
        return f"_in_list({self.needle.to_source()}, {self.collection.to_source()})"

    def referenced_variables(self) -> set:
        return (
            self.needle.referenced_variables()
            | self.collection.referenced_variables()
        )

    def referenced_paths(self):
        return self.needle.referenced_paths() + self.collection.referenced_paths()

    def referenced_bare_variables(self) -> set:
        return (
            self.needle.referenced_bare_variables()
            | self.collection.referenced_bare_variables()
        )

    def children(self) -> List[Expression]:
        return [self.needle, self.collection]

    def __repr__(self) -> str:
        return f"InList({self.needle!r}, {self.collection!r})"


# -- built-in functions -----------------------------------------------------------------


def _fn_lowercase(value):
    return value.lower() if isinstance(value, str) else None


def _fn_length(value):
    if isinstance(value, (str, list, tuple, dict)):
        return len(value)
    return None


def _fn_is_array(value):
    return isinstance(value, (list, tuple))


def _fn_array_count(value):
    return len(value) if isinstance(value, (list, tuple)) else None


def _fn_array_distinct(value):
    if not isinstance(value, (list, tuple)):
        return None
    seen = []
    for item in value:
        if item not in seen and item is not None and item is not MISSING:
            seen.append(item)
    return seen


def _fn_array_contains(value, needle):
    if not isinstance(value, (list, tuple)):
        return None
    return needle in value


def _fn_array_pairs(value):
    if not isinstance(value, (list, tuple)):
        return None
    pairs = []
    items = list(value)
    for index, first in enumerate(items):
        for second in items[index + 1:]:
            pairs.append(sorted([str(first), str(second)]))
    return pairs


def _fn_some_satisfies(array, predicate):
    if not isinstance(array, (list, tuple)):
        return False
    return any(predicate(item) is True for item in array)


def _fn_coalesce(*values):
    for value in values:
        if value is not MISSING and value is not None:
            return value
    return None


FUNCTIONS: Dict[str, Callable] = {
    "lowercase": _fn_lowercase,
    "length": _fn_length,
    "is_array": _fn_is_array,
    "array_count": _fn_array_count,
    "array_distinct": _fn_array_distinct,
    "array_contains": _fn_array_contains,
    "array_pairs": _fn_array_pairs,
    "coalesce": _fn_coalesce,
}


def register_function(name: str, fn: Callable) -> None:
    """Register (or replace) a scalar function usable from ``Call`` and SQL++.

    The registry is shared by the interpreted evaluator, the code-generating
    executor, and the SQL++ frontend, so a function registered here is
    immediately callable from all three.  Arguments arrive with MISSING
    already normalized to None (as for the built-ins).

    Args:
        name: Function name; matched case-insensitively by the SQL++ parser,
            stored lowercase.
        fn: The implementation; called positionally with the evaluated
            argument values.

    Example:
        >>> register_function("double_it", lambda v: None if v is None else v * 2)
        >>> Call("double_it", Literal(21)).evaluate({})
        42
    """
    if not callable(fn):
        raise QueryError(f"register_function({name!r}): implementation is not callable")
    if not name or not name.replace("_", "a").isalnum() or name[0].isdigit():
        raise QueryError(f"register_function: invalid function name {name!r}")
    FUNCTIONS[name.lower()] = fn


class Call(Expression):
    """A call to one of the built-in SQL++-style functions."""

    def __init__(self, function: str, *arguments) -> None:
        if function not in FUNCTIONS:
            raise UnknownFunctionError(
                f"unknown function {function!r}; available built-ins: "
                + ", ".join(sorted(FUNCTIONS))
            )
        self.function = function
        self.arguments = [lift(argument) for argument in arguments]

    def evaluate(self, row: Tuple_):
        values = [argument.evaluate(row) for argument in self.arguments]
        values = [None if value is MISSING else value for value in values]
        return FUNCTIONS[self.function](*values)

    def evaluate_batch(self, batch) -> list:
        function = FUNCTIONS[self.function]
        if not self.arguments:
            return [function() for _ in range(batch.length)]
        vectors = [argument.evaluate_batch(batch) for argument in self.arguments]
        return [
            function(*(None if value is MISSING else value for value in values))
            for values in zip(*vectors)
        ]

    def to_source(self) -> str:
        arguments = ", ".join(
            f"_missing_to_none({argument.to_source()})" for argument in self.arguments
        )
        return f"_functions[{self.function!r}]({arguments})"

    def referenced_variables(self) -> set:
        out = set()
        for argument in self.arguments:
            out |= argument.referenced_variables()
        return out

    def referenced_paths(self):
        out = []
        for argument in self.arguments:
            out.extend(argument.referenced_paths())
        return out

    def referenced_bare_variables(self) -> set:
        out = set()
        for argument in self.arguments:
            out |= argument.referenced_bare_variables()
        return out

    def children(self) -> List[Expression]:
        return list(self.arguments)

    def __repr__(self) -> str:
        arguments = "".join(f", {argument!r}" for argument in self.arguments)
        return f"Call({self.function!r}{arguments})"


class SomeSatisfies(Expression):
    """``SOME item IN array SATISFIES predicate(item)`` (used by tweet Q3)."""

    def __init__(self, array: Expression, item_var: str, predicate: Expression) -> None:
        self.array = lift(array)
        self.item_var = item_var
        self.predicate = lift(predicate)

    def evaluate(self, row: Tuple_):
        array = self.array.evaluate(row)
        if not isinstance(array, (list, tuple)):
            return False
        inner = dict(row)
        for item in array:
            inner[self.item_var] = item
            if self.predicate.evaluate(inner) is True:
                return True
        return False

    def to_source(self) -> str:
        # The generated code re-binds the item variable inside a generator.
        return (
            f"_some_satisfies({self.array.to_source()}, "
            f"lambda _item, _row=_row: _eval_with(_row, {self.item_var!r}, _item, "
            f"lambda _row: {self.predicate.to_source()}))"
        )

    def referenced_variables(self) -> set:
        return self.array.referenced_variables() | (
            self.predicate.referenced_variables() - {self.item_var}
        )

    def referenced_paths(self):
        return self.array.referenced_paths() + [
            (variable, path)
            for variable, path in self.predicate.referenced_paths()
            if variable != self.item_var
        ]

    def referenced_bare_variables(self) -> set:
        return self.array.referenced_bare_variables() | (
            self.predicate.referenced_bare_variables() - {self.item_var}
        )

    def children(self) -> List[Expression]:
        return [self.array, self.predicate]

    def __repr__(self) -> str:
        return (
            f"SomeSatisfies({self.array!r}, {self.item_var!r}, {self.predicate!r})"
        )


#: Live subquery expressions, addressable from generated code by token.
_SUBQUERY_REGISTRY: "weakref.WeakValueDictionary" = weakref.WeakValueDictionary()


class Subquery(Expression):
    """A nested SELECT used as a value (scalar or collection).

    Built by the SQL++ binder around a compiled inner statement.  Before the
    outer plan runs, :func:`repro.query.executor.prepare_plan` calls
    :meth:`bind_store` so the inner query knows which datastore to read.

    *Uncorrelated* subqueries (no references to outer variables) execute once
    per outer query and cache their result.  *Correlated* ones re-execute per
    outer row with the correlated variables bound — the nested-loop fallback.

    The value is shaped by two flags: ``scalar`` unwraps the single row of an
    aggregate-only subquery to its bare value (None when empty), and
    ``column`` (when set) projects each result row to that output column —
    the binder sets it for single-column subqueries in IN/scalar position so
    element comparisons see values, not row records.
    """

    def __init__(
        self,
        compiled,
        correlated: Sequence[str] = (),
        scalar: bool = False,
        column: Optional[str] = None,
    ) -> None:
        self.compiled = compiled
        self.correlated = tuple(correlated)
        self.scalar = scalar
        self.column = column
        self._store = None
        self._plan = None
        self._cache = None
        self._cache_valid = False
        self._token = f"sq{id(self)}"
        _SUBQUERY_REGISTRY[self._token] = self

    def bind_store(self, store) -> None:
        """Point the inner query at ``store`` and reset the uncorrelated cache."""
        self._store = store
        self._cache = None
        self._cache_valid = False
        if self.correlated and self.compiled.query is not None:
            if self._plan is None:
                # Correlated plans skip pushdown: pushed predicates would be
                # evaluated at the scan, where outer bindings are not visible.
                self._plan = self.compiled.query.build_plan(pushdown=False)
            from .executor import prepare_plan

            prepare_plan(store, self._plan)

    def evaluate(self, row: Tuple_):
        if not self.correlated:
            if not self._cache_valid:
                self._cache = self._shape(
                    self.compiled.execute(self._store, executor="interpreted")
                )
                self._cache_valid = True
            return self._cache
        bindings = {name: row.get(name, MISSING) for name in self.correlated}
        return self._run_correlated(bindings)

    def _run_correlated(self, bindings):
        from .executor import run_breakers, run_interpreted_pipeline, source_rows

        if self._plan is None:
            raise QueryError("correlated subquery evaluated before bind_store()")
        plan = self._plan
        rows = ({**bindings, **row} for row in source_rows(self._store, plan))
        rows = run_interpreted_pipeline(rows, plan.pipeline)
        rows = list(run_breakers(rows, plan.breakers))
        if self.compiled.select_value:
            rows = [row[self.compiled.value_column] for row in rows]
        return self._shape(rows)

    def _shape(self, rows):
        if self.column is not None:
            rows = [
                missing_to_none(row.get(self.column, MISSING))
                if isinstance(row, dict)
                else row
                for row in rows
            ]
        if self.scalar:
            return rows[0] if rows else None
        return rows

    def to_source(self) -> str:
        return f"_subquery({self._token!r}, _row)"

    def referenced_variables(self) -> set:
        return set(self.correlated)

    def referenced_paths(self):
        return []

    def referenced_bare_variables(self) -> set:
        # Conservative: a correlated variable may be consumed whole by the
        # inner query, so outer projection pruning must keep the full record.
        return set(self.correlated)

    def __repr__(self) -> str:
        kind = "scalar " if self.scalar else ""
        tail = f", correlated={list(self.correlated)}" if self.correlated else ""
        return f"Subquery({kind}{self.compiled.text.strip()!r}{tail})"


def _codegen_subquery(token: str, row: Tuple_):
    subquery = _SUBQUERY_REGISTRY.get(token)
    if subquery is None:  # pragma: no cover - plans keep their expressions alive
        raise QueryError("subquery expression is no longer alive")
    return subquery.evaluate(row)


# -- evaluation helpers exposed to generated code ----------------------------------------


def missing_to_none(value):
    return None if value is MISSING else value


def eval_with(row: Tuple_, name: str, value, body):
    inner = dict(row)
    inner[name] = value
    return body(inner)


def truthy(value) -> bool:
    """Predicate semantics: only ``True`` passes a filter (NULL/MISSING do not)."""
    return value is True


CODEGEN_GLOBALS = {
    "_get_path": get_path,
    "_compare": compare_values,
    "_functions": FUNCTIONS,
    "_missing_to_none": missing_to_none,
    "_some_satisfies": _fn_some_satisfies,
    "_eval_with": eval_with,
    "_join_key": join_key,
    "_in_list": in_list,
    "_subquery": _codegen_subquery,
    "MISSING": MISSING,
}
