"""The end-to-end batch-vectorized executor.

Operators here exchange :class:`~repro.query.batch.ColumnBatch` objects
instead of rows.  The source comes in two flavours:

* **direct** — for columnar components, each leaf group's pruned column
  streams are turned straight into per-record value vectors (no document is
  ever assembled), with the pushed predicates and the anti-matter flags
  folded into one selection before the batch is even built.  Direct scans are
  only taken when they are provably equivalent to the reconciled row scan:
  the partition's memtables must be empty, every component must be columnar
  with the pruned paths flat in its schema
  (:func:`~repro.query.pushdown.schema_supports_direct`), and the components'
  key ranges must be pairwise disjoint — then concatenating them in
  ``min_key`` order replays exactly the k-way merge's key order with no
  reconciliation to do.  Anything else falls back to the reconciled row scan,
  batched row-wise; both kinds of batch flow through the same operators.
* **row-backed** — the reconciled scan's documents, pivoted into one column
  per bound variable.

FILTER / ASSIGN / UNNEST evaluate whole expression vectors per batch
(:meth:`~repro.query.expressions.Expression.evaluate_batch`, with NumPy
kernels from :mod:`repro.query.kernels` where exact); GROUP BY / AGGREGATE /
PROJECT consume batches directly, and any remaining breaker suffix reuses the
shared engine code from :mod:`repro.query.executor`.  The interpreted
row-at-a-time executor stays untouched as the correctness oracle.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from ..columnar.base import ColumnarComponent
from ..core.schema import field_name_steps
from ..model.path import FieldPath
from ..model.values import MISSING, TYPE_NULL
from .batch import ColumnBatch
from . import kernels
from .executor import (
    DEFAULT_BATCH_SIZE,
    _Aggregator,
    _hashable,
    _none_if_missing,
    op_span_name,
    rep_ranks,
    run_breakers,
    source_rows,
    traced_batch_source,
)
from ..obs import current_trace, record_span
from .expressions import (
    And,
    Call,
    Compare,
    Expression,
    Field,
    Literal,
    Or,
    Var,
    join_key,
)
from .plan import (
    AggregateNode,
    AssignNode,
    DataScanNode,
    FilterNode,
    GroupByNode,
    JoinNode,
    ProjectNode,
    QueryPlan,
    UnnestNode,
    collect_expressions,
)
from .pushdown import compile_predicates, schema_supports_direct

#: Expression types the direct (assembly-free) path can evaluate over path
#: columns.  SomeSatisfies re-binds rows internally, so it forces row batches.
_DIRECT_EXPRESSIONS = (Literal, Var, Field, Compare, And, Or, Call)


# ======================================================================================
# Eligibility
# ======================================================================================


def expression_supports_direct(expression: Expression) -> bool:
    """Can this expression evaluate over direct path columns (no row dicts)?"""
    if isinstance(expression, Field):
        return expression_supports_direct(expression.base)
    if isinstance(expression, Compare):
        return expression_supports_direct(
            expression.left
        ) and expression_supports_direct(expression.right)
    if isinstance(expression, (And, Or)):
        return all(expression_supports_direct(o) for o in expression.operands)
    if isinstance(expression, Call):
        return all(expression_supports_direct(a) for a in expression.arguments)
    return isinstance(expression, _DIRECT_EXPRESSIONS)


def plan_supports_direct(plan: QueryPlan) -> bool:
    """May the scan emit assembly-free (path-column-only) batches for this plan?

    Requires a pushdown spec with a pruned path set (which already proves the
    scan variable is never consumed whole), no rebinding of the scan
    variable, direct-safe expressions everywhere, and a first breaker that
    consumes batches without materializing binding rows (GROUP BY, AGGREGATE,
    or PROJECT) — ORDER BY/LIMIT-first plans keep row batches.
    """
    source = plan.source
    if not isinstance(source, DataScanNode):
        return False
    spec = source.pushdown
    if spec is None or spec.paths is None:
        return False
    for op in plan.pipeline:
        if not isinstance(op, (AssignNode, UnnestNode, FilterNode)):
            return False  # joins (and future operators) bind row documents
        if isinstance(op, (AssignNode, UnnestNode)) and op.variable == source.variable:
            return False
    if not plan.breakers:
        return False
    if not isinstance(plan.breakers[0], (GroupByNode, AggregateNode, ProjectNode)):
        return False
    return all(
        expression_supports_direct(expression)
        for expression in collect_expressions(plan.pipeline, plan.breakers)
    )


def _direct_components(snapshot, spec) -> Optional[List[ColumnarComponent]]:
    """The snapshot's components in key order, or None when direct is unsafe.

    Direct scans bypass the k-way newest-wins merge, which is only sound when
    there is nothing to reconcile: no in-memory entries and no key present in
    two components.  Pairwise-disjoint metadata key ranges (anti-matter keys
    included — they count toward a component's min/max) guarantee the latter,
    and then ``min_key`` order reproduces the merge's ascending key order.
    """
    for source in snapshot.memtable_sources:
        entries = source if isinstance(source, list) else source.entries
        if entries:
            return None
    spans: List[Tuple[object, object, ColumnarComponent]] = []
    for component in snapshot.components:
        if not isinstance(component, ColumnarComponent):
            return None
        if not schema_supports_direct(component.schema, spec.paths):
            return None
        metadata = component.metadata
        if metadata.record_count == 0 or metadata.min_key is None:
            continue
        spans.append((metadata.min_key, metadata.max_key, component))
    try:
        spans.sort(key=lambda span: span[0])
        for (_, high, _), (low, _, _) in zip(spans, spans[1:]):
            if not high < low:
                return None
    except TypeError:
        return None  # cross-type keys: ranges are inconclusive
    return [component for _, _, component in spans]


# ======================================================================================
# Sources
# ======================================================================================


def partition_batches(
    tree,
    snapshot,
    variable: str,
    fields,
    spec,
    batch_size: int,
    allow_direct: bool,
) -> Iterator[ColumnBatch]:
    """Batches for one partition; takes ownership of the pinned snapshot."""
    components = None
    if allow_direct and spec is not None and spec.paths is not None:
        components = _direct_components(snapshot, spec)
    if components is None:
        # Reconciled row scan (closes the snapshot itself), batched row-wise.
        rows = tree._scan_snapshot(snapshot, fields, spec)
        return _row_batches(rows, variable, batch_size)
    return _direct_partition_batches(snapshot, components, spec, variable, batch_size)


def _row_batches(
    rows: Iterable[Tuple[object, dict]], variable: str, batch_size: int
) -> Iterator[ColumnBatch]:
    documents: list = []
    for _, document in rows:
        documents.append(document)
        if len(documents) >= batch_size:
            yield ColumnBatch(len(documents), {variable: documents})
            documents = []
    if documents:
        yield ColumnBatch(len(documents), {variable: documents})


def _direct_partition_batches(
    snapshot, components, spec, variable: str, batch_size: int
) -> Iterator[ColumnBatch]:
    try:
        for component in components:
            yield from _component_batches(component, spec, variable, batch_size)
    finally:
        snapshot.close()


def _component_batches(
    component: ColumnarComponent, spec, variable: str, batch_size: int
) -> Iterator[ColumnBatch]:
    schema = component.schema
    compiled = (
        compile_predicates(schema, spec.predicates) if spec.predicates else []
    )
    steps_of = {
        path: tuple(path.steps) for path in spec.paths
    }
    value_columns: Dict[FieldPath, list] = {
        path: [
            column
            for column in schema.columns
            if field_name_steps(column.path) == steps
        ]
        for path, steps in steps_of.items()
    }
    pk_column = schema.pk_column
    needs_keys = any(
        column.is_primary_key
        for columns in value_columns.values()
        for column in columns
    )
    for group in component.groups:
        record_count = group.record_count
        if record_count == 0:
            continue
        if compiled and any(not cp.group_may_match(group) for cp in compiled):
            continue  # min/max pruning: nothing decoded, not even the keys
        antimatter_count = getattr(group, "antimatter_count", None)
        needs_flags = antimatter_count is None or antimatter_count > 0
        needed: Dict[int, object] = {}
        for cp in compiled:
            for column in cp.columns:
                needed[column.column_id] = column
        for columns in value_columns.values():
            for column in columns:
                needed[column.column_id] = column
        if (needs_flags or needs_keys) and pk_column.column_id not in needed:
            needed[pk_column.column_id] = pk_column
        streams = group.read_columns(list(needed.values())) if needed else {}
        keys: Optional[list] = None
        flags: Optional[List[bool]] = None
        if pk_column.column_id in streams:
            pk_defs, keys = streams[pk_column.column_id]
            if needs_flags:
                flags = [definition_level == 0 for definition_level in pk_defs]
        passes: Optional[List[bool]] = None
        for cp in compiled:
            vector = cp.evaluate(streams, record_count)
            passes = (
                vector
                if passes is None
                else [a and b for a, b in zip(passes, vector)]
            )
        if passes is None and flags is None:
            selection: Optional[List[int]] = None
            selected_count = record_count
        else:
            selection = [
                index
                for index in range(record_count)
                if (passes is None or passes[index])
                and (flags is None or not flags[index])
            ]
            selected_count = len(selection)
            if not selected_count:
                continue
        columns_data: Dict[Tuple[str, FieldPath], list] = {}
        for path, columns in value_columns.items():
            vector = _path_vector(columns, streams, keys, record_count)
            if selection is not None:
                vector = kernels.gather(vector, selection)
            columns_data[(variable, path)] = vector
        for start in range(0, selected_count, batch_size):
            end = min(start + batch_size, selected_count)
            yield ColumnBatch(
                end - start,
                {},
                {key: column[start:end] for key, column in columns_data.items()},
            )


def _path_vector(columns, streams, keys, record_count: int) -> list:
    """One value per record for a flat path, merged across union branches."""
    if len(columns) == 1 and not columns[0].is_primary_key:
        column = columns[0]
        defs, values = streams[column.column_id]
        if column.type_tag != TYPE_NULL and len(values) == record_count:
            return list(values)  # fully present: the value stream is the vector
    vector = [MISSING] * record_count
    for column in columns:
        if column.is_primary_key:
            # Key values live with the group header; anti-matter rows get a
            # key too, but those rows are dropped by the selection.
            for index in range(record_count):
                vector[index] = keys[index]
            continue
        defs, values = streams[column.column_id]
        max_def = column.max_def
        if column.type_tag == TYPE_NULL:
            for index, definition_level in enumerate(defs):
                if definition_level == max_def:
                    vector[index] = None
        else:
            value_index = 0
            for index, definition_level in enumerate(defs):
                if definition_level == max_def:
                    vector[index] = values[value_index]
                    value_index += 1
    return vector


def source_batches(
    store, plan: QueryPlan, batch_size: int = DEFAULT_BATCH_SIZE
) -> Iterator[ColumnBatch]:
    """The plan's source as column batches (direct where provably safe)."""
    source = plan.source
    if isinstance(source, DataScanNode):
        dataset = store.dataset(source.dataset)
        pool = getattr(store, "scan_executor", None)
        use_parallel = (
            source.parallel if source.parallel is not None else pool is not None
        )
        return dataset.scan_batches(
            source.variable,
            fields=source.fields,
            pushdown=source.pushdown,
            batch_size=batch_size,
            direct=plan_supports_direct(plan),
            executor=pool if (use_parallel and pool is not None) else None,
        )
    return _binding_batches(source_rows(store, plan), batch_size)


def _binding_batches(rows: Iterable[dict], batch_size: int) -> Iterator[ColumnBatch]:
    chunk: List[dict] = []
    for row in rows:
        chunk.append(row)
        if len(chunk) >= batch_size:
            yield ColumnBatch.from_rows(chunk)
            chunk = []
    if chunk:
        yield ColumnBatch.from_rows(chunk)


# ======================================================================================
# Pipelining operators on batches
# ======================================================================================


def run_batch_pipeline(
    batches: Iterable[ColumnBatch], pipeline: List
) -> Iterator[ColumnBatch]:
    """Apply ASSIGN/UNNEST/FILTER vector-at-a-time, batch by batch.

    When a trace is active, one span per pipeline operator (rows out and
    cumulative operator time) is recorded as the generator finishes.
    """
    tracing = current_trace() is not None
    counts = [0] * len(pipeline)
    elapsed = [0.0] * len(pipeline)
    try:
        yield from _run_batch_pipeline(batches, pipeline, tracing, counts,
                                       elapsed)
    finally:
        if tracing:
            for op, rows_out, seconds in zip(pipeline, counts, elapsed):
                record_span(op_span_name(op), seconds, rows_out=rows_out)


def _run_batch_pipeline(
    batches: Iterable[ColumnBatch],
    pipeline: List,
    tracing: bool,
    counts: List[int],
    elapsed: List[float],
) -> Iterator[ColumnBatch]:
    for batch in batches:
        for index, op in enumerate(pipeline):
            if batch.length == 0:
                break
            started = time.perf_counter() if tracing else 0.0
            if isinstance(op, FilterNode):
                mask = op.predicate.evaluate_batch(batch)
                selection = kernels.selection_from_mask(mask)
                if len(selection) != batch.length:
                    batch = batch.take(selection)
            elif isinstance(op, AssignNode):
                batch = batch.with_var(
                    op.variable, op.expression.evaluate_batch(batch)
                )
            elif isinstance(op, UnnestNode):
                vector = op.expression.evaluate_batch(batch)
                indices: List[int] = []
                items: list = []
                for row_index, value in enumerate(vector):
                    if isinstance(value, (list, tuple)):
                        for item in value:
                            indices.append(row_index)
                            items.append(item)
                batch = batch.take(indices, extra_vars={op.variable: items})
            elif isinstance(op, JoinNode):
                vector = op.probe_key.evaluate_batch(batch)
                indices = []
                items = []
                for row_index, value in enumerate(vector):
                    key = join_key(value)
                    matches = op.table.get(key) if key is not None else None
                    if not matches:
                        continue
                    for document in matches:
                        indices.append(row_index)
                        items.append(document)
                batch = batch.take(indices, extra_vars={op.variable: items})
            if tracing:
                elapsed[index] += time.perf_counter() - started
                counts[index] += batch.length
        if batch.length:
            yield batch


# ======================================================================================
# Breakers on batches
# ======================================================================================


def _batch_group_by(batches: Iterable[ColumnBatch], node: GroupByNode) -> List[dict]:
    groups: Dict[tuple, List[_Aggregator]] = {}
    key_values: Dict[tuple, tuple] = {}
    for batch in batches:
        key_vectors = [
            expression.evaluate_batch(batch) for _, expression in node.keys
        ]
        agg_vectors = [
            None if expression is None else expression.evaluate_batch(batch)
            for _, _, expression in node.aggregates
        ]
        for index in range(batch.length):
            raw = tuple(vector[index] for vector in key_vectors)
            key = tuple(_hashable(value) for value in raw)
            aggregators = groups.get(key)
            if aggregators is None:
                aggregators = [
                    _Aggregator(function) for _, function, _ in node.aggregates
                ]
                groups[key] = aggregators
                key_values[key] = raw
            elif rep_ranks(raw) < rep_ranks(key_values[key]):
                key_values[key] = raw
            for aggregator, vector in zip(aggregators, agg_vectors):
                aggregator.add(None if vector is None else vector[index])
    results = []
    for key, aggregators in groups.items():
        row = {}
        for (name, _), value in zip(node.keys, key_values[key]):
            row[name] = None if value is MISSING else value
        for (name, _, _), aggregator in zip(node.aggregates, aggregators):
            row[name] = aggregator.result()
        results.append(row)
    return results


def _batch_aggregate(batches: Iterable[ColumnBatch], node: AggregateNode) -> List[dict]:
    aggregators = [_Aggregator(function) for _, function, _ in node.aggregates]
    specs = list(zip(aggregators, node.aggregates))
    for batch in batches:
        for aggregator, (_, _, expression) in specs:
            if expression is None:
                # COUNT(*) counts rows; other aggregates of the missing
                # expression add None per row, which they skip anyway.
                if aggregator.function == "count":
                    aggregator.count += batch.length
            else:
                kernels.aggregate_add_many(
                    aggregator, expression.evaluate_batch(batch)
                )
    return [
        {
            name: aggregator.result()
            for (name, _, _), aggregator in zip(node.aggregates, aggregators)
        }
    ]


def _batch_project(batches: Iterable[ColumnBatch], node: ProjectNode) -> List[dict]:
    rows: List[dict] = []
    for batch in batches:
        vectors = [
            (name, expression.evaluate_batch(batch))
            for name, expression in node.columns
        ]
        for index in range(batch.length):
            rows.append(
                {name: _none_if_missing(vector[index]) for name, vector in vectors}
            )
    return rows


def run_batch_breakers(batches: Iterable[ColumnBatch], breakers: List) -> List[dict]:
    """Run the breaker suffix; the first breaker consumes batches natively."""
    if not breakers:
        return [row for batch in batches for row in batch.iter_rows()]
    first = breakers[0]
    started = time.perf_counter()
    if isinstance(first, GroupByNode):
        rows = _batch_group_by(batches, first)
    elif isinstance(first, AggregateNode):
        rows = _batch_aggregate(batches, first)
    elif isinstance(first, ProjectNode):
        rows = _batch_project(batches, first)
    else:
        # ORDER BY / LIMIT first: materialize rows and share the engine code.
        rows = [row for batch in batches for row in batch.iter_rows()]
        return run_breakers(rows, breakers)
    if current_trace() is not None:
        # The natively-consumed first breaker never reaches run_breakers, so
        # its span (vectorized=True) is recorded here.
        record_span(
            op_span_name(first),
            time.perf_counter() - started,
            rows_out=len(rows),
            vectorized=True,
        )
    return run_breakers(rows, breakers[1:])


# ======================================================================================
# Entry point
# ======================================================================================


def run_batch_plan(
    store,
    plan: QueryPlan,
    fused: bool = False,
    batch_size: Optional[int] = None,
) -> List[dict]:
    """Execute a plan end-to-end over column batches.

    ``fused=False`` is the vector-at-a-time ``"batch"`` executor;
    ``fused=True`` is the ``"codegen"`` executor, which compiles the whole
    pipelining prefix into one generated per-batch function
    (:func:`repro.query.codegen.run_generated_batches`).
    """
    size = batch_size or DEFAULT_BATCH_SIZE
    batches = source_batches(store, plan, size)
    tracing = current_trace() is not None
    if tracing:
        batches = traced_batch_source(batches, plan.source)
    if fused:
        from .codegen import run_generated_batches

        if tracing:
            # The fused pipeline runs as one generated function, so per-op
            # timings are unobservable; marker spans keep every plan node
            # represented exactly once in the trace.
            for op in plan.pipeline:
                record_span(op_span_name(op), 0.0, fused=True)
        piped = run_generated_batches(batches, plan)
    else:
        piped = run_batch_pipeline(batches, plan.pipeline)
    return run_batch_breakers(piped, plan.breakers)
