"""Scan pushdown: projection pruning and vectorized predicate pre-filtering.

The paper's query speedups come from reading only the columns a query touches
and from avoiding per-tuple interpretation.  This module implements the
plan-rewrite half of that story plus the machinery the columnar cursors use to
evaluate pushed predicates over decoded column *batches*:

* :func:`attach_pushdown` rewrites a built :class:`~repro.query.plan.QueryPlan`
  in place: it computes the minimal set of column *paths* the plan references
  on the scan variable (finer than the existing top-level-field projection) and
  extracts the simple comparison predicates that can be evaluated directly on
  column value streams.  The result is a :class:`PushdownSpec` hung off the
  plan's :class:`~repro.query.plan.DataScanNode`.
* :func:`compile_predicates` specializes the extracted predicates against one
  *component's* schema snapshot (schemas evolve per flush, so pushability is a
  per-component decision).  A compiled predicate knows which physical columns
  can satisfy it, how to evaluate a whole column batch ``(defs, values)`` into
  a boolean pass-vector, and which group-level min/max ranges let an entire
  leaf group be skipped without decoding anything.

Safety model
------------
Pushdown is a *pre-filter*: the original FILTER operators stay in the plan and
re-check survivors after assembly, so the memtable and the row layouts
(``open``/``vector``) — whose cursors ignore the spec — fall back to the
existing assemble-then-filter path transparently.  What pushdown must never do
is drop a row the residual filter would keep.  The extraction rules below are
therefore exact, not heuristic:

* only conjuncts of the form ``Field(scan_var, path) <op> Literal`` (or the
  mirrored form) are pushed, where ``path`` contains no array steps and the
  literal is an atomic int/float/str/bool;
* a pushed predicate passes a record iff the dynamically-typed comparison
  (:func:`~repro.query.expressions.compare_values`) yields True on the value
  found at ``path`` — which, for array-free paths, is the value of the single
  matching atomic column whose definition level says "present".  Non-atomic
  values (objects/arrays at the path) and MISSING/NULL never satisfy ``==``,
  ``<``, ``<=``, ``>``, ``>=``, so those operators are always exact; ``!=``
  *is* satisfied by a non-atomic value, so it is compiled only when the
  component's schema proves the path can never hold an object or array;
* predicates are dropped entirely (not pushed) when any ASSIGN/UNNEST rebinds
  the scan variable.

Reconciliation safety lives in :mod:`repro.lsm.lsm_tree`: pass-vectors are
consulted only for the *newest-wins* winner of each key, never to skip keys
before reconciliation, so an updated row whose new version fails the predicate
can never resurrect an older passing version.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.schema import (
    ARRAY_PATH_STEP,
    AtomicNode,
    ColumnInfo,
    ObjectNode,
    Schema,
    UnionNode,
    field_name_steps,
)
from ..model.path import FieldPath
from ..model.values import TYPE_BOOLEAN, TYPE_DOUBLE, TYPE_INT64, TYPE_NULL, TYPE_STRING
from .expressions import _COMPARE_OPS, And, Compare, Expression, Field, Literal, Var, compare_values
from .plan import (
    AssignNode,
    DataScanNode,
    FilterNode,
    QueryPlan,
    UnnestNode,
    collect_expressions,
)

#: Mirror image of each comparison operator (for ``Literal <op> Field`` forms).
_FLIPPED = {"==": "==", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


# ======================================================================================
# The spec attached to a scan node
# ======================================================================================


@dataclass(frozen=True, eq=False)
class ColumnPredicate:
    """One pushable conjunct: ``path <op> value`` on the scan variable.

    Equality/hash are type-aware: ``1 == True`` in Python, but ``x == 1`` and
    ``x == True`` are different predicates under SQL++ typing — conflating
    them would let the extraction dedup (and the optimizer's subsumption
    check) drop a conjunct that is not actually implied.
    """

    path: FieldPath
    op: str
    value: object

    def _identity(self) -> tuple:
        from .stats import comparison_type_rank

        return (self.path, self.op, comparison_type_rank(self.value), self.value)

    def __eq__(self, other):
        if not isinstance(other, ColumnPredicate):
            return NotImplemented
        return self._identity() == other._identity()

    def __hash__(self) -> int:
        return hash(self._identity())

    def bounds(self) -> Tuple[Optional[object], Optional[object]]:
        """Inclusive (low, high) value bounds implied by the predicate."""
        if self.op == "==":
            return self.value, self.value
        if self.op in ("<", "<="):
            return None, self.value
        if self.op in (">", ">="):
            return self.value, None
        return None, None

    def __repr__(self) -> str:
        return f"{self.path} {self.op} {self.value!r}"


@dataclass
class PushdownSpec:
    """What a columnar scan may exploit: pruned paths + pushed predicates.

    ``fields`` is the coarse top-level projection (kept for the row layouts and
    for partial assembly); ``paths`` refines it to the exact column paths the
    plan references (None = no refinement, read everything under ``fields``);
    ``predicates`` are pre-filters evaluated on column batches before assembly.
    """

    fields: Optional[List[str]] = None
    paths: Optional[List[FieldPath]] = None
    predicates: List[ColumnPredicate] = dataclass_field(default_factory=list)

    def describe(self) -> str:
        parts = []
        if self.paths is not None:
            parts.append("paths=[" + ", ".join(str(path) for path in self.paths) + "]")
        if self.predicates:
            parts.append(
                "predicates=[" + ", ".join(repr(p) for p in self.predicates) + "]"
            )
        return "; ".join(parts) if parts else "none"


# ======================================================================================
# Plan rewrite
# ======================================================================================


def attach_pushdown(plan: QueryPlan, prune_paths: bool = True) -> QueryPlan:
    """Compute and attach a :class:`PushdownSpec` to the plan's scan node.

    ``prune_paths`` is disabled when the user overrode the projection with
    :meth:`Query.project_fields` — the explicit field list is then the only
    projection applied, exactly as before.
    """
    source = plan.source
    if not isinstance(source, DataScanNode):
        return plan
    paths: Optional[List[FieldPath]] = None
    if prune_paths and source.fields is not None:
        paths = _pruned_paths(plan, source.variable)
    source.pushdown = PushdownSpec(
        fields=source.fields,
        paths=paths,
        predicates=_extract_predicates(plan, source.variable),
    )
    return plan


def _pruned_paths(plan: QueryPlan, variable: str) -> Optional[List[FieldPath]]:
    """Minimal path set referenced on the scan variable (None = need everything)."""
    collected: List[FieldPath] = []
    for expression in collect_expressions(plan.pipeline, plan.breakers):
        # Any bare use of the scan variable — even nested inside an
        # expression that also references paths — consumes the whole record.
        if variable in expression.referenced_bare_variables():
            return None
        for ref_variable, path in expression.referenced_paths():
            if ref_variable == variable and len(path) > 0:
                collected.append(path)
    # Drop paths already covered by a (field-name-wise) prefix of another path.
    stripped = [(path, field_name_steps(path.steps)) for path in collected]
    minimal: List[FieldPath] = []
    minimal_steps: List[Tuple[str, ...]] = []
    for path, steps in sorted(stripped, key=lambda item: len(item[1])):
        if any(steps[: len(kept)] == kept for kept in minimal_steps):
            continue
        minimal.append(path)
        minimal_steps.append(steps)
    return minimal


def _extract_predicates(plan: QueryPlan, variable: str) -> List[ColumnPredicate]:
    for op in plan.pipeline:
        if isinstance(op, (AssignNode, UnnestNode)) and op.variable == variable:
            return []  # the scan variable is rebound; nothing is safe to push
    predicates: List[ColumnPredicate] = []
    for op in plan.pipeline:
        if not isinstance(op, FilterNode):
            continue
        for conjunct in _conjuncts(op.predicate):
            predicate = _as_column_predicate(conjunct, variable)
            if predicate is not None and predicate not in predicates:
                predicates.append(predicate)
    return predicates


def _conjuncts(expression: Expression):
    if isinstance(expression, And):
        for operand in expression.operands:
            yield from _conjuncts(operand)
    else:
        yield expression


def _as_column_predicate(
    expression: Expression, variable: str
) -> Optional[ColumnPredicate]:
    if not isinstance(expression, Compare):
        return None
    left, right, op = expression.left, expression.right, expression.op
    if isinstance(left, Literal) and isinstance(right, Field):
        left, right, op = right, left, _FLIPPED[op]
    if not (isinstance(left, Field) and isinstance(right, Literal)):
        return None
    if not isinstance(left.base, Var) or left.base.name != variable:
        return None
    path = left.path
    if len(path) == 0 or path.array_depth > 0:
        return None
    value = right.value
    if not isinstance(value, (int, float, str, bool)):
        return None
    return ColumnPredicate(path=path, op=op, value=value)


# ======================================================================================
# Per-component predicate compilation (used by the columnar cursors)
# ======================================================================================


def _compatible(type_tag: str, literal) -> bool:
    """Can ``compare_values`` ever relate a value of this column to the literal?"""
    if isinstance(literal, bool):
        return type_tag == TYPE_BOOLEAN
    if isinstance(literal, (int, float)):
        return type_tag in (TYPE_INT64, TYPE_DOUBLE)
    return type_tag == TYPE_STRING


def _expand_union(node) -> List[object]:
    if isinstance(node, UnionNode):
        return list(node.branches.values())
    return [node]


def _only_atomic_at(schema: Schema, steps: Tuple[str, ...]) -> bool:
    """True when no record of this component can hold an object/array at ``steps``."""
    nodes: List[object] = [schema.root]
    for step in steps:
        descended: List[object] = []
        for node in nodes:
            for candidate in _expand_union(node):
                if isinstance(candidate, ObjectNode):
                    child = candidate.children.get(step)
                    if child is not None:
                        descended.append(child)
                # Field steps applied to arrays/atomics yield MISSING — those
                # branches can never produce a value at the path at all.
        nodes = descended
    finals = [final for node in nodes for final in _expand_union(node)]
    return all(isinstance(final, AtomicNode) for final in finals)


def schema_supports_direct(schema: Schema, paths: Sequence[FieldPath]) -> bool:
    """Can every pruned path be served as one flat per-record value vector?

    The batch executor's *direct* scan skips document assembly by reading each
    requested path straight from the component's column streams.  That is only
    exact when, for this component's schema snapshot,

    * the path itself contains no array steps,
    * no column stores values *under* the path through an array (the path's
      value would be a list the flat streams cannot reproduce), and
    * no column extends the path with further field names (the path's value
      would be an assembled object).

    Paths matching no column at all are fine — every record reads MISSING,
    exactly as field access on the assembled document would.  Union branches
    (several atomic columns sharing the path) are fine too: at most one
    branch is present per record.
    """
    for path in paths:
        if path.array_depth > 0:
            return False
        steps = tuple(path.steps)
        for column in schema.columns:
            named = field_name_steps(column.path)
            if named[: len(steps)] != steps:
                continue
            if ARRAY_PATH_STEP in column.path:
                return False
            if len(named) > len(steps):
                return False
    return True


class CompiledPredicate:
    """One predicate specialized against a component's schema snapshot."""

    __slots__ = ("predicate", "columns", "low", "high")

    def __init__(self, predicate: ColumnPredicate, columns: List[ColumnInfo]) -> None:
        self.predicate = predicate
        #: Atomic columns that can hold the value at the path (empty = the
        #: predicate is constant-false for every record of this component).
        self.columns = columns
        self.low, self.high = predicate.bounds()

    def group_may_match(self, group) -> bool:
        """Min/max pruning: can any record of this leaf group pass? (§4.3)."""
        if not self.columns:
            return False
        if self.low is None and self.high is None:
            return True
        return any(
            self._column_may_match(group, column) for column in self.columns
        )

    def _column_may_match(self, group, column: ColumnInfo) -> bool:
        if column.is_primary_key:
            # Keys live with the group header, not in a value page, so the
            # layouts keep no per-column statistics for them — but the group's
            # exact key range is right there.
            try:
                if self.low is not None and group.max_key < self.low:
                    return False
                if self.high is not None and group.min_key > self.high:
                    return False
            except TypeError:
                pass  # cross-type comparison: stats are inconclusive
            return True
        low, high = self._column_bounds(column)
        return group.column_range_overlaps(column, low, high)

    def _column_bounds(self, column: ColumnInfo):
        """The predicate's bounds coerced into the column's value domain.

        AMAX compares fixed-size byte *prefixes*, and ints and doubles encode
        into mutually incomparable orderings — a float literal checked against
        an int64 column's prefixes (or vice versa) would prune groups that do
        match.  Coercion is conservative: float bounds on an int64 column are
        rounded inward (ceil for low, floor for high — exact, since the
        column's values are integers), non-finite bounds drop to unbounded.
        """
        low, high = self.low, self.high
        if column.type_tag == TYPE_DOUBLE:
            if isinstance(low, int) and not isinstance(low, bool):
                low = float(low)
            if isinstance(high, int) and not isinstance(high, bool):
                high = float(high)
        elif column.type_tag == TYPE_INT64:
            if isinstance(low, float):
                low = math.ceil(low) if math.isfinite(low) else None
            if isinstance(high, float):
                high = math.floor(high) if math.isfinite(high) else None
        return low, high

    def evaluate(self, streams: Dict[int, tuple], record_count: int) -> List[bool]:
        """Batch-evaluate the predicate: one bool per record of the group."""
        passes = [False] * record_count
        for column in self.columns:
            defs, values = streams[column.column_id]
            self._evaluate_column(column, defs, values, passes)
        return passes

    def _evaluate_column(
        self, column: ColumnInfo, defs: List[int], values: list, passes: List[bool]
    ) -> None:
        op, literal = self.predicate.op, self.predicate.value
        if column.is_primary_key:
            # Key values are always materialized (one per record, including
            # anti-matter); their runtime type is not fixed by the schema, so
            # use the generic dynamic comparison.
            for index, value in enumerate(values):
                if compare_values(op, value, literal) is True:
                    passes[index] = True
            return
        max_def = column.max_def
        if _compatible(column.type_tag, literal):
            # The fast path: the column's values are homogeneous and
            # comparable with the literal, so the dynamic-typing checks of
            # compare_values collapse to the bare Python operator over the
            # decoded batch.
            op_fn = _COMPARE_OPS[op]
            value_index = 0
            for index, definition_level in enumerate(defs):
                if definition_level == max_def:
                    if op_fn(values[value_index], literal):
                        passes[index] = True
                    value_index += 1
        elif op == "!=":
            # Incompatible atomic types: ``!=`` is True whenever a value is
            # present at all (AsterixDB's dynamic-typing semantics).
            for index, definition_level in enumerate(defs):
                if definition_level == max_def:
                    passes[index] = True
        # Incompatible types under any other operator can never compare True.


def compile_predicates(
    schema: Schema, predicates: Sequence[ColumnPredicate]
) -> List[CompiledPredicate]:
    """Specialize predicates against one component schema; unsafe ones are skipped."""
    return [
        compiled
        for compiled in (compile_predicate(schema, p) for p in predicates)
        if compiled is not None
    ]


def compile_predicate(
    schema: Schema, predicate: ColumnPredicate
) -> Optional[CompiledPredicate]:
    """Compile one predicate, or None when it cannot be evaluated safely here."""
    steps = field_name_steps(predicate.path.steps)
    if not steps:
        return None
    if predicate.op == "!=" and not _only_atomic_at(schema, steps):
        # An object/array can appear at the path; ``!=`` would pass for it,
        # which column streams alone cannot see.  Leave it to the residual
        # filter for this component.
        return None
    columns = [
        column
        for column in schema.columns
        if ARRAY_PATH_STEP not in column.path
        and column.type_tag != TYPE_NULL
        and field_name_steps(column.path) == steps
    ]
    return CompiledPredicate(predicate, columns)
