"""The column batch exchanged between batch-executor operators.

A :class:`ColumnBatch` is a fixed-length slice of the scan (or of an
operator's output) stored column-wise:

* ``vars`` maps a bound variable name to one value per row — the scan
  variable's column holds whole documents on the row-backed path, and
  ASSIGN/UNNEST append their bindings here on every path;
* ``paths`` maps ``(variable, FieldPath)`` to one value per row — these are
  *direct* columns decoded straight from a columnar component's value streams
  (:func:`repro.query.batch_executor` fills them), with :data:`MISSING` where
  the record has no value at the path.

A batch from a columnar direct scan carries only path columns — no document
is ever assembled — so materializing row dicts from it is a contract
violation, guarded by :meth:`iter_rows`.  Field access resolves through
:meth:`path_values`: an exact path column wins, then the longest prefix path
column (descending the remainder with ``get_path``), then the variable's
document column.  Each fallback reproduces the scalar
:meth:`~repro.query.expressions.Field.evaluate` semantics exactly.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..model.errors import QueryError
from ..model.path import FieldPath, get_path
from ..model.values import MISSING


class ColumnBatch:
    """A fixed-length, column-wise slice of rows."""

    __slots__ = ("length", "vars", "paths")

    def __init__(
        self,
        length: int,
        vars: Optional[Dict[str, list]] = None,
        paths: Optional[Dict[Tuple[str, FieldPath], list]] = None,
    ) -> None:
        self.length = length
        self.vars: Dict[str, list] = vars if vars is not None else {}
        self.paths: Dict[Tuple[str, FieldPath], list] = (
            paths if paths is not None else {}
        )

    # -- construction -----------------------------------------------------------------
    @classmethod
    def from_rows(cls, rows: List[dict]) -> "ColumnBatch":
        """Pivot binding dicts into one column per bound variable."""
        names: List[str] = []
        for row in rows:
            for name in row:
                if name not in names:
                    names.append(name)
        return cls(
            len(rows),
            {name: [row.get(name, MISSING) for row in rows] for name in names},
        )

    # -- column access ----------------------------------------------------------------
    def var_values(self, name: str) -> list:
        """The column of variable ``name`` (MISSING everywhere when unbound)."""
        column = self.vars.get(name)
        if column is not None:
            return column
        return [MISSING] * self.length

    def path_values(self, variable: str, path: FieldPath) -> list:
        """Per-row values of ``variable``'s field ``path``.

        Resolution mirrors :meth:`~repro.query.expressions.Field.evaluate`:
        direct path columns answer exactly or by longest prefix (the direct
        scan's pruned path set covers every referenced path by construction);
        otherwise the variable's document column is walked with ``get_path``.
        """
        exact = self.paths.get((variable, path))
        if exact is not None:
            return exact
        best: Optional[Tuple[FieldPath, list]] = None
        for (column_variable, column_path), column in self.paths.items():
            if column_variable != variable:
                continue
            if path.startswith(column_path) and (
                best is None or len(column_path) > len(best[0])
            ):
                best = (column_path, column)
        if best is not None:
            rest = FieldPath(path.steps[len(best[0].steps):])
            return [
                MISSING if value is MISSING else get_path(value, rest)
                for value in best[1]
            ]
        column = self.vars.get(variable)
        if column is not None:
            return [
                MISSING
                if document is MISSING or document is None
                else get_path(document, path)
                for document in column
            ]
        return [MISSING] * self.length

    # -- row-producing views ------------------------------------------------------------
    def iter_rows(self) -> Iterator[dict]:
        """Materialize one fresh binding dict per row (row-backed batches only)."""
        if self.paths:
            raise QueryError(
                "cannot materialize rows from a column-direct batch; "
                "the executor must keep direct plans vectorized end-to-end"
            )
        names = list(self.vars)
        columns = [self.vars[name] for name in names]
        for index in range(self.length):
            yield {name: column[index] for name, column in zip(names, columns)}

    # -- derivation ---------------------------------------------------------------------
    def with_var(self, name: str, column: list) -> "ColumnBatch":
        """A batch with one variable column added/replaced (columns shared)."""
        vars = dict(self.vars)
        vars[name] = column
        return ColumnBatch(self.length, vars, self.paths)

    def take(
        self,
        indices: List[int],
        extra_vars: Optional[Dict[str, list]] = None,
    ) -> "ColumnBatch":
        """Gather the given row indices (duplicates allowed — UNNEST fan-out).

        ``extra_vars`` columns are already aligned with ``indices`` (built in
        the same selection loop) and are attached without gathering.
        """
        vars = {
            name: [column[index] for index in indices]
            for name, column in self.vars.items()
        }
        if extra_vars:
            vars.update(extra_vars)
        paths = {
            key: [column[index] for index in indices]
            for key, column in self.paths.items()
        }
        return ColumnBatch(len(indices), vars, paths)
