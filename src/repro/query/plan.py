"""Logical query plans and the fluent :class:`Query` builder.

Plans are linear, mirroring the paper's evaluation queries: a data source
(full scan or secondary-index range access), a chain of *pipelining* operators
(ASSIGN / UNNEST / FILTER), and then the pipeline breakers (GROUP BY,
ORDER BY, LIMIT, aggregate-only, projection of the final rows).  The code
generator translates exactly the pipelining prefix and leaves the breakers to
the engine, as in §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.errors import QueryError
from .expressions import Expression, Field, Var, lift

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")

#: Functions usable in a window (``OVER``) column: the aggregates plus the
#: ranking function, which only exists in window position.
WINDOW_FUNCTIONS = AGGREGATE_FUNCTIONS + ("row_number",)


@dataclass
class DataScanNode:
    """Full scan of a dataset, binding each record to ``variable``."""

    dataset: str
    variable: str
    #: Top-level fields to project (None = all); filled in by the optimizer.
    fields: Optional[List[str]] = None
    #: Fine-grained pushdown (pruned column paths + pushed predicates); a
    #: :class:`~repro.query.pushdown.PushdownSpec` attached by the rewrite
    #: pass, or None when pushdown is disabled.
    pushdown: Optional[object] = None
    #: Fan the scan out across partitions on the datastore's scan pool:
    #: True forces it (when a pool exists), False pins the sequential path,
    #: None (default) follows the datastore configuration.
    parallel: Optional[bool] = None


@dataclass
class IndexScanNode:
    """Secondary-index range access followed by (sorted, batched) point lookups."""

    dataset: str
    variable: str
    index_name: str
    low: object = None
    high: object = None
    fields: Optional[List[str]] = None
    #: When True only the primary keys are fetched (COUNT-style queries).
    keys_only: bool = False


@dataclass
class AssignNode:
    variable: str
    expression: Expression


@dataclass
class UnnestNode:
    variable: str
    expression: Expression


@dataclass
class FilterNode:
    predicate: Expression


@dataclass
class JoinNode:
    """Inner hash join against another dataset (a pipelining operator).

    The *build* side is ``dataset``: it is scanned once and materialized into
    a hash table keyed by the canonical join key
    (:func:`repro.query.expressions.join_key`), by
    :func:`repro.query.executor.prepare_plan` right before execution.  The
    incoming pipeline rows are the *probe* side; each row fans out to one
    output row per matching build document, bound to ``variable`` (no match
    drops the row — inner-join semantics).  NULL/MISSING and non-scalar keys
    never match, mirroring ``compare_values`` equality.
    """

    dataset: str
    variable: str
    #: Evaluated against each probe (pipeline) row.
    probe_key: Expression
    #: Evaluated against ``{variable: document}`` per build document.
    build_key: Expression
    #: Statistics recorded by the optimizer's build-side choice (explain).
    build_count: Optional[int] = None
    probe_count: Optional[int] = None
    swapped: bool = False
    #: The prepared hash table (runtime state, set by ``prepare_plan``).
    table: Optional[Dict[object, list]] = None


@dataclass
class GroupByNode:
    keys: List[Tuple[str, Expression]]
    aggregates: List[Tuple[str, str, Optional[Expression]]]


@dataclass
class AggregateNode:
    aggregates: List[Tuple[str, str, Optional[Expression]]]


@dataclass
class OrderByNode:
    key: str
    descending: bool = False


@dataclass
class LimitNode:
    count: int


@dataclass
class ProjectNode:
    columns: List[Tuple[str, Expression]]


@dataclass
class WindowNode:
    """Window-function evaluation (a pipeline breaker).

    Appends one column per entry of ``columns`` to every input row, computed
    over the row's partition (rows sharing the ``partition_by`` key tuple).
    With ``order_by`` the aggregates are *running* (ROWS from the partition
    start to the current row, each row its own frame — a deliberate
    simplification of SQL's RANGE-peers default) and ROW_NUMBER is the
    1-based position in that order; without it the aggregates cover the whole
    partition and ROW_NUMBER numbers rows in input order.  The output
    preserves the input row order.
    """

    #: ``(output name, function, argument)`` — function is one of
    #: :data:`WINDOW_FUNCTIONS`; the argument is None for COUNT(*)/ROW_NUMBER.
    columns: List[Tuple[str, str, Optional[Expression]]]
    partition_by: List[Expression] = field(default_factory=list)
    #: ``(expression, descending)`` pairs, leftmost key primary.
    order_by: List[Tuple[Expression, bool]] = field(default_factory=list)


PipelineOp = object
BreakerOp = object


def _describe_aggregate(aggregate: Tuple[str, str, Optional[Expression]]) -> str:
    name, function, expression = aggregate
    return f"{name}={function}({'*' if expression is None else repr(expression)})"


def _describe_breaker(op: BreakerOp) -> str:
    """One diagnostic line per breaker (group keys, sort direction, limit...)."""
    if isinstance(op, GroupByNode):
        keys = ", ".join(f"{name}={expression!r}" for name, expression in op.keys)
        aggregates = ", ".join(_describe_aggregate(a) for a in op.aggregates)
        return f"GROUPBY keys=[{keys}] aggregates=[{aggregates}]"
    if isinstance(op, AggregateNode):
        return "AGGREGATE " + ", ".join(_describe_aggregate(a) for a in op.aggregates)
    if isinstance(op, OrderByNode):
        return f"ORDERBY {op.key} {'DESC' if op.descending else 'ASC'}"
    if isinstance(op, LimitNode):
        return f"LIMIT {op.count}"
    if isinstance(op, ProjectNode):
        columns = ", ".join(f"{name}={expression!r}" for name, expression in op.columns)
        return f"PROJECT {columns}"
    if isinstance(op, WindowNode):
        columns = ", ".join(
            f"{name}={function}({'*' if expression is None else repr(expression)})"
            for name, function, expression in op.columns
        )
        partition = ", ".join(repr(e) for e in op.partition_by)
        order = ", ".join(
            f"{e!r} {'DESC' if descending else 'ASC'}" for e, descending in op.order_by
        )
        return f"WINDOW [{columns}] partition=[{partition}] order=[{order}]"
    return type(op).__name__.replace("Node", "").upper()


def describe_join(op: JoinNode) -> str:
    """The HASH-JOIN plan line, including the optimizer's build-side verdict."""
    line = (
        f"HASH-JOIN {op.dataset} AS ${op.variable} "
        f"ON {op.probe_key!r} == {op.build_key!r}"
    )
    if op.build_count is not None and op.probe_count is not None:
        line += f" (build rows~{op.build_count}, probe rows~{op.probe_count}"
        line += ", swapped by optimizer)" if op.swapped else ")"
    elif op.swapped:
        line += " (swapped by optimizer)"
    return line


def collect_expressions(
    pipeline: Sequence[PipelineOp], breakers: Sequence[BreakerOp]
) -> List[Expression]:
    """Every expression referenced by the given plan operators.

    Shared by the coarse top-level-field projection (:meth:`Query.build_plan`)
    and the fine path pruning (:mod:`repro.query.pushdown`) so the two can
    never disagree about which operators carry expressions.
    """
    expressions: List[Expression] = []
    for op in pipeline:
        if isinstance(op, (AssignNode, UnnestNode)):
            expressions.append(op.expression)
        elif isinstance(op, FilterNode):
            expressions.append(op.predicate)
        elif isinstance(op, JoinNode):
            expressions.append(op.probe_key)
            expressions.append(op.build_key)
    for op in breakers:
        if isinstance(op, GroupByNode):
            expressions.extend(expression for _, expression in op.keys)
            expressions.extend(
                expression for _, _, expression in op.aggregates if expression
            )
        elif isinstance(op, AggregateNode):
            expressions.extend(
                expression for _, _, expression in op.aggregates if expression
            )
        elif isinstance(op, ProjectNode):
            expressions.extend(expression for _, expression in op.columns)
        elif isinstance(op, WindowNode):
            expressions.extend(op.partition_by)
            expressions.extend(expression for expression, _ in op.order_by)
            expressions.extend(
                expression for _, _, expression in op.columns if expression
            )
    return expressions


@dataclass
class QueryPlan:
    """A resolved plan: source, pipelining prefix, breaker suffix."""

    source: object
    pipeline: List[PipelineOp] = field(default_factory=list)
    breakers: List[BreakerOp] = field(default_factory=list)
    #: Attached by :func:`repro.query.optimizer.optimize_plan`: the
    #: cost/selectivity report (chosen path plus rejected alternatives).
    optimizer: Optional[object] = None

    def describe(self) -> str:
        """Human-readable plan (used by examples, tests, and ``explain``)."""
        lines = []
        source = self.source
        if isinstance(source, DataScanNode):
            lines.append(
                f"SCAN {source.dataset} AS ${source.variable} "
                f"(fields={source.fields if source.fields is not None else 'ALL'})"
            )
            if source.pushdown is not None:
                lines.append(f"  PUSHDOWN {source.pushdown.describe()}")
        else:
            keys_only = " KEYS-ONLY" if source.keys_only else ""
            lines.append(
                f"INDEX-SCAN{keys_only} {source.dataset}.{source.index_name} "
                f"[{source.low} .. {source.high}] AS ${source.variable}"
            )
        for op in self.pipeline:
            if isinstance(op, AssignNode):
                lines.append(f"ASSIGN ${op.variable} <- {op.expression!r}")
            elif isinstance(op, UnnestNode):
                lines.append(f"UNNEST ${op.variable} <- {op.expression!r}")
            elif isinstance(op, FilterNode):
                lines.append(f"FILTER {op.predicate!r}")
            elif isinstance(op, JoinNode):
                lines.append(describe_join(op))
        for op in self.breakers:
            lines.append(_describe_breaker(op))
        if self.optimizer is not None:
            lines.append(self.optimizer.describe())
        return "\n".join(lines)


class Query:
    """Fluent query builder (a small SQL++-like subset).

    Example (the paper's Figure 11 query)::

        Query("gamers", "g")
            .unnest("t", "games")
            .group_by(key=("t", Var("t")), aggregates=[("cnt", "count", None)])
            .order_by("cnt", descending=True)
            .limit(10)
    """

    def __init__(self, dataset: str, variable: str = "t") -> None:
        self.dataset_name = dataset
        self.variable = variable
        self._pipeline: List[PipelineOp] = []
        self._breakers: List[BreakerOp] = []
        self._index: Optional[Tuple[str, object, object]] = None
        self._count_only = False
        self._explicit_fields: Optional[List[str]] = None
        self._project_all = False
        self._force_scan = False
        self._parallel: Optional[bool] = None

    # -- source --------------------------------------------------------------------------
    def use_index(self, index_name: str, low=None, high=None) -> "Query":
        """Force the query through a secondary-index range access (§4.6).

        This *bypasses* the cost-based optimizer: the resulting plan always
        performs the index range search followed by sorted point lookups into
        the primary index, exactly like the paper's manual index plans.  Leave
        the access path to :meth:`execute`'s optimizer (the default) unless a
        benchmark needs this path specifically.

        Args:
            index_name: Name of a secondary index created with
                :meth:`repro.store.dataset.Dataset.create_secondary_index`.
            low: Inclusive lower bound on the indexed value (None = open).
            high: Inclusive upper bound (None = open).

        Returns:
            This query, for chaining.
        """
        self._index = (index_name, low, high)
        return self

    def force_scan(self) -> "Query":
        """Force the full-scan access path, bypassing the cost-based optimizer.

        The scan still benefits from projection/predicate pushdown; only the
        access-path *choice* is pinned.  ``explain(store)`` will show the
        index alternatives as rejected with a "forced" reason.

        Returns:
            This query, for chaining.
        """
        self._force_scan = True
        return self

    def project_fields(self, fields: Sequence[str]) -> "Query":
        """Override the planner's projection pushdown (rarely needed)."""
        self._explicit_fields = list(fields)
        return self

    def project_all(self) -> "Query":
        """Assemble whole documents, regardless of what the plan references.

        Needed when the plan's consumer reads fields the plan itself never
        mentions — e.g. a shard fragment whose breakers run at the
        coordinator: inference over the stripped fragment would prune fields
        only the coordinator's operators touch.
        """
        self._project_all = True
        return self

    def parallel_scan(self, enabled: bool = True) -> "Query":
        """Pin whether the scan fans out across partitions on the scan pool.

        By default (unset) a full scan uses the datastore's configured
        parallelism (``StoreConfig.parallel_scan_workers``); ``True`` forces
        the fan-out when a pool exists, ``False`` forces the sequential path
        regardless of configuration.  Results are identical either way —
        partitions hold disjoint keys and each partition's scan reads a
        pinned snapshot — only the execution strategy changes.

        Returns:
            This query, for chaining.
        """
        self._parallel = enabled
        return self

    # -- pipelining operators ----------------------------------------------------------------
    def assign(self, variable: str, expression: "Expression | str") -> "Query":
        self._pipeline.append(AssignNode(variable, self._resolve(expression)))
        return self

    def unnest(self, variable: str, expression: "Expression | str") -> "Query":
        self._pipeline.append(UnnestNode(variable, self._resolve(expression)))
        return self

    def where(self, predicate: Expression) -> "Query":
        self._pipeline.append(FilterNode(lift(predicate)))
        return self

    def join(
        self,
        dataset: str,
        variable: str,
        probe_key: Expression,
        build_key: Expression,
    ) -> "Query":
        """Inner hash join against ``dataset``, binding matches to ``variable``.

        ``probe_key`` is evaluated against the pipeline rows flowing in,
        ``build_key`` against each document of ``dataset`` (bound to
        ``variable``); a row is emitted per equal-key pair, with equality
        following ``compare_values`` (NULL/MISSING and non-scalars never
        match).  The optimizer may swap the two sides based on dataset
        statistics — see :meth:`optimized_plan`.

        Returns:
            This query, for chaining.
        """
        self._pipeline.append(
            JoinNode(dataset, variable, lift(probe_key), lift(build_key))
        )
        return self

    # -- breakers ---------------------------------------------------------------------------
    def group_by(
        self,
        key: "Tuple[str, Expression | str] | Sequence[Tuple[str, Expression]]",
        aggregates: Sequence[Tuple[str, str, Optional[Expression]]],
    ) -> "Query":
        keys = [key] if isinstance(key, tuple) and isinstance(key[0], str) else list(key)
        resolved_keys = [(name, self._resolve(expression)) for name, expression in keys]
        resolved_aggregates = self._resolve_aggregates(aggregates)
        self._breakers.append(GroupByNode(resolved_keys, resolved_aggregates))
        return self

    def aggregate(
        self, aggregates: Sequence[Tuple[str, str, Optional[Expression]]]
    ) -> "Query":
        self._breakers.append(AggregateNode(self._resolve_aggregates(aggregates)))
        return self

    def count(self) -> "Query":
        """``SELECT COUNT(*)`` — reads only the primary keys under columnar layouts."""
        self._count_only = True
        self._breakers.append(AggregateNode([("count", "count", None)]))
        return self

    def order_by(self, key: str, descending: bool = False) -> "Query":
        self._breakers.append(OrderByNode(key, descending))
        return self

    def limit(self, count: int) -> "Query":
        self._breakers.append(LimitNode(count))
        return self

    def select(self, columns: Sequence[Tuple[str, "Expression | str"]]) -> "Query":
        resolved = [(name, self._resolve(expression)) for name, expression in columns]
        self._breakers.append(ProjectNode(resolved))
        return self

    def window(
        self,
        columns: Sequence[Tuple[str, str, Optional["Expression | str"]]],
        partition_by: Sequence["Expression | str"] = (),
        order_by: Sequence[Tuple["Expression | str", bool]] = (),
    ) -> "Query":
        """Append window-function columns (see :class:`WindowNode`).

        Args:
            columns: ``(output name, function, argument)`` triples; the
                function must be one of :data:`WINDOW_FUNCTIONS` and the
                argument is None for ``count``/``row_number``.
            partition_by: Expressions forming the partition key.
            order_by: ``(expression, descending)`` pairs ordering rows inside
                each partition (running-aggregate / ROW_NUMBER order).

        Returns:
            This query, for chaining.
        """
        resolved_columns = []
        for name, function, expression in columns:
            if function not in WINDOW_FUNCTIONS:
                raise QueryError(f"unknown window function {function!r}")
            resolved_columns.append(
                (name, function, None if expression is None else self._resolve(expression))
            )
        self._breakers.append(
            WindowNode(
                resolved_columns,
                [self._resolve(e) for e in partition_by],
                [(self._resolve(e), bool(descending)) for e, descending in order_by],
            )
        )
        return self

    # -- resolution ----------------------------------------------------------------------------
    def _resolve(self, expression: "Expression | str") -> Expression:
        """Strings are shorthand for field access on the scan variable."""
        if isinstance(expression, str):
            return Field(Var(self.variable), expression)
        return lift(expression)

    def _resolve_aggregates(self, aggregates):
        resolved = []
        for name, function, expression in aggregates:
            if function not in AGGREGATE_FUNCTIONS:
                raise QueryError(f"unknown aggregate function {function!r}")
            resolved.append(
                (name, function, None if expression is None else self._resolve(expression))
            )
        return resolved

    # -- planning ---------------------------------------------------------------------------------
    def build_plan(self, pushdown: bool = True) -> QueryPlan:
        """Resolve the plan; ``pushdown=False`` keeps the assemble-then-filter path."""
        fields = self._explicit_fields
        if self._project_all:
            fields = None
        elif fields is None:
            fields = self._pushdown_fields()
        if self._index is not None:
            index_name, low, high = self._index
            # Index-based plans always fetch the qualifying records through
            # sorted, batched point lookups (§4.6) — even for COUNT(*) — which
            # is what makes high-selectivity index plans lose to AMAX scans in
            # Figure 15b.
            source = IndexScanNode(
                self.dataset_name,
                self.variable,
                index_name,
                low,
                high,
                fields=fields,
                keys_only=False,
            )
        else:
            source = DataScanNode(
                self.dataset_name, self.variable, fields=fields, parallel=self._parallel
            )
        plan = QueryPlan(source, list(self._pipeline), list(self._breakers))
        if pushdown and isinstance(source, DataScanNode):
            # Imported lazily to avoid a module cycle (pushdown needs the plan
            # node types defined above).
            from .pushdown import attach_pushdown

            attach_pushdown(
                plan,
                prune_paths=self._explicit_fields is None and not self._project_all,
            )
        return plan

    def _pushdown_fields(self) -> Optional[List[str]]:
        """Top-level fields of the scan variable referenced anywhere in the plan.

        Returns None (project everything) if the whole record is referenced.
        ``COUNT(*)`` queries project nothing, which lets the AMAX layout answer
        them from Page 0 alone.
        """
        expressions = collect_expressions(self._pipeline, self._breakers)
        fields: List[str] = []
        # Variables bound by ASSIGN/UNNEST derive from the scan variable; any
        # path on them was already accounted for when the binding expression
        # was analysed, so only the scan variable matters here.  A bare use of
        # the scan variable itself — even nested inside a larger expression —
        # consumes the whole record and forces full projection.
        for expression in expressions:
            if self.variable in expression.referenced_bare_variables():
                return None
            for variable, path in expression.referenced_paths():
                if variable == self.variable and len(path) > 0:
                    top = path.top_field
                    if top and top not in fields:
                        fields.append(top)
        return fields

    # -- execution ----------------------------------------------------------------------------------
    def optimized_plan(self, store, pushdown: bool = True) -> QueryPlan:
        """Build the plan and run cost-based access-path selection against ``store``.

        The optimizer (:mod:`repro.query.optimizer`) considers the pushdown
        scan, secondary-index fetch plans, and index-only plans, estimating
        selectivity from the statistics collected at flush/merge time.  Plans
        that used :meth:`use_index` are returned unoptimized (the manual
        choice stands); :meth:`force_scan` keeps the scan but still reports
        the rejected alternatives.

        Args:
            store: The datastore the plan will execute against.
            pushdown: Attach the scan-pushdown spec (as in :meth:`build_plan`).

        Returns:
            The (possibly rewritten) plan, with ``plan.optimizer`` set to an
            :class:`~repro.query.optimizer.OptimizerReport` when the source
            was a data scan.
        """
        query = self._choose_join_order(store)
        plan = query.build_plan(pushdown=pushdown)
        if self._index is None:
            from .optimizer import optimize_plan

            optimize_plan(store, plan, force_scan=self._force_scan)
        return plan

    def _choose_join_order(self, store) -> "Query":
        """Statistics-driven build-side choice for a single leading hash join.

        The smaller dataset should be the *build* side (the hashed one).  When
        the query is ``FROM a JOIN b`` with the join first in the pipeline and
        both join keys referencing only their own side, the roles are
        symmetric: scanning ``b`` and hashing ``a`` computes the same rows.
        If per-dataset statistics say the current build side is the larger
        one, return a rewritten query with the sides swapped; otherwise (or
        when statistics are unavailable) return ``self`` with the counts
        recorded on the node for ``explain()``.
        """
        join = None
        for op in self._pipeline:
            if isinstance(op, JoinNode):
                if join is not None:
                    return self  # multi-join ordering is out of scope
                join = op
        if join is None or self._pipeline[0] is not join:
            return self
        if self._index is not None or self._explicit_fields is not None:
            return self
        if join.probe_key.referenced_variables() != {self.variable}:
            return self
        if join.build_key.referenced_variables() != {join.variable}:
            return self
        try:
            build_stats = store.dataset(join.dataset).statistics()
            probe_stats = store.dataset(self.dataset_name).statistics()
        except Exception:
            return self
        if build_stats.has_statistics():
            join.build_count = build_stats.record_count
        if probe_stats.has_statistics():
            join.probe_count = probe_stats.record_count
        if not (build_stats.has_statistics() and probe_stats.has_statistics()):
            return self
        if build_stats.record_count <= probe_stats.record_count:
            return self
        swapped = Query(join.dataset, join.variable)
        swapped._pipeline = [
            JoinNode(
                self.dataset_name,
                self.variable,
                probe_key=join.build_key,
                build_key=join.probe_key,
                build_count=probe_stats.record_count,
                probe_count=build_stats.record_count,
                swapped=True,
            )
        ] + list(self._pipeline[1:])
        swapped._breakers = list(self._breakers)
        swapped._count_only = self._count_only
        swapped._project_all = self._project_all
        swapped._force_scan = self._force_scan
        swapped._parallel = self._parallel
        return swapped

    def execute(
        self,
        store,
        executor: str = "codegen",
        pushdown: bool = True,
        optimize: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> List[dict]:
        """Run the query against a datastore; returns the result rows.

        Args:
            store: The :class:`~repro.store.datastore.Datastore` to query.
            executor: ``"codegen"`` (fused pipeline over column batches, §5),
                ``"batch"`` (the same column batches, operator-at-a-time), or
                ``"interpreted"`` (row-at-a-time oracle).
            pushdown: ``False`` disables the scan-pushdown rewrite (every
                layout then assembles full projected documents and filters
                tuple-at-a-time), which is what the differential tests and
                ``bench_pushdown`` compare against.
            optimize: ``False`` skips cost-based access-path selection,
                ``True`` forces it; the default (None) follows ``pushdown``,
                so baseline comparisons stay rewrite-free end to end.
            batch_size: Rows per column batch for the batch executors
                (default :data:`~repro.query.executor.DEFAULT_BATCH_SIZE`).

        Returns:
            The result rows as a list of dicts.
        """
        from ..obs import span
        from .executor import execute_plan

        if optimize is None:
            optimize = pushdown
        with span("optimize", cost_based=bool(optimize and self._index is None)):
            if optimize and self._index is None:
                plan = self.optimized_plan(store, pushdown=pushdown)
            else:
                plan = self.build_plan(pushdown=pushdown)
        return execute_plan(store, plan, executor=executor, batch_size=batch_size)

    def explain(
        self,
        store=None,
        pushdown: bool = True,
        analyze: bool = False,
        executor: str = "codegen",
    ) -> str:
        """Render the query plan, optionally with costs and actual row counts.

        Args:
            store: When given, the cost-based optimizer runs against this
                datastore and the rendering includes the chosen access path,
                its estimated cost and row counts, and every rejected
                alternative with its rejection reason.  Without a store only
                the logical plan is rendered (no statistics are available).
            pushdown: Attach the scan-pushdown spec before explaining.
            analyze: Additionally *execute* every candidate access path and
                report estimated vs. actual row counts (requires ``store``).
            executor: Which executor the final EXECUTOR line describes
                (``"codegen"``, ``"batch"``, or ``"interpreted"`` — the same
                values :meth:`execute` accepts).

        Returns:
            A multi-line, human-readable plan description.

        Example:
            >>> from repro.query import Field, Query, Var
            >>> print(Query("d", "t").where(Field(Var("t"), "a") == 1).count()
            ...       .explain())
            SCAN d AS $t (fields=['a'])
              PUSHDOWN paths=[a]; predicates=[a == 1]
            FILTER Compare(Field(Var('t'), 'a') == Literal(1))
            AGGREGATE count=count(*)
            EXECUTOR codegen (fused column batches of 1024)
        """
        from .executor import describe_executor

        executor_line = describe_executor(executor)
        if store is None:
            plan = self.build_plan(pushdown=pushdown)
            return plan.describe() + "\n" + executor_line
        plan = self.optimized_plan(store, pushdown=pushdown)
        if analyze and plan.optimizer is not None:
            from .optimizer import analyze_candidates

            analyze_candidates(store, plan.optimizer)
        return plan.describe() + "\n" + executor_line
