"""Logical query plans and the fluent :class:`Query` builder.

Plans are linear, mirroring the paper's evaluation queries: a data source
(full scan or secondary-index range access), a chain of *pipelining* operators
(ASSIGN / UNNEST / FILTER), and then the pipeline breakers (GROUP BY,
ORDER BY, LIMIT, aggregate-only, projection of the final rows).  The code
generator translates exactly the pipelining prefix and leaves the breakers to
the engine, as in §5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..model.errors import QueryError
from .expressions import Expression, Field, Var, lift

AGGREGATE_FUNCTIONS = ("count", "sum", "min", "max", "avg")


@dataclass
class DataScanNode:
    """Full scan of a dataset, binding each record to ``variable``."""

    dataset: str
    variable: str
    #: Top-level fields to project (None = all); filled in by the optimizer.
    fields: Optional[List[str]] = None
    #: Fine-grained pushdown (pruned column paths + pushed predicates); a
    #: :class:`~repro.query.pushdown.PushdownSpec` attached by the rewrite
    #: pass, or None when pushdown is disabled.
    pushdown: Optional[object] = None
    #: Fan the scan out across partitions on the datastore's scan pool:
    #: True forces it (when a pool exists), False pins the sequential path,
    #: None (default) follows the datastore configuration.
    parallel: Optional[bool] = None


@dataclass
class IndexScanNode:
    """Secondary-index range access followed by (sorted, batched) point lookups."""

    dataset: str
    variable: str
    index_name: str
    low: object = None
    high: object = None
    fields: Optional[List[str]] = None
    #: When True only the primary keys are fetched (COUNT-style queries).
    keys_only: bool = False


@dataclass
class AssignNode:
    variable: str
    expression: Expression


@dataclass
class UnnestNode:
    variable: str
    expression: Expression


@dataclass
class FilterNode:
    predicate: Expression


@dataclass
class GroupByNode:
    keys: List[Tuple[str, Expression]]
    aggregates: List[Tuple[str, str, Optional[Expression]]]


@dataclass
class AggregateNode:
    aggregates: List[Tuple[str, str, Optional[Expression]]]


@dataclass
class OrderByNode:
    key: str
    descending: bool = False


@dataclass
class LimitNode:
    count: int


@dataclass
class ProjectNode:
    columns: List[Tuple[str, Expression]]


PipelineOp = object
BreakerOp = object


def _describe_aggregate(aggregate: Tuple[str, str, Optional[Expression]]) -> str:
    name, function, expression = aggregate
    return f"{name}={function}({'*' if expression is None else repr(expression)})"


def _describe_breaker(op: BreakerOp) -> str:
    """One diagnostic line per breaker (group keys, sort direction, limit...)."""
    if isinstance(op, GroupByNode):
        keys = ", ".join(f"{name}={expression!r}" for name, expression in op.keys)
        aggregates = ", ".join(_describe_aggregate(a) for a in op.aggregates)
        return f"GROUPBY keys=[{keys}] aggregates=[{aggregates}]"
    if isinstance(op, AggregateNode):
        return "AGGREGATE " + ", ".join(_describe_aggregate(a) for a in op.aggregates)
    if isinstance(op, OrderByNode):
        return f"ORDERBY {op.key} {'DESC' if op.descending else 'ASC'}"
    if isinstance(op, LimitNode):
        return f"LIMIT {op.count}"
    if isinstance(op, ProjectNode):
        columns = ", ".join(f"{name}={expression!r}" for name, expression in op.columns)
        return f"PROJECT {columns}"
    return type(op).__name__.replace("Node", "").upper()


def collect_expressions(
    pipeline: Sequence[PipelineOp], breakers: Sequence[BreakerOp]
) -> List[Expression]:
    """Every expression referenced by the given plan operators.

    Shared by the coarse top-level-field projection (:meth:`Query.build_plan`)
    and the fine path pruning (:mod:`repro.query.pushdown`) so the two can
    never disagree about which operators carry expressions.
    """
    expressions: List[Expression] = []
    for op in pipeline:
        if isinstance(op, (AssignNode, UnnestNode)):
            expressions.append(op.expression)
        elif isinstance(op, FilterNode):
            expressions.append(op.predicate)
    for op in breakers:
        if isinstance(op, GroupByNode):
            expressions.extend(expression for _, expression in op.keys)
            expressions.extend(
                expression for _, _, expression in op.aggregates if expression
            )
        elif isinstance(op, AggregateNode):
            expressions.extend(
                expression for _, _, expression in op.aggregates if expression
            )
        elif isinstance(op, ProjectNode):
            expressions.extend(expression for _, expression in op.columns)
    return expressions


@dataclass
class QueryPlan:
    """A resolved plan: source, pipelining prefix, breaker suffix."""

    source: object
    pipeline: List[PipelineOp] = field(default_factory=list)
    breakers: List[BreakerOp] = field(default_factory=list)
    #: Attached by :func:`repro.query.optimizer.optimize_plan`: the
    #: cost/selectivity report (chosen path plus rejected alternatives).
    optimizer: Optional[object] = None

    def describe(self) -> str:
        """Human-readable plan (used by examples, tests, and ``explain``)."""
        lines = []
        source = self.source
        if isinstance(source, DataScanNode):
            lines.append(
                f"SCAN {source.dataset} AS ${source.variable} "
                f"(fields={source.fields if source.fields is not None else 'ALL'})"
            )
            if source.pushdown is not None:
                lines.append(f"  PUSHDOWN {source.pushdown.describe()}")
        else:
            keys_only = " KEYS-ONLY" if source.keys_only else ""
            lines.append(
                f"INDEX-SCAN{keys_only} {source.dataset}.{source.index_name} "
                f"[{source.low} .. {source.high}] AS ${source.variable}"
            )
        for op in self.pipeline:
            if isinstance(op, AssignNode):
                lines.append(f"ASSIGN ${op.variable} <- {op.expression!r}")
            elif isinstance(op, UnnestNode):
                lines.append(f"UNNEST ${op.variable} <- {op.expression!r}")
            elif isinstance(op, FilterNode):
                lines.append(f"FILTER {op.predicate!r}")
        for op in self.breakers:
            lines.append(_describe_breaker(op))
        if self.optimizer is not None:
            lines.append(self.optimizer.describe())
        return "\n".join(lines)


class Query:
    """Fluent query builder (a small SQL++-like subset).

    Example (the paper's Figure 11 query)::

        Query("gamers", "g")
            .unnest("t", "games")
            .group_by(key=("t", Var("t")), aggregates=[("cnt", "count", None)])
            .order_by("cnt", descending=True)
            .limit(10)
    """

    def __init__(self, dataset: str, variable: str = "t") -> None:
        self.dataset_name = dataset
        self.variable = variable
        self._pipeline: List[PipelineOp] = []
        self._breakers: List[BreakerOp] = []
        self._index: Optional[Tuple[str, object, object]] = None
        self._count_only = False
        self._explicit_fields: Optional[List[str]] = None
        self._force_scan = False
        self._parallel: Optional[bool] = None

    # -- source --------------------------------------------------------------------------
    def use_index(self, index_name: str, low=None, high=None) -> "Query":
        """Force the query through a secondary-index range access (§4.6).

        This *bypasses* the cost-based optimizer: the resulting plan always
        performs the index range search followed by sorted point lookups into
        the primary index, exactly like the paper's manual index plans.  Leave
        the access path to :meth:`execute`'s optimizer (the default) unless a
        benchmark needs this path specifically.

        Args:
            index_name: Name of a secondary index created with
                :meth:`repro.store.dataset.Dataset.create_secondary_index`.
            low: Inclusive lower bound on the indexed value (None = open).
            high: Inclusive upper bound (None = open).

        Returns:
            This query, for chaining.
        """
        self._index = (index_name, low, high)
        return self

    def force_scan(self) -> "Query":
        """Force the full-scan access path, bypassing the cost-based optimizer.

        The scan still benefits from projection/predicate pushdown; only the
        access-path *choice* is pinned.  ``explain(store)`` will show the
        index alternatives as rejected with a "forced" reason.

        Returns:
            This query, for chaining.
        """
        self._force_scan = True
        return self

    def project_fields(self, fields: Sequence[str]) -> "Query":
        """Override the planner's projection pushdown (rarely needed)."""
        self._explicit_fields = list(fields)
        return self

    def parallel_scan(self, enabled: bool = True) -> "Query":
        """Pin whether the scan fans out across partitions on the scan pool.

        By default (unset) a full scan uses the datastore's configured
        parallelism (``StoreConfig.parallel_scan_workers``); ``True`` forces
        the fan-out when a pool exists, ``False`` forces the sequential path
        regardless of configuration.  Results are identical either way —
        partitions hold disjoint keys and each partition's scan reads a
        pinned snapshot — only the execution strategy changes.

        Returns:
            This query, for chaining.
        """
        self._parallel = enabled
        return self

    # -- pipelining operators ----------------------------------------------------------------
    def assign(self, variable: str, expression: "Expression | str") -> "Query":
        self._pipeline.append(AssignNode(variable, self._resolve(expression)))
        return self

    def unnest(self, variable: str, expression: "Expression | str") -> "Query":
        self._pipeline.append(UnnestNode(variable, self._resolve(expression)))
        return self

    def where(self, predicate: Expression) -> "Query":
        self._pipeline.append(FilterNode(lift(predicate)))
        return self

    # -- breakers ---------------------------------------------------------------------------
    def group_by(
        self,
        key: "Tuple[str, Expression | str] | Sequence[Tuple[str, Expression]]",
        aggregates: Sequence[Tuple[str, str, Optional[Expression]]],
    ) -> "Query":
        keys = [key] if isinstance(key, tuple) and isinstance(key[0], str) else list(key)
        resolved_keys = [(name, self._resolve(expression)) for name, expression in keys]
        resolved_aggregates = self._resolve_aggregates(aggregates)
        self._breakers.append(GroupByNode(resolved_keys, resolved_aggregates))
        return self

    def aggregate(
        self, aggregates: Sequence[Tuple[str, str, Optional[Expression]]]
    ) -> "Query":
        self._breakers.append(AggregateNode(self._resolve_aggregates(aggregates)))
        return self

    def count(self) -> "Query":
        """``SELECT COUNT(*)`` — reads only the primary keys under columnar layouts."""
        self._count_only = True
        self._breakers.append(AggregateNode([("count", "count", None)]))
        return self

    def order_by(self, key: str, descending: bool = False) -> "Query":
        self._breakers.append(OrderByNode(key, descending))
        return self

    def limit(self, count: int) -> "Query":
        self._breakers.append(LimitNode(count))
        return self

    def select(self, columns: Sequence[Tuple[str, "Expression | str"]]) -> "Query":
        resolved = [(name, self._resolve(expression)) for name, expression in columns]
        self._breakers.append(ProjectNode(resolved))
        return self

    # -- resolution ----------------------------------------------------------------------------
    def _resolve(self, expression: "Expression | str") -> Expression:
        """Strings are shorthand for field access on the scan variable."""
        if isinstance(expression, str):
            return Field(Var(self.variable), expression)
        return lift(expression)

    def _resolve_aggregates(self, aggregates):
        resolved = []
        for name, function, expression in aggregates:
            if function not in AGGREGATE_FUNCTIONS:
                raise QueryError(f"unknown aggregate function {function!r}")
            resolved.append(
                (name, function, None if expression is None else self._resolve(expression))
            )
        return resolved

    # -- planning ---------------------------------------------------------------------------------
    def build_plan(self, pushdown: bool = True) -> QueryPlan:
        """Resolve the plan; ``pushdown=False`` keeps the assemble-then-filter path."""
        fields = self._explicit_fields
        if fields is None:
            fields = self._pushdown_fields()
        if self._index is not None:
            index_name, low, high = self._index
            # Index-based plans always fetch the qualifying records through
            # sorted, batched point lookups (§4.6) — even for COUNT(*) — which
            # is what makes high-selectivity index plans lose to AMAX scans in
            # Figure 15b.
            source = IndexScanNode(
                self.dataset_name,
                self.variable,
                index_name,
                low,
                high,
                fields=fields,
                keys_only=False,
            )
        else:
            source = DataScanNode(
                self.dataset_name, self.variable, fields=fields, parallel=self._parallel
            )
        plan = QueryPlan(source, list(self._pipeline), list(self._breakers))
        if pushdown and isinstance(source, DataScanNode):
            # Imported lazily to avoid a module cycle (pushdown needs the plan
            # node types defined above).
            from .pushdown import attach_pushdown

            attach_pushdown(plan, prune_paths=self._explicit_fields is None)
        return plan

    def _pushdown_fields(self) -> Optional[List[str]]:
        """Top-level fields of the scan variable referenced anywhere in the plan.

        Returns None (project everything) if the whole record is referenced.
        ``COUNT(*)`` queries project nothing, which lets the AMAX layout answer
        them from Page 0 alone.
        """
        expressions = collect_expressions(self._pipeline, self._breakers)
        fields: List[str] = []
        # Variables bound by ASSIGN/UNNEST derive from the scan variable; any
        # path on them was already accounted for when the binding expression
        # was analysed, so only the scan variable matters here.  A bare use of
        # the scan variable itself — even nested inside a larger expression —
        # consumes the whole record and forces full projection.
        for expression in expressions:
            if self.variable in expression.referenced_bare_variables():
                return None
            for variable, path in expression.referenced_paths():
                if variable == self.variable and len(path) > 0:
                    top = path.top_field
                    if top and top not in fields:
                        fields.append(top)
        return fields

    # -- execution ----------------------------------------------------------------------------------
    def optimized_plan(self, store, pushdown: bool = True) -> QueryPlan:
        """Build the plan and run cost-based access-path selection against ``store``.

        The optimizer (:mod:`repro.query.optimizer`) considers the pushdown
        scan, secondary-index fetch plans, and index-only plans, estimating
        selectivity from the statistics collected at flush/merge time.  Plans
        that used :meth:`use_index` are returned unoptimized (the manual
        choice stands); :meth:`force_scan` keeps the scan but still reports
        the rejected alternatives.

        Args:
            store: The datastore the plan will execute against.
            pushdown: Attach the scan-pushdown spec (as in :meth:`build_plan`).

        Returns:
            The (possibly rewritten) plan, with ``plan.optimizer`` set to an
            :class:`~repro.query.optimizer.OptimizerReport` when the source
            was a data scan.
        """
        plan = self.build_plan(pushdown=pushdown)
        if self._index is None:
            from .optimizer import optimize_plan

            optimize_plan(store, plan, force_scan=self._force_scan)
        return plan

    def execute(
        self,
        store,
        executor: str = "codegen",
        pushdown: bool = True,
        optimize: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> List[dict]:
        """Run the query against a datastore; returns the result rows.

        Args:
            store: The :class:`~repro.store.datastore.Datastore` to query.
            executor: ``"codegen"`` (fused pipeline over column batches, §5),
                ``"batch"`` (the same column batches, operator-at-a-time), or
                ``"interpreted"`` (row-at-a-time oracle).
            pushdown: ``False`` disables the scan-pushdown rewrite (every
                layout then assembles full projected documents and filters
                tuple-at-a-time), which is what the differential tests and
                ``bench_pushdown`` compare against.
            optimize: ``False`` skips cost-based access-path selection,
                ``True`` forces it; the default (None) follows ``pushdown``,
                so baseline comparisons stay rewrite-free end to end.
            batch_size: Rows per column batch for the batch executors
                (default :data:`~repro.query.executor.DEFAULT_BATCH_SIZE`).

        Returns:
            The result rows as a list of dicts.
        """
        from .executor import execute_plan

        if optimize is None:
            optimize = pushdown
        if optimize and self._index is None:
            plan = self.optimized_plan(store, pushdown=pushdown)
        else:
            plan = self.build_plan(pushdown=pushdown)
        return execute_plan(store, plan, executor=executor, batch_size=batch_size)

    def explain(
        self,
        store=None,
        pushdown: bool = True,
        analyze: bool = False,
        executor: str = "codegen",
    ) -> str:
        """Render the query plan, optionally with costs and actual row counts.

        Args:
            store: When given, the cost-based optimizer runs against this
                datastore and the rendering includes the chosen access path,
                its estimated cost and row counts, and every rejected
                alternative with its rejection reason.  Without a store only
                the logical plan is rendered (no statistics are available).
            pushdown: Attach the scan-pushdown spec before explaining.
            analyze: Additionally *execute* every candidate access path and
                report estimated vs. actual row counts (requires ``store``).
            executor: Which executor the final EXECUTOR line describes
                (``"codegen"``, ``"batch"``, or ``"interpreted"`` — the same
                values :meth:`execute` accepts).

        Returns:
            A multi-line, human-readable plan description.

        Example:
            >>> from repro.query import Field, Query, Var
            >>> print(Query("d", "t").where(Field(Var("t"), "a") == 1).count()
            ...       .explain())
            SCAN d AS $t (fields=['a'])
              PUSHDOWN paths=[a]; predicates=[a == 1]
            FILTER Compare(Field(Var('t'), 'a') == Literal(1))
            AGGREGATE count=count(*)
            EXECUTOR codegen (fused column batches of 1024)
        """
        from .executor import describe_executor

        executor_line = describe_executor(executor)
        if store is None:
            plan = self.build_plan(pushdown=pushdown)
            return plan.describe() + "\n" + executor_line
        plan = self.optimized_plan(store, pushdown=pushdown)
        if analyze and plan.optimizer is not None:
            from .optimizer import analyze_candidates

            analyze_candidates(store, plan.optimizer)
        return plan.describe() + "\n" + executor_line
