"""Interactive SQL++ shell: ``python -m repro.shell``.

A small psql-style REPL over a :class:`~repro.store.datastore.Datastore`.
Statements may span multiple lines and end with ``;``.  Besides SELECT, the
shell speaks DML and transaction control::

    BEGIN;                                   -- open a transaction
    INSERT INTO accounts {"id": 7, "b": 10}; -- buffered inside the txn
    DELETE FROM accounts WHERE id = 3;
    COMMIT;                                  -- atomic; ROLLBACK discards

Outside a transaction, INSERT/DELETE auto-commit per statement.  SELECT
always reads the latest committed state — it does *not* see the open
transaction's buffered writes (the engine's transactional reads are
key-based; see ``docs/ARCHITECTURE.md``).  Backslash commands control the
session:

==============  ========================================================
``\\help``       Show the command summary.
``\\d``          List datasets (layout, record count).
``\\explain``    Toggle printing the optimizer-explained plan per query.
``\\timing``     Toggle printing wall-clock time per query.
``\\executor``   Show or set the executor (codegen / batch / interpreted).
``\\q``          Quit.
==============  ========================================================

By default the shell opens an in-memory store seeded with the paper's
``gamers`` demo collection (Figure 4) so queries work immediately; pass
``--store DIR`` to open a durable datastore instead, or ``--empty`` for a
bare store.  ``--batch`` reads statements from stdin without prompts and
exits non-zero on the first error — CI smoke-tests the shell with
``printf 'SELECT 1;\\n' | python -m repro.shell --batch``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .model.errors import ReproError
from .model.values import MISSING
from .store import Datastore, StoreConfig

#: The quickstart demo collection (the paper's Figure 4 video-gamer records).
DEMO_GAMERS = [
    {"id": 0, "games": [{"title": "NFL"}]},
    {
        "id": 1,
        "name": {"last": "Brown"},
        "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}],
    },
    {
        "id": 2,
        "name": {"first": "John", "last": "Smith"},
        "games": [
            {"title": "NBA", "consoles": ["PS4", "PC"]},
            {"title": "NFL", "consoles": ["XBOX"]},
        ],
    },
    {"id": 3},
    {"id": 4, "name": "Ann", "games": ["NBA", ["FIFA", "PES"], "NFL"]},
]

PROMPT = "sqlpp> "
CONTINUATION = "  ...> "


def statement_terminated(text: str) -> bool:
    """True when ``text`` is a complete statement (trailing ``;``).

    A ``;`` inside a string that is still open does not terminate — the
    buffer is checked with the real lexer, so multi-line string literals
    keep accumulating instead of being cut at the first line.
    """
    if not text.rstrip().endswith(";"):
        return False
    from .sqlpp import SqlppError, tokenize

    try:
        tokenize(text)
    except SqlppError as error:
        if "unterminated string" in str(error):
            return False
    return True


def _render_cell(value) -> str:
    if value is MISSING or value is None:
        return "null"
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


def render_result_table(rows: List[object]) -> str:
    """Render query-result rows as an aligned text table with a row count.

    Dict rows become columns in first-seen key order; bare values (from
    ``SELECT VALUE``) render as a single ``value`` column.  Cells are
    rendered here (JSON for nested values, ``null`` for NULL/MISSING) and the
    alignment is delegated to the shared
    :func:`repro.bench.reporting.format_table`.
    """
    count = f"({len(rows)} row{'s' if len(rows) != 1 else ''})"
    if not rows:
        return count
    if not all(isinstance(row, dict) for row in rows):
        rows = [{"value": row} for row in rows]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [
        [_render_cell(row.get(column, MISSING)) for column in columns] for row in rows
    ]
    from .bench.reporting import format_table

    return "\n".join([format_table(columns, cells), count])


class Shell:
    """One shell session: a store, toggles, and the statement loop."""

    def __init__(
        self,
        store: Datastore,
        batch: bool = False,
        out=None,
        err=None,
    ) -> None:
        self.store = store
        self.batch = batch
        self.out = out or sys.stdout
        self.err = err or sys.stderr
        self.show_explain = False
        self.show_timing = False
        self.executor = "codegen"
        #: The session's open transaction (None between BEGIN/COMMIT pairs).
        self.txn = None

    # -- output ------------------------------------------------------------------------
    def print(self, text: str = "") -> None:
        print(text, file=self.out)

    def print_error(self, message: str) -> None:
        print(f"ERROR: {message}", file=self.err)

    # -- commands ----------------------------------------------------------------------
    def run_command(self, line: str) -> Optional[int]:
        """Execute one backslash command; returns an exit code to quit, else None."""
        command = line.split(" ", 1)[0]
        if command in ("\\q", "\\quit"):
            return 0
        if command in ("\\help", "\\?"):
            self.print(
                "\\d            list datasets\n"
                "\\explain      toggle plan output (currently "
                f"{'on' if self.show_explain else 'off'})\n"
                "\\timing       toggle query timing (currently "
                f"{'on' if self.show_timing else 'off'})\n"
                "\\executor [NAME]  show or set the executor (currently "
                f"{self.executor}; codegen | batch | interpreted)\n"
                "\\q            quit\n"
                "Statements end with ';' and may span lines.\n"
                "BEGIN; ... COMMIT; groups INSERT/DELETE statements into an\n"
                "atomic transaction (ROLLBACK discards; quitting rolls back)."
            )
        elif command == "\\d":
            if not self.store.datasets:
                self.print("(no datasets)")
            for name, dataset in sorted(self.store.datasets.items()):
                self.print(f"{name}  layout={dataset.layout}  records={dataset.count()}")
        elif command == "\\explain":
            self.show_explain = not self.show_explain
            self.print(f"explain is {'on' if self.show_explain else 'off'}")
        elif command == "\\timing":
            self.show_timing = not self.show_timing
            self.print(f"timing is {'on' if self.show_timing else 'off'}")
        elif command == "\\executor":
            from .query.executor import EXECUTORS

            rest = line.split(" ", 1)[1].strip() if " " in line else ""
            if not rest:
                self.print(f"executor is {self.executor}")
            elif rest in EXECUTORS:
                self.executor = rest
                self.print(f"executor is {self.executor}")
            else:
                self.print_error(
                    f"unknown executor {rest!r}; one of: " + ", ".join(EXECUTORS)
                )
                return 1 if self.batch else None
        else:
            self.print_error(f"unknown command {command!r}; try \\help")
            return 1 if self.batch else None
        return None

    # -- statements --------------------------------------------------------------------
    def execute_statement(self, text: str):
        """Parse and execute one statement of any kind.

        Returns the SELECT result rows (a list), or a status string for
        transaction-control and DML statements.  Raises
        :class:`~repro.model.errors.ReproError` subclasses on failure —
        transaction misuse (nested BEGIN, COMMIT/ROLLBACK outside a
        transaction) raises :class:`SqlppError` with the statement's exact
        line/column, in the same style as parse and bind errors.
        """
        from .model.errors import SqlppError
        from .sqlpp import (
            BeginStatement,
            CommitStatement,
            DeleteStatement,
            InsertStatement,
            RollbackStatement,
            compile_statement,
            constant_value,
            parse_any,
        )

        statement = parse_any(text)
        if isinstance(statement, BeginStatement):
            if self.txn is not None:
                raise SqlppError(
                    "nested BEGIN: a transaction is already open (COMMIT or "
                    f"ROLLBACK it first) at {statement.where}",
                    statement.line,
                    statement.column,
                )
            self.txn = self.store.begin()
            return f"BEGIN (transaction #{self.txn.id})"
        if isinstance(statement, CommitStatement):
            if self.txn is None:
                raise SqlppError(
                    f"COMMIT outside a transaction at {statement.where}",
                    statement.line,
                    statement.column,
                )
            txn, self.txn = self.txn, None
            sequence = txn.commit()  # TransactionConflictError propagates
            if sequence is None:
                return "COMMIT (read-only)"
            return f"COMMIT (sequence {sequence})"
        if isinstance(statement, RollbackStatement):
            if self.txn is None:
                raise SqlppError(
                    f"ROLLBACK outside a transaction at {statement.where}",
                    statement.line,
                    statement.column,
                )
            txn, self.txn = self.txn, None
            txn.abort()
            return "ROLLBACK"
        if isinstance(statement, InsertStatement):
            value = constant_value(statement.documents)
            documents = value if isinstance(value, list) else [value]
            if not documents or not all(
                isinstance(document, dict) for document in documents
            ):
                raise SqlppError(
                    "INSERT expects an object literal or a non-empty array of "
                    f"objects at {statement.documents.where}",
                    statement.documents.line,
                    statement.documents.column,
                )
            if self.txn is not None:
                for document in documents:
                    self.txn.insert(statement.dataset, document)
                return f"INSERT {len(documents)} (buffered in transaction)"
            dataset = self.store.dataset(statement.dataset)
            dataset.insert_many(documents)
            return f"INSERT {len(documents)}"
        if isinstance(statement, DeleteStatement):
            dataset = self.store.dataset(statement.dataset)
            if statement.key_field != dataset.primary_key_field:
                raise SqlppError(
                    f"DELETE key field `{statement.key_field}` is not the "
                    f"primary key `{dataset.primary_key_field}` of dataset "
                    f"{statement.dataset!r} at {statement.where}",
                    statement.line,
                    statement.column,
                )
            key = constant_value(statement.key)
            if self.txn is not None:
                self.txn.delete(statement.dataset, key)
                return "DELETE 1 (buffered in transaction)"
            dataset.delete(key)
            return "DELETE 1"
        compiled = compile_statement(statement)
        if self.show_explain and compiled.query is not None:
            self.print(compiled.explain(self.store, executor=self.executor))
        return compiled.execute(self.store, executor=self.executor)

    def run_statement(self, text: str) -> bool:
        """Execute and render one statement; returns False on error in batch mode."""
        try:
            start = time.perf_counter()
            result = self.execute_statement(text)
            elapsed = time.perf_counter() - start
        except ReproError as error:
            self.print_error(str(error))
            return not self.batch
        if isinstance(result, list):
            self.print(render_result_table(result))
        else:
            self.print(result)
        if self.show_timing:
            self.print(f"Time: {elapsed * 1000:.2f} ms")
        return True

    # -- the loop ----------------------------------------------------------------------
    def run(self, stream) -> int:
        """Drive the shell over ``stream``; returns the process exit code.

        A transaction still open when the session ends is rolled back — its
        buffered writes were never applied, so ending the session without a
        COMMIT is equivalent to a ROLLBACK.
        """
        try:
            return self._run_loop(stream)
        finally:
            if self.txn is not None:
                txn, self.txn = self.txn, None
                txn.abort()
                self.print(
                    f"rolled back open transaction #{txn.id} (session ended "
                    "without COMMIT)"
                )

    def _run_loop(self, stream) -> int:
        interactive = not self.batch
        if interactive:
            self.print(
                "repro SQL++ shell — statements end with ';', \\help for help."
            )
        buffer: List[str] = []
        while True:
            if interactive:
                self.out.write(CONTINUATION if buffer else PROMPT)
                self.out.flush()
            line = stream.readline()
            if not line:  # EOF
                if buffer:
                    self.print_error("unterminated statement at end of input")
                    return 1 if self.batch else 0
                return 0
            stripped = line.strip()
            if not buffer and not stripped:
                continue
            if not buffer and stripped.startswith("\\"):
                exit_code = self.run_command(stripped)
                if exit_code is not None:
                    return exit_code
                continue
            buffer.append(line)
            if statement_terminated("".join(buffer)):
                statement = "".join(buffer)
                buffer = []
                if not self.run_statement(statement):
                    return 1


def make_demo_store() -> Datastore:
    """An in-memory store with the ``gamers`` demo dataset loaded."""
    store = Datastore(StoreConfig(partitions_per_node=1))
    gamers = store.create_dataset("gamers", layout="amax")
    gamers.insert_many(DEMO_GAMERS)
    gamers.flush_all()
    return store


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shell", description="Interactive SQL++ shell."
    )
    parser.add_argument(
        "--store", metavar="DIR", help="open a durable datastore directory"
    )
    parser.add_argument(
        "--empty", action="store_true", help="start with an empty in-memory store"
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="read statements from stdin without prompts; exit 1 on first error",
    )
    args = parser.parse_args(argv)
    if args.store:
        store = Datastore.open(args.store)
    elif args.empty:
        store = Datastore(StoreConfig(partitions_per_node=1))
    else:
        store = make_demo_store()
    shell = Shell(store, batch=args.batch)
    if not args.batch and not args.store and not args.empty:
        shell.print('demo dataset "gamers" loaded — try: SELECT COUNT(*) FROM gamers AS g;')
    try:
        return shell.run(sys.stdin)
    except KeyboardInterrupt:
        shell.print()
        return 130
    finally:
        store.close()


if __name__ == "__main__":
    sys.exit(main())
