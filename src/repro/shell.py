"""Interactive SQL++ shell: ``python -m repro.shell``.

A small psql-style REPL over a :class:`~repro.store.datastore.Datastore`.
Statements may span multiple lines and end with ``;``.  Besides SELECT, the
shell speaks DML and transaction control::

    BEGIN;                                   -- open a transaction
    INSERT INTO accounts {"id": 7, "b": 10}; -- buffered inside the txn
    DELETE FROM accounts WHERE id = 3;
    COMMIT;                                  -- atomic; ROLLBACK discards

Outside a transaction, INSERT/DELETE auto-commit per statement.  SELECT
always reads the latest committed state — it does *not* see the open
transaction's buffered writes (the engine's transactional reads are
key-based; see ``docs/ARCHITECTURE.md``).  Backslash commands control the
session:

==============  ========================================================
``\\help``       Show the command summary.
``\\d``          List datasets (layout, record count).
``\\explain``    Toggle printing the optimizer-explained plan per query.
``\\timing``     Toggle printing wall-clock time per query.
``\\executor``   Show or set the executor (codegen / batch / interpreted).
``\\trace``      Show the last query's span tree (``\\trace json`` for JSON).
``\\metrics``    Dump the server's Prometheus metrics text.
``\\q``          Quit.
==============  ========================================================

By default the shell opens an in-memory store seeded with the paper's
``gamers`` demo collection (Figure 4) so queries work immediately; pass
``--store DIR`` to open a durable datastore instead, or ``--empty`` for a
bare store.  ``--batch`` reads statements from stdin without prompts and
exits non-zero on the first error — CI smoke-tests the shell with
``printf 'SELECT 1;\\n' | python -m repro.shell --batch``.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import List, Optional

from .model.errors import ReproError
from .model.values import MISSING
from .store import Datastore, StoreConfig

#: The quickstart demo collection (the paper's Figure 4 video-gamer records).
DEMO_GAMERS = [
    {"id": 0, "games": [{"title": "NFL"}]},
    {
        "id": 1,
        "name": {"last": "Brown"},
        "games": [{"title": "FIFA", "consoles": ["PC", "PS4"]}],
    },
    {
        "id": 2,
        "name": {"first": "John", "last": "Smith"},
        "games": [
            {"title": "NBA", "consoles": ["PS4", "PC"]},
            {"title": "NFL", "consoles": ["XBOX"]},
        ],
    },
    {"id": 3},
    {"id": 4, "name": "Ann", "games": ["NBA", ["FIFA", "PES"], "NFL"]},
]

PROMPT = "sqlpp> "
CONTINUATION = "  ...> "


def statement_terminated(text: str) -> bool:
    """True when ``text`` is a complete statement (trailing ``;``).

    A ``;`` inside a string that is still open does not terminate — the
    buffer is checked with the real lexer, so multi-line string literals
    keep accumulating instead of being cut at the first line.
    """
    if not text.rstrip().endswith(";"):
        return False
    from .sqlpp import SqlppError, tokenize

    try:
        tokenize(text)
    except SqlppError as error:
        if "unterminated string" in str(error):
            return False
    return True


def _render_cell(value) -> str:
    if value is MISSING or value is None:
        return "null"
    if isinstance(value, str):
        return value
    return json.dumps(value, sort_keys=True, default=str)


def render_result_table(rows: List[object]) -> str:
    """Render query-result rows as an aligned text table with a row count.

    Dict rows become columns in first-seen key order; bare values (from
    ``SELECT VALUE``) render as a single ``value`` column.  Cells are
    rendered here (JSON for nested values, ``null`` for NULL/MISSING) and the
    alignment is delegated to the shared
    :func:`repro.bench.reporting.format_table`.
    """
    count = f"({len(rows)} row{'s' if len(rows) != 1 else ''})"
    if not rows:
        return count
    if not all(isinstance(row, dict) for row in rows):
        rows = [{"value": row} for row in rows]
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    cells = [
        [_render_cell(row.get(column, MISSING)) for column in columns] for row in rows
    ]
    from .bench.reporting import format_table

    return "\n".join([format_table(columns, cells), count])


class Shell:
    """One shell session: a store, toggles, and the statement loop."""

    def __init__(
        self,
        store: Optional[Datastore] = None,
        batch: bool = False,
        out=None,
        err=None,
        client=None,
    ) -> None:
        if (store is None) == (client is None):
            raise ValueError("pass exactly one of store (local) or client (remote)")
        self.store = store
        #: Remote mode: a connected :class:`~repro.net.client.WireClient`;
        #: the server owns the statement session (and its transaction state).
        self.client = client
        self.batch = batch
        self.out = out or sys.stdout
        self.err = err or sys.stderr
        self.show_explain = False
        self.show_timing = False
        self.executor = "codegen"
        #: Serialized span tree of the last query statement (for ``\\trace``).
        self.last_trace: Optional[dict] = None
        self.session = None
        if store is not None:
            from .net.session import StatementSession

            self.session = StatementSession(store)

    @property
    def txn(self):
        """The local session's open transaction (None remotely — the server
        tracks it per connection)."""
        return self.session.txn if self.session is not None else None

    # -- output ------------------------------------------------------------------------
    def print(self, text: str = "") -> None:
        print(text, file=self.out)

    def print_error(self, message: str) -> None:
        print(f"ERROR: {message}", file=self.err)

    # -- commands ----------------------------------------------------------------------
    def run_command(self, line: str) -> Optional[int]:
        """Execute one backslash command; returns an exit code to quit, else None."""
        command = line.split(" ", 1)[0]
        if command in ("\\q", "\\quit"):
            return 0
        if command in ("\\help", "\\?"):
            self.print(
                "\\d            list datasets\n"
                "\\create NAME [LAYOUT]  create a dataset (open | vector | "
                "apax | amax)\n"
                "\\explain      toggle plan output (currently "
                f"{'on' if self.show_explain else 'off'})\n"
                "\\timing       toggle query timing (currently "
                f"{'on' if self.show_timing else 'off'})\n"
                "\\executor [NAME]  show or set the executor (currently "
                f"{self.executor}; codegen | batch | interpreted)\n"
                "\\trace [json] show the last query's span tree "
                "(json: raw trace export)\n"
                "\\metrics      dump Prometheus metrics text\n"
                "\\q            quit\n"
                "Statements end with ';' and may span lines.\n"
                "BEGIN; ... COMMIT; groups INSERT/DELETE statements into an\n"
                "atomic transaction (ROLLBACK discards; quitting rolls back)."
            )
        elif command == "\\d":
            if self.client is not None:
                listed = self.client.list_datasets()
                if not listed:
                    self.print("(no datasets)")
                for row in listed:
                    self.print(
                        f"{row['name']}  layout={row['layout']}  "
                        f"records={row['records']}"
                    )
            else:
                if not self.store.datasets:
                    self.print("(no datasets)")
                for name, dataset in sorted(self.store.datasets.items()):
                    self.print(
                        f"{name}  layout={dataset.layout}  records={dataset.count()}"
                    )
        elif command == "\\create":
            parts = line.split()
            if len(parts) not in (2, 3):
                self.print_error("usage: \\create NAME [LAYOUT]")
                return 1 if self.batch else None
            name = parts[1]
            layout = parts[2] if len(parts) == 3 else "amax"
            try:
                if self.client is not None:
                    self.client.create_dataset(name, layout=layout)
                else:
                    self.store.create_dataset(name, layout=layout)
            except ReproError as error:
                self.print_error(str(error))
                return 1 if self.batch else None
            self.print(f"created dataset {name} (layout={layout})")
        elif command == "\\explain":
            self.show_explain = not self.show_explain
            self.print(f"explain is {'on' if self.show_explain else 'off'}")
        elif command == "\\timing":
            self.show_timing = not self.show_timing
            self.print(f"timing is {'on' if self.show_timing else 'off'}")
        elif command == "\\trace":
            rest = line.split(" ", 1)[1].strip() if " " in line else ""
            if self.last_trace is None:
                self.print("(no traced statement yet — run a query first)")
            elif rest == "json":
                self.print(json.dumps(self.last_trace, sort_keys=True))
            else:
                from .obs import render_trace_dict

                self.print(render_trace_dict(self.last_trace))
        elif command == "\\metrics":
            if self.client is not None:
                self.print(self.client.metrics().rstrip("\n"))
            else:
                self.print(self.store.metrics_text().rstrip("\n"))
        elif command == "\\executor":
            from .query.executor import EXECUTORS

            rest = line.split(" ", 1)[1].strip() if " " in line else ""
            if not rest:
                self.print(f"executor is {self.executor}")
            elif rest in EXECUTORS:
                self.executor = rest
                self.print(f"executor is {self.executor}")
            else:
                self.print_error(
                    f"unknown executor {rest!r}; one of: " + ", ".join(EXECUTORS)
                )
                return 1 if self.batch else None
        else:
            self.print_error(f"unknown command {command!r}; try \\help")
            return 1 if self.batch else None
        return None

    # -- statements --------------------------------------------------------------------
    def execute_statement(self, text: str):
        """Execute one statement of any kind, locally or over the wire.

        Returns the SELECT result rows (a list), or a status string for
        transaction-control and DML statements.  Raises
        :class:`~repro.model.errors.ReproError` subclasses on failure —
        transaction misuse (nested BEGIN, COMMIT/ROLLBACK outside a
        transaction) raises :class:`SqlppError` with the statement's exact
        line/column, in the same style as parse and bind errors; remote
        failures raise :class:`~repro.net.client.RemoteError` carrying the
        server-side message.
        """
        if self.client is not None:
            result = self.client.statement(
                text,
                executor=self.executor,
                explain=self.show_explain,
                trace=True,
                on_notice=lambda message: self.print(message),
            )
            if result.trace is not None:
                self.last_trace = result.trace
            explained = result.done.get("explain")
            if explained:
                self.print(explained)
            if result.done.get("result") == "rows":
                return result.rows
            return result.status
        outcome = self.session.execute(
            text, executor=self.executor, explain=self.show_explain
        )
        if outcome.trace is not None:
            self.last_trace = outcome.trace
        if outcome.explain_text is not None:
            self.print(outcome.explain_text)
        if outcome.rows is not None:
            return outcome.rows
        return outcome.status

    def run_statement(self, text: str) -> bool:
        """Execute and render one statement; returns False on error in batch mode."""
        try:
            start = time.perf_counter()
            result = self.execute_statement(text)
            elapsed = time.perf_counter() - start
        except ReproError as error:
            self.print_error(str(error))
            return not self.batch
        if isinstance(result, list):
            self.print(render_result_table(result))
        else:
            self.print(result)
        if self.show_timing:
            self.print(f"Time: {elapsed * 1000:.2f} ms")
        return True

    # -- the loop ----------------------------------------------------------------------
    def run(self, stream) -> int:
        """Drive the shell over ``stream``; returns the process exit code.

        A transaction still open when the session ends is rolled back — its
        buffered writes were never applied, so ending the session without a
        COMMIT is equivalent to a ROLLBACK.
        """
        try:
            return self._run_loop(stream)
        finally:
            if self.session is not None:
                notice = self.session.close()
                if notice:
                    self.print(notice)
            # Remotely the server rolls back and sends the same notice when
            # the connection closes; printing it raced the disconnect, so the
            # local close is silent.

    def _run_loop(self, stream) -> int:
        interactive = not self.batch
        if interactive:
            self.print(
                "repro SQL++ shell — statements end with ';', \\help for help."
            )
        buffer: List[str] = []
        while True:
            if interactive:
                self.out.write(CONTINUATION if buffer else PROMPT)
                self.out.flush()
            line = stream.readline()
            if not line:  # EOF
                if buffer:
                    self.print_error("unterminated statement at end of input")
                    return 1 if self.batch else 0
                return 0
            stripped = line.strip()
            if not buffer and not stripped:
                continue
            if not buffer and stripped.startswith("\\"):
                exit_code = self.run_command(stripped)
                if exit_code is not None:
                    return exit_code
                continue
            buffer.append(line)
            if statement_terminated("".join(buffer)):
                statement = "".join(buffer)
                buffer = []
                if not self.run_statement(statement):
                    return 1


def make_demo_store() -> Datastore:
    """An in-memory store with the ``gamers`` demo dataset loaded."""
    store = Datastore(StoreConfig(partitions_per_node=1))
    gamers = store.create_dataset("gamers", layout="amax")
    gamers.insert_many(DEMO_GAMERS)
    gamers.flush_all()
    return store


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.shell", description="Interactive SQL++ shell."
    )
    parser.add_argument(
        "--store", metavar="DIR", help="open a durable datastore directory"
    )
    parser.add_argument(
        "--empty", action="store_true", help="start with an empty in-memory store"
    )
    parser.add_argument(
        "--batch",
        action="store_true",
        help="read statements from stdin without prompts; exit 1 on first error",
    )
    parser.add_argument(
        "--connect",
        metavar="HOST:PORT",
        help="connect to a running repro server (engine or shard coordinator) "
        "instead of opening a local store",
    )
    args = parser.parse_args(argv)
    store = client = None
    if args.connect:
        if args.store or args.empty:
            parser.error("--connect is incompatible with --store/--empty")
        from .net.client import WireClient

        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            parser.error(f"--connect expects HOST:PORT, got {args.connect!r}")
        client = WireClient(host, int(port))
    elif args.store:
        store = Datastore.open(args.store)
    elif args.empty:
        store = Datastore(StoreConfig(partitions_per_node=1))
    else:
        store = make_demo_store()
    shell = Shell(store, batch=args.batch, client=client)
    if args.connect and not args.batch:
        role = client.server_hello.get("role", "engine")
        shell.print(f"connected to {args.connect} ({role})")
    if not args.batch and store is not None and not args.store and not args.empty:
        shell.print('demo dataset "gamers" loaded — try: SELECT COUNT(*) FROM gamers AS g;')
    try:
        return shell.run(sys.stdin)
    except KeyboardInterrupt:
        shell.print()
        return 130
    finally:
        if store is not None:
            store.close()
        if client is not None:
            client.close()


if __name__ == "__main__":
    sys.exit(main())
