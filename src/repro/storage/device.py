"""Page-oriented storage device, component files, and append-only log files.

On-disk LSM components are sequences of fixed-size pages.  The
:class:`StorageDevice` manages *component files* (one per LSM component or
secondary-index run) and *log files* (one write-ahead log per node).  Files
can be held in memory (the default — fast and fully deterministic for
benchmarks) or backed by real files on disk.

When a backing directory is configured every page append/rewrite is written
through to disk immediately and flushed to the OS, so a process crash loses
nothing that was acknowledged.  The on-disk representation of a component
file is *slotted*: each page occupies a fixed-stride slot of
``page_size + 8`` bytes, prefixed by an 8-byte header carrying the payload
length and a CRC-32 checksum, so that exact page payloads survive a
round trip and torn writes are detected on reopen.  Log files are a plain
record stream with the same ``[length][crc32][payload]`` framing; recovery
reads the longest valid prefix and discards a torn tail.

All reads and writes are accounted in :class:`~repro.storage.stats.IOStats`
with an optional simulated device-time model, which is what the benchmark
harness reports alongside wall-clock time.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from typing import Dict, List, Optional
from urllib.parse import quote, unquote

from ..model.errors import StorageError
from ..obs.metrics import MetricsRegistry, current_io_source
from .stats import DiskModel, IOStats

#: Per-page / per-record on-disk header: uint32 payload length + uint32 CRC-32.
_HEADER = struct.Struct("<II")

#: Suffix distinguishing component files from manifests and WAL files.
COMPONENT_FILE_SUFFIX = ".comp"


def encode_component_filename(name: str) -> str:
    """Collision-free, filesystem-safe encoding of a component name.

    Percent-encoding is a bijection (every byte outside ``[A-Za-z0-9_.-]`` is
    escaped), so two distinct component names can never map to the same path —
    unlike the old ``name.replace("/", "_")`` scheme where ``"a/b"`` and
    ``"a_b"`` collided.
    """
    return quote(name, safe="") + COMPONENT_FILE_SUFFIX


def decode_component_filename(filename: str) -> str:
    """Inverse of :func:`encode_component_filename`."""
    if not filename.endswith(COMPONENT_FILE_SUFFIX):
        raise StorageError(f"{filename!r} is not a component file name")
    return unquote(filename[: -len(COMPONENT_FILE_SUFFIX)])


class ComponentFile:
    """An append-only sequence of pages belonging to one LSM component."""

    def __init__(self, device: "StorageDevice", name: str) -> None:
        self.device = device
        self.name = name
        self._pages: List[bytes] = []
        self._deleted = False
        self._handle = None
        self._on_disk_path: Optional[str] = None
        if device.directory is not None:
            self._on_disk_path = os.path.join(
                device.directory, encode_component_filename(name)
            )

    # -- writing ---------------------------------------------------------------
    def append_page(self, data: bytes) -> int:
        """Append one page and return its page id (position in the file)."""
        self._check_alive()
        if len(data) > self.device.page_size:
            raise StorageError(
                f"page of {len(data)} bytes exceeds the page size "
                f"({self.device.page_size} bytes)"
            )
        page_id = len(self._pages)
        self._pages.append(bytes(data))
        self._write_slot(page_id, data)
        cost = self.device.disk_model.write_cost(len(data))
        self.device.stats.record_write(self.device.page_size, cost)
        self.device.note_page_io("write", self.device.page_size)
        self.device.disk_model.charge(cost)
        return page_id

    def rewrite_page(self, page_id: int, data: bytes) -> None:
        """Overwrite a previously reserved page (used for AMAX Page 0 fix-ups)."""
        self._check_alive()
        if page_id < 0 or page_id >= len(self._pages):
            raise StorageError(f"page {page_id} out of range for rewrite")
        if len(data) > self.device.page_size:
            raise StorageError(
                f"page of {len(data)} bytes exceeds the page size "
                f"({self.device.page_size} bytes)"
            )
        self._pages[page_id] = bytes(data)
        self._write_slot(page_id, data)
        cost = self.device.disk_model.write_cost(len(data))
        self.device.stats.record_write(self.device.page_size, cost)
        self.device.note_page_io("write", self.device.page_size)
        self.device.disk_model.charge(cost)

    @property
    def _slot_stride(self) -> int:
        return self.device.page_size + _HEADER.size

    def _ensure_handle(self):
        if self._handle is None:
            mode = "r+b" if os.path.exists(self._on_disk_path) else "w+b"
            self._handle = open(self._on_disk_path, mode)
        return self._handle

    def _write_slot(self, page_id: int, data: bytes) -> None:
        """Write one page slot through to disk (no-op for in-memory devices)."""
        if self._on_disk_path is None:
            return
        handle = self._ensure_handle()
        handle.seek(page_id * self._slot_stride)
        handle.write(_HEADER.pack(len(data), zlib.crc32(data)))
        handle.write(data)
        handle.flush()

    # -- loading ---------------------------------------------------------------
    def load_from_disk(self) -> None:
        """Populate the in-memory page list from the backing file (recovery)."""
        if self._on_disk_path is None:
            raise StorageError(
                f"component file {self.name!r} has no backing directory"
            )
        pages: List[bytes] = []
        with open(self._on_disk_path, "rb") as handle:
            raw = handle.read()
        stride = self._slot_stride
        offset = 0
        while offset < len(raw):
            header = raw[offset:offset + _HEADER.size]
            if len(header) < _HEADER.size:
                raise StorageError(
                    f"component file {self.name!r} has a truncated page header"
                )
            length, checksum = _HEADER.unpack(header)
            payload = raw[offset + _HEADER.size:offset + _HEADER.size + length]
            if len(payload) < length or zlib.crc32(payload) != checksum:
                raise StorageError(
                    f"component file {self.name!r} page "
                    f"{offset // stride} failed its checksum"
                )
            pages.append(bytes(payload))
            self.device.stats.record_read(
                self.device.page_size, self.device.disk_model.read_cost(length)
            )
            self.device.note_page_io("read", self.device.page_size)
            offset += stride
        self._pages = pages

    # -- reading ---------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        """Read one page, bypassing the buffer cache (callers usually go via the cache)."""
        self._check_alive()
        if page_id < 0 or page_id >= len(self._pages):
            raise StorageError(
                f"page {page_id} out of range for component {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        data = self._pages[page_id]
        cost = self.device.disk_model.read_cost(len(data))
        self.device.stats.record_read(self.device.page_size, cost)
        self.device.note_page_io("read", self.device.page_size)
        self.device.disk_model.charge(cost)
        return data

    # -- metadata ---------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """On-disk footprint: every page occupies a full device page."""
        return len(self._pages) * self.device.page_size

    @property
    def payload_bytes(self) -> int:
        """Bytes actually used inside the pages (before padding)."""
        return sum(len(page) for page in self._pages)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        self._deleted = True
        self._pages.clear()
        self.close()
        if self._on_disk_path is not None and os.path.exists(self._on_disk_path):
            os.remove(self._on_disk_path)

    def _check_alive(self) -> None:
        if self._deleted:
            raise StorageError(f"component file {self.name!r} has been deleted")


class LogFile:
    """An append-only stream of checksummed records (the write-ahead log).

    Unlike component files, a log file is not page-oriented: records of
    arbitrary size are framed as ``[uint32 length][uint32 crc32][payload]``
    and flushed to the OS on every append, so every acknowledged record
    survives a process crash.  On reopen the longest valid prefix is loaded
    and a torn tail (a record cut short by the crash, or failing its
    checksum) is discarded and truncated away.
    """

    def __init__(self, device: "StorageDevice", name: str) -> None:
        self.device = device
        self.name = name
        self._records: List[bytes] = []
        self._handle = None
        self._on_disk_path: Optional[str] = None
        if device.directory is not None:
            self._on_disk_path = os.path.join(device.directory, quote(name, safe=""))

    # -- writing ---------------------------------------------------------------
    def append_record(self, payload: bytes) -> None:
        self._records.append(bytes(payload))
        cost = self.device.disk_model.write_cost(len(payload) + _HEADER.size)
        self.device.stats.record_wal_append(len(payload) + _HEADER.size, cost)
        self.device.note_wal_append(
            len(payload) + _HEADER.size, fsynced=self._on_disk_path is not None
        )
        self.device.disk_model.charge(cost)
        if self._on_disk_path is None:
            return
        if self._handle is None:
            self._handle = open(self._on_disk_path, "ab")
        self._handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        self._handle.write(payload)
        self._handle.flush()

    def truncate(self) -> None:
        """Discard every record (checkpoint: the log's tail is now durable)."""
        self._records = []
        if self._on_disk_path is None:
            return
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        with open(self._on_disk_path, "wb"):
            pass

    # -- loading ---------------------------------------------------------------
    def load_from_disk(self) -> int:
        """Load the valid record prefix; returns how many tail bytes were torn."""
        if self._on_disk_path is None or not os.path.exists(self._on_disk_path):
            return 0
        with open(self._on_disk_path, "rb") as handle:
            raw = handle.read()
        records: List[bytes] = []
        offset = 0
        while offset + _HEADER.size <= len(raw):
            length, checksum = _HEADER.unpack(raw[offset:offset + _HEADER.size])
            payload = raw[offset + _HEADER.size:offset + _HEADER.size + length]
            if len(payload) < length or zlib.crc32(payload) != checksum:
                break
            records.append(bytes(payload))
            offset += _HEADER.size + length
        torn_bytes = len(raw) - offset
        if torn_bytes:
            # Drop the torn tail so later appends continue from a clean state.
            with open(self._on_disk_path, "r+b") as handle:
                handle.truncate(offset)
        self._records = records
        return torn_bytes

    # -- reading ---------------------------------------------------------------
    @property
    def records(self) -> List[bytes]:
        return list(self._records)

    @property
    def record_count(self) -> int:
        return len(self._records)

    @property
    def size_bytes(self) -> int:
        return sum(len(record) + _HEADER.size for record in self._records)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def delete(self) -> None:
        self._records = []
        self.close()
        if self._on_disk_path is not None and os.path.exists(self._on_disk_path):
            os.remove(self._on_disk_path)


class StorageDevice:
    """A collection of component files sharing one page size and one I/O meter."""

    def __init__(
        self,
        page_size: int = 128 * 1024,
        directory: Optional[str] = None,
        disk_model: Optional[DiskModel] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self.page_size = page_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.disk_model = disk_model or DiskModel()
        self.stats = IOStats()
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=False
        )
        self._init_metric_children()
        self._files: Dict[str, ComponentFile] = {}
        self._log_files: Dict[str, LogFile] = {}
        self._disk_paths: Dict[str, str] = {}  # on-disk path -> component name
        self._name_counter = 0
        #: Guards the file registries: background flush/merge workers create
        #: and delete component files concurrently with readers and writers.
        self._lock = threading.Lock()

    # -- metrics ----------------------------------------------------------------
    def _init_metric_children(self) -> None:
        """Pre-resolve labeled children so hot paths pay one dict lookup."""
        if not self.metrics.enabled:
            self._page_counters = None
            return
        pages = self.metrics.counter("repro_io_pages_total")
        io_bytes = self.metrics.counter("repro_io_bytes_total")
        self._page_counters = {
            (op, source): (
                pages.labels(op=op, source=source),
                io_bytes.labels(op=op, source=source),
            )
            for op in ("read", "write")
            for source in ("query", "maintenance")
        }
        self._wal_appends = self.metrics.counter("repro_wal_appends_total")
        self._wal_bytes = self.metrics.counter("repro_wal_bytes_total")
        self._wal_fsyncs = self.metrics.counter("repro_wal_fsyncs_total")
        cache = self.metrics.counter("repro_cache_requests_total")
        self._cache_hits = cache.labels(result="hit")
        self._cache_misses = cache.labels(result="miss")

    def note_page_io(self, op: str, nbytes: int) -> None:
        """Record one page read/write, attributed to the thread's I/O source."""
        if self._page_counters is None:
            return
        pages, io_bytes = self._page_counters[(op, current_io_source())]
        pages.inc()
        io_bytes.inc(nbytes)

    def note_wal_append(self, nbytes: int, fsynced: bool) -> None:
        if self._page_counters is None:
            return
        self._wal_appends.inc()
        self._wal_bytes.inc(nbytes)
        if fsynced:
            self._wal_fsyncs.inc()

    def note_cache(self, hit: bool) -> None:
        if self._page_counters is None:
            return
        (self._cache_hits if hit else self._cache_misses).inc()

    def create_file(self, name: Optional[str] = None) -> ComponentFile:
        with self._lock:
            if name is None:
                name = f"component-{self._name_counter}"
                self._name_counter += 1
            if name in self._files:
                raise StorageError(f"component file {name!r} already exists")
            handle = ComponentFile(self, name)
            self._register_locked(handle)
        # A fresh component must not inherit a stale on-disk file (e.g. an
        # orphan left behind by a crash between a spill and its manifest).
        if handle._on_disk_path is not None and os.path.exists(handle._on_disk_path):
            os.remove(handle._on_disk_path)
        return handle

    def open_file(self, name: str) -> ComponentFile:
        """Open an existing on-disk component file and load its pages (recovery)."""
        with self._lock:
            if name in self._files:
                return self._files[name]
            if self.directory is None:
                raise StorageError(
                    f"cannot open component file {name!r}: device has no directory"
                )
            handle = ComponentFile(self, name)
            handle.load_from_disk()
            self._register_locked(handle)
            return handle

    def _register_locked(self, handle: ComponentFile) -> None:
        if handle._on_disk_path is not None:
            owner = self._disk_paths.get(handle._on_disk_path)
            if owner is not None and owner != handle.name:
                # Unreachable while encode_component_filename stays bijective;
                # kept as a hard guard against future encoding regressions.
                raise StorageError(
                    f"component files {owner!r} and {handle.name!r} would "
                    f"share the on-disk path {handle._on_disk_path!r}"
                )
            self._disk_paths[handle._on_disk_path] = handle.name
        self._files[handle.name] = handle

    def get_file(self, name: str) -> ComponentFile:
        try:
            return self._files[name]
        except KeyError as exc:
            raise StorageError(f"unknown component file {name!r}") from exc

    def delete_file(self, name: str) -> None:
        with self._lock:
            handle = self._files.pop(name, None)
            if handle is not None and handle._on_disk_path is not None:
                self._disk_paths.pop(handle._on_disk_path, None)
        if handle is not None:
            handle.delete()

    # -- log files --------------------------------------------------------------
    def open_log_file(self, name: str) -> LogFile:
        """Create-or-open an append-only log file (loads any persisted prefix)."""
        with self._lock:
            existing = self._log_files.get(name)
            if existing is not None:
                return existing
            log_file = LogFile(self, name)
            log_file.load_from_disk()
            self._log_files[name] = log_file
            return log_file

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Close every OS file handle (pages already reached the OS on write)."""
        with self._lock:
            handles = list(self._files.values())
            log_files = list(self._log_files.values())
        for handle in handles:
            handle.close()
        for log_file in log_files:
            log_file.close()

    @property
    def total_size_bytes(self) -> int:
        with self._lock:
            return sum(handle.size_bytes for handle in self._files.values())

    @property
    def total_payload_bytes(self) -> int:
        with self._lock:
            return sum(handle.payload_bytes for handle in self._files.values())

    def list_files(self) -> List[str]:
        with self._lock:
            return sorted(self._files)

    def list_disk_component_names(self) -> List[str]:
        """Names of component files present in the backing directory."""
        if self.directory is None:
            return []
        names = []
        for filename in os.listdir(self.directory):
            if filename.endswith(COMPONENT_FILE_SUFFIX):
                names.append(decode_component_filename(filename))
        return sorted(names)
