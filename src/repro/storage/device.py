"""Page-oriented storage device and component files.

On-disk LSM components are sequences of fixed-size pages.  The
:class:`StorageDevice` manages *component files* (one per LSM component or
secondary-index run); each file is an append-only list of pages.  Files can be
held in memory (the default — fast and fully deterministic for benchmarks) or
backed by real files on disk.

All reads and writes are accounted in :class:`~repro.storage.stats.IOStats`
with an optional simulated device-time model, which is what the benchmark
harness reports alongside wall-clock time.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from ..model.errors import StorageError
from .stats import DiskModel, IOStats


class ComponentFile:
    """An append-only sequence of pages belonging to one LSM component."""

    def __init__(self, device: "StorageDevice", name: str) -> None:
        self.device = device
        self.name = name
        self._pages: List[bytes] = []
        self._deleted = False
        self._on_disk_path: Optional[str] = None
        if device.directory is not None:
            self._on_disk_path = os.path.join(device.directory, name.replace("/", "_"))

    # -- writing ---------------------------------------------------------------
    def append_page(self, data: bytes) -> int:
        """Append one page and return its page id (position in the file)."""
        self._check_alive()
        if len(data) > self.device.page_size:
            raise StorageError(
                f"page of {len(data)} bytes exceeds the page size "
                f"({self.device.page_size} bytes)"
            )
        page_id = len(self._pages)
        self._pages.append(bytes(data))
        self.device.stats.record_write(
            self.device.page_size, self.device.disk_model.write_cost(len(data))
        )
        return page_id

    def rewrite_page(self, page_id: int, data: bytes) -> None:
        """Overwrite a previously reserved page (used for AMAX Page 0 fix-ups)."""
        self._check_alive()
        if page_id < 0 or page_id >= len(self._pages):
            raise StorageError(f"page {page_id} out of range for rewrite")
        if len(data) > self.device.page_size:
            raise StorageError(
                f"page of {len(data)} bytes exceeds the page size "
                f"({self.device.page_size} bytes)"
            )
        self._pages[page_id] = bytes(data)
        self.device.stats.record_write(
            self.device.page_size, self.device.disk_model.write_cost(len(data))
        )

    def flush_to_disk(self) -> None:
        """Persist the file's pages to the backing directory (when configured)."""
        if self._on_disk_path is None:
            return
        with open(self._on_disk_path, "wb") as handle:
            for page in self._pages:
                handle.write(page.ljust(self.device.page_size, b"\x00"))

    # -- reading ---------------------------------------------------------------
    def read_page(self, page_id: int) -> bytes:
        """Read one page, bypassing the buffer cache (callers usually go via the cache)."""
        self._check_alive()
        if page_id < 0 or page_id >= len(self._pages):
            raise StorageError(
                f"page {page_id} out of range for component {self.name!r} "
                f"({len(self._pages)} pages)"
            )
        data = self._pages[page_id]
        self.device.stats.record_read(
            self.device.page_size, self.device.disk_model.read_cost(len(data))
        )
        return data

    # -- metadata ---------------------------------------------------------------
    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def size_bytes(self) -> int:
        """On-disk footprint: every page occupies a full device page."""
        return len(self._pages) * self.device.page_size

    @property
    def payload_bytes(self) -> int:
        """Bytes actually used inside the pages (before padding)."""
        return sum(len(page) for page in self._pages)

    def delete(self) -> None:
        self._deleted = True
        self._pages.clear()
        if self._on_disk_path is not None and os.path.exists(self._on_disk_path):
            os.remove(self._on_disk_path)

    def _check_alive(self) -> None:
        if self._deleted:
            raise StorageError(f"component file {self.name!r} has been deleted")


class StorageDevice:
    """A collection of component files sharing one page size and one I/O meter."""

    def __init__(
        self,
        page_size: int = 128 * 1024,
        directory: Optional[str] = None,
        disk_model: Optional[DiskModel] = None,
    ) -> None:
        if page_size <= 0:
            raise StorageError("page size must be positive")
        self.page_size = page_size
        self.directory = directory
        if directory is not None:
            os.makedirs(directory, exist_ok=True)
        self.disk_model = disk_model or DiskModel()
        self.stats = IOStats()
        self._files: Dict[str, ComponentFile] = {}
        self._name_counter = 0

    def create_file(self, name: Optional[str] = None) -> ComponentFile:
        if name is None:
            name = f"component-{self._name_counter}"
            self._name_counter += 1
        if name in self._files:
            raise StorageError(f"component file {name!r} already exists")
        handle = ComponentFile(self, name)
        self._files[name] = handle
        return handle

    def get_file(self, name: str) -> ComponentFile:
        try:
            return self._files[name]
        except KeyError as exc:
            raise StorageError(f"unknown component file {name!r}") from exc

    def delete_file(self, name: str) -> None:
        handle = self._files.pop(name, None)
        if handle is not None:
            handle.delete()

    @property
    def total_size_bytes(self) -> int:
        return sum(handle.size_bytes for handle in self._files.values())

    @property
    def total_payload_bytes(self) -> int:
        return sum(handle.payload_bytes for handle in self._files.values())

    def list_files(self) -> List[str]:
        return sorted(self._files)
