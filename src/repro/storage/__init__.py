"""Page-oriented storage: device, component files, buffer cache, I/O statistics."""

from .buffer_cache import BufferCache
from .device import ComponentFile, StorageDevice
from .stats import DiskModel, IOStats

__all__ = ["BufferCache", "ComponentFile", "DiskModel", "IOStats", "StorageDevice"]
