"""I/O and CPU accounting.

Every page read or written anywhere in the engine flows through an
:class:`IOStats` instance.  The benchmark harness reports these counters next
to wall-clock time because the paper's query-performance story is primarily an
"how many bytes did we have to touch" story, and page counts make the shape of
each experiment visible even when absolute timings differ from the paper's
testbed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class IOStats:
    """Counters for page-level I/O plus a simulated device-time accumulator."""

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated_io_seconds: float = 0.0

    def record_read(self, num_bytes: int, seconds: float = 0.0) -> None:
        self.pages_read += 1
        self.bytes_read += num_bytes
        self.simulated_io_seconds += seconds

    def record_write(self, num_bytes: int, seconds: float = 0.0) -> None:
        self.pages_written += 1
        self.bytes_written += num_bytes
        self.simulated_io_seconds += seconds

    def record_cache(self, hit: bool) -> None:
        if hit:
            self.cache_hits += 1
        else:
            self.cache_misses += 1

    def snapshot(self) -> "IOStats":
        return IOStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            simulated_io_seconds=self.simulated_io_seconds,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier snapshot."""
        return IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            simulated_io_seconds=self.simulated_io_seconds - earlier.simulated_io_seconds,
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated_io_seconds": round(self.simulated_io_seconds, 6),
        }


@dataclass
class DiskModel:
    """A simple sequential-throughput model of the paper's NVMe SSD.

    The defaults follow the experiment setup (§6): ~3400 MB/s sequential
    reads, ~2500 MB/s sequential writes, plus a small per-operation latency.
    The model only feeds the ``simulated_io_seconds`` counter; wall-clock
    timings in the benchmarks are real Python execution times.
    """

    read_bandwidth_bytes_per_s: float = 3400e6
    write_bandwidth_bytes_per_s: float = 2500e6
    per_operation_latency_s: float = 20e-6

    def read_cost(self, num_bytes: int) -> float:
        return self.per_operation_latency_s + num_bytes / self.read_bandwidth_bytes_per_s

    def write_cost(self, num_bytes: int) -> float:
        return self.per_operation_latency_s + num_bytes / self.write_bandwidth_bytes_per_s
