"""I/O accounting and data statistics primitives.

Two kinds of statistics live here:

* **I/O accounting** — every page read or written anywhere in the engine flows
  through an :class:`IOStats` instance.  The benchmark harness reports these
  counters next to wall-clock time because the paper's query-performance story
  is primarily a "how many bytes did we have to touch" story.
* **Data statistics** — the per-column summaries collected when a component is
  written (flush or merge) and consumed by the cost-based optimizer
  (:mod:`repro.query.optimizer`): value counts, min/max, an equi-width
  :class:`EquiWidthHistogram` over numeric values, and a
  :class:`DistinctCountSketch` for distinct-value estimation.  They live in
  the storage layer because they are part of a component's metadata page
  (:class:`~repro.lsm.component.ComponentMetadata`), below every consumer.
"""

from __future__ import annotations

import math
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class IOStats:
    """Counters for page-level I/O plus a simulated device-time accumulator.

    One instance is shared by every thread touching the device (writers,
    background flush/merge workers, parallel scans), so the increments are
    taken under a lock — Python's ``+=`` on an attribute is a read-modify-
    write that loses updates under contention.
    """

    pages_read: int = 0
    pages_written: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    wal_appends: int = 0
    wal_bytes_written: int = 0
    simulated_io_seconds: float = 0.0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def record_read(self, num_bytes: int, seconds: float = 0.0) -> None:
        with self._lock:
            self.pages_read += 1
            self.bytes_read += num_bytes
            self.simulated_io_seconds += seconds

    def record_write(self, num_bytes: int, seconds: float = 0.0) -> None:
        with self._lock:
            self.pages_written += 1
            self.bytes_written += num_bytes
            self.simulated_io_seconds += seconds

    def record_wal_append(self, num_bytes: int, seconds: float = 0.0) -> None:
        """Account one write-ahead-log record append (not page-oriented)."""
        with self._lock:
            self.wal_appends += 1
            self.wal_bytes_written += num_bytes
            self.simulated_io_seconds += seconds

    def record_cache(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self.cache_hits += 1
            else:
                self.cache_misses += 1

    def snapshot(self) -> "IOStats":
        return IOStats(
            pages_read=self.pages_read,
            pages_written=self.pages_written,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            cache_hits=self.cache_hits,
            cache_misses=self.cache_misses,
            wal_appends=self.wal_appends,
            wal_bytes_written=self.wal_bytes_written,
            simulated_io_seconds=self.simulated_io_seconds,
        )

    def delta_since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated since an earlier snapshot."""
        return IOStats(
            pages_read=self.pages_read - earlier.pages_read,
            pages_written=self.pages_written - earlier.pages_written,
            bytes_read=self.bytes_read - earlier.bytes_read,
            bytes_written=self.bytes_written - earlier.bytes_written,
            cache_hits=self.cache_hits - earlier.cache_hits,
            cache_misses=self.cache_misses - earlier.cache_misses,
            wal_appends=self.wal_appends - earlier.wal_appends,
            wal_bytes_written=self.wal_bytes_written - earlier.wal_bytes_written,
            simulated_io_seconds=self.simulated_io_seconds - earlier.simulated_io_seconds,
        )

    def add(self, other: "IOStats") -> None:
        """Fold another instance's counters into this one (thread-safe).

        This is how the shard coordinator aggregates the per-statement I/O
        deltas reported by remote engine processes into one cluster-wide
        view (:class:`repro.shard.coordinator.ShardedDatastore.io_stats`).
        """
        with self._lock:
            self.pages_read += other.pages_read
            self.pages_written += other.pages_written
            self.bytes_read += other.bytes_read
            self.bytes_written += other.bytes_written
            self.cache_hits += other.cache_hits
            self.cache_misses += other.cache_misses
            self.wal_appends += other.wal_appends
            self.wal_bytes_written += other.wal_bytes_written
            self.simulated_io_seconds += other.simulated_io_seconds

    @classmethod
    def from_dict(cls, payload: Dict[str, float]) -> "IOStats":
        """Rebuild counters from :meth:`as_dict` output (wire deserialization)."""
        return cls(
            pages_read=int(payload.get("pages_read", 0)),
            pages_written=int(payload.get("pages_written", 0)),
            bytes_read=int(payload.get("bytes_read", 0)),
            bytes_written=int(payload.get("bytes_written", 0)),
            cache_hits=int(payload.get("cache_hits", 0)),
            cache_misses=int(payload.get("cache_misses", 0)),
            wal_appends=int(payload.get("wal_appends", 0)),
            wal_bytes_written=int(payload.get("wal_bytes_written", 0)),
            simulated_io_seconds=float(payload.get("simulated_io_seconds", 0.0)),
        )

    def as_dict(self) -> Dict[str, float]:
        return {
            "pages_read": self.pages_read,
            "pages_written": self.pages_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "wal_appends": self.wal_appends,
            "wal_bytes_written": self.wal_bytes_written,
            "simulated_io_seconds": round(self.simulated_io_seconds, 6),
        }


@dataclass
class DiskModel:
    """A simple sequential-throughput model of the paper's NVMe SSD.

    The defaults follow the experiment setup (§6): ~3400 MB/s sequential
    reads, ~2500 MB/s sequential writes, plus a small per-operation latency.
    The model only feeds the ``simulated_io_seconds`` counter; wall-clock
    timings in the benchmarks are real Python execution times.
    """

    read_bandwidth_bytes_per_s: float = 3400e6
    write_bandwidth_bytes_per_s: float = 2500e6
    per_operation_latency_s: float = 20e-6
    #: When True, every device page read/write really sleeps for its modelled
    #: cost (releasing the GIL), so wall-clock benchmarks observe I/O latency
    #: that background flushing and parallel partition scans can overlap.
    #: Default False: the cost only feeds the ``simulated_io_seconds`` meter.
    wall_clock: bool = False

    def read_cost(self, num_bytes: int) -> float:
        return self.per_operation_latency_s + num_bytes / self.read_bandwidth_bytes_per_s

    def write_cost(self, num_bytes: int) -> float:
        return self.per_operation_latency_s + num_bytes / self.write_bandwidth_bytes_per_s

    def charge(self, seconds: float) -> None:
        """Apply one operation's cost to wall-clock time (no-op by default)."""
        if self.wall_clock and seconds > 0:
            time.sleep(seconds)


# ======================================================================================
# Data statistics (per-column summaries collected at flush/merge time)
# ======================================================================================

#: Default number of histogram buckets per numeric column.
HISTOGRAM_BUCKETS = 32

#: Bitmap size (in bits) of the linear-counting distinct sketch.  512 bits
#: keep the estimate within a few percent up to a few hundred distinct values
#: per component — plenty for equality-selectivity estimation — while the
#: serialized form stays ≤128 hex chars on the metadata page (statistics are
#: charged to the component's on-disk size, so they must stay small).
SKETCH_BITS = 512


class EquiWidthHistogram:
    """An equi-width histogram over numeric values.

    Built in one pass over a component's decoded column values at flush/merge
    time; queried by the optimizer to estimate what fraction of a column's
    values fall inside a predicate's ``[low, high]`` range.

    Example:
        >>> h = EquiWidthHistogram.build([1, 2, 3, 4, 5, 6, 7, 8, 9, 10], buckets=5)
        >>> round(h.range_fraction(1, 10), 2)
        1.0
        >>> round(h.range_fraction(None, 5), 2)   # values <= 5, interpolated
        0.44
    """

    __slots__ = ("low", "high", "counts", "total")

    def __init__(self, low: float, high: float, counts: List[int]) -> None:
        self.low = low
        self.high = high
        self.counts = counts
        self.total = sum(counts)

    @classmethod
    def build(
        cls, values: Sequence[float], buckets: int = HISTOGRAM_BUCKETS
    ) -> Optional["EquiWidthHistogram"]:
        """Build a histogram from raw values (None when there are no values)."""
        if not values:
            return None
        low = min(values)
        high = max(values)
        if low == high:
            return cls(low, high, [len(values)])
        counts = [0] * buckets
        width = (high - low) / buckets
        for value in values:
            index = min(int((value - low) / width), buckets - 1)
            counts[index] += 1
        return cls(low, high, counts)

    # -- estimation --------------------------------------------------------------------
    def range_fraction(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimated fraction of values in the inclusive range ``[low, high]``.

        Partial bucket overlap is interpolated linearly (the standard
        equi-width assumption of uniformity within a bucket).
        """
        if self.total == 0:
            return 0.0
        query_low = self.low if low is None else low
        query_high = self.high if high is None else high
        if query_high < self.low or query_low > self.high:
            return 0.0
        if self.low == self.high:
            return 1.0 if query_low <= self.low <= query_high else 0.0
        width = (self.high - self.low) / len(self.counts)
        covered = 0.0
        for index, count in enumerate(self.counts):
            bucket_low = self.low + index * width
            bucket_high = bucket_low + width
            overlap_low = max(bucket_low, query_low)
            overlap_high = min(bucket_high, query_high)
            if overlap_high <= overlap_low:
                continue
            covered += count * (overlap_high - overlap_low) / width
        return min(1.0, covered / self.total)

    def merge(self, other: "EquiWidthHistogram") -> "EquiWidthHistogram":
        """Combine two histograms by re-bucketing over the union of bounds.

        Counts are spread uniformly across the target buckets each source
        bucket overlaps — approximate, but the merged histogram is only used
        for selectivity estimation, never for correctness.
        """
        low = min(self.low, other.low)
        high = max(self.high, other.high)
        buckets = max(len(self.counts), len(other.counts))
        if low == high:
            return EquiWidthHistogram(low, high, [self.total + other.total])
        counts = [0.0] * buckets
        width = (high - low) / buckets
        for source in (self, other):
            source_width = (
                (source.high - source.low) / len(source.counts)
                if source.high > source.low
                else 0.0
            )
            for index, count in enumerate(source.counts):
                if not count:
                    continue
                if source_width == 0.0:
                    target = min(int((source.low - low) / width), buckets - 1)
                    counts[target] += count
                    continue
                bucket_low = source.low + index * source_width
                bucket_high = bucket_low + source_width
                first = min(int((bucket_low - low) / width), buckets - 1)
                last = min(int((bucket_high - low) / width - 1e-12), buckets - 1)
                span = max(1, last - first + 1)
                for target in range(first, first + span):
                    counts[target] += count / span
        return EquiWidthHistogram(low, high, [int(round(c)) for c in counts])

    # -- serialization ------------------------------------------------------------------
    def as_dict(self) -> dict:
        return {"low": self.low, "high": self.high, "counts": self.counts}

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> Optional["EquiWidthHistogram"]:
        if not payload:
            return None
        return cls(payload["low"], payload["high"], list(payload["counts"]))


class DistinctCountSketch:
    """Linear-counting sketch estimating the number of distinct values.

    Each value hashes (seeded CRC-32, deterministic across processes) to one
    bit of a fixed bitmap; the distinct-count estimate is the classic linear
    counting formula ``-m * ln(z / m)`` where ``z`` is the number of zero bits.
    Sketches merge by OR-ing bitmaps, which is what lets per-component
    statistics aggregate into dataset-level statistics without rescanning.

    Example:
        >>> sketch = DistinctCountSketch()
        >>> for value in ["a", "b", "c", "a", "a", "b"]:
        ...     sketch.add(value)
        >>> round(sketch.estimate())
        3
    """

    __slots__ = ("bits", "bitmap")

    def __init__(self, bits: int = SKETCH_BITS, bitmap: int = 0) -> None:
        self.bits = bits
        self.bitmap = bitmap

    def add(self, value) -> None:
        """Hash one value into the bitmap (any value with a stable ``repr``)."""
        digest = zlib.crc32(repr(value).encode("utf-8", "backslashreplace"))
        # Knuth multiplicative mix: CRC-32's low bits cluster for similar
        # inputs, and ``% bits`` with a power-of-two size keeps only those.
        mixed = (digest * 2654435761) & 0xFFFFFFFF
        self.bitmap |= 1 << (mixed >> 23) % self.bits

    def estimate(self) -> float:
        """The linear-counting distinct estimate (0.0 for an empty sketch)."""
        ones = bin(self.bitmap).count("1")
        zeros = self.bits - ones
        if zeros == 0:
            return float(self.bits)
        if ones == 0:
            return 0.0
        return -self.bits * math.log(zeros / self.bits)

    def merge(self, other: "DistinctCountSketch") -> "DistinctCountSketch":
        if self.bits != other.bits:
            raise ValueError("cannot merge sketches of different sizes")
        return DistinctCountSketch(self.bits, self.bitmap | other.bitmap)

    def as_dict(self) -> dict:
        return {"bits": self.bits, "bitmap": format(self.bitmap, "x")}

    @classmethod
    def from_dict(cls, payload: Optional[dict]) -> "DistinctCountSketch":
        if not payload:
            return cls()
        return cls(payload["bits"], int(payload["bitmap"], 16))


@dataclass
class ColumnStatistics:
    """Summary statistics for one (array-free) column path of a component.

    Collected once when the component is written — from the shredded column
    values on the columnar flush/merge path, from the documents themselves on
    the row-layout path — and merged across components/partitions on demand by
    :func:`repro.query.stats.collect_dataset_statistics`.

    Attributes:
        path: Dotted field path ("user.name"), array steps never included.
        count: Number of records with a present atomic value at the path.
        numeric_count: How many of those values were ints/floats.
        string_count: How many were strings.
        bool_count: How many were booleans.
        null_count: How many were NULL.
        min_value / max_value: Bounds over the numeric values.
        histogram: Equi-width histogram over the numeric values (None when the
            column held no numeric values).
        distinct: Distinct-count sketch over every present value.
    """

    path: str
    count: int = 0
    numeric_count: int = 0
    string_count: int = 0
    bool_count: int = 0
    null_count: int = 0
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    histogram: Optional[EquiWidthHistogram] = None
    distinct: DistinctCountSketch = field(default_factory=DistinctCountSketch)

    # -- estimation ---------------------------------------------------------------------
    def distinct_estimate(self) -> float:
        return max(1.0, self.distinct.estimate())

    def value_fraction(self, op: str, value, record_count: int) -> float:
        """Estimated fraction of *records* whose value at the path passes ``op value``.

        Follows the SQL++ comparison semantics the pushdown layer enforces:
        MISSING/NULL and non-atomic values never pass ``==``/``<``/``<=``/
        ``>``/``>=``; ``!=`` passes for any present value other than the
        literal.  Records without a collected value therefore contribute 0.
        """
        if record_count <= 0:
            return 0.0
        present = min(1.0, self.count / record_count)
        if op == "!=":
            return present * (1.0 - self._equality_fraction(value))
        if op == "==":
            return present * self._equality_fraction(value)
        return present * self._range_fraction(op, value)

    def _equality_fraction(self, value) -> float:
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            if self.count == 0 or self.numeric_count == 0:
                return 0.0
            if self.min_value is not None and not (
                self.min_value <= value <= self.max_value
            ):
                return 0.0
        elif isinstance(value, str) and self.string_count == 0:
            return 0.0
        return min(1.0, 1.0 / self.distinct_estimate())

    def _range_fraction(self, op: str, value) -> float:
        if op in ("<", "<="):
            return self._numeric_range_share(None, value)
        return self._numeric_range_share(value, None)

    def _numeric_range_share(self, low, high) -> float:
        """Fraction of *present* values inside the numeric range [low, high]."""
        for bound in (low, high):
            if bound is not None and (
                isinstance(bound, bool) or not isinstance(bound, (int, float))
            ):
                # String/bool ranges: no ordering statistics are kept; fall
                # back to a fixed guess (a third of present values).
                return 1.0 / 3.0
        if self.numeric_count == 0 or self.count == 0:
            return 0.0
        numeric_share = self.numeric_count / self.count
        if self.histogram is None:
            return numeric_share / 3.0
        return numeric_share * self.histogram.range_fraction(low, high)

    def range_selectivity(self, low, high, record_count: int) -> float:
        """Estimated fraction of records with a value in the inclusive range.

        This is the *combined* estimate for a conjunction of range predicates
        on one column — intersecting the bounds first avoids the independence
        error of multiplying ``P(x >= low)`` by ``P(x <= high)``.
        """
        if record_count <= 0:
            return 0.0
        present = min(1.0, self.count / record_count)
        return present * self._numeric_range_share(low, high)

    # -- merging -----------------------------------------------------------------------
    def merge(self, other: "ColumnStatistics") -> "ColumnStatistics":
        merged = ColumnStatistics(
            path=self.path,
            count=self.count + other.count,
            numeric_count=self.numeric_count + other.numeric_count,
            string_count=self.string_count + other.string_count,
            bool_count=self.bool_count + other.bool_count,
            null_count=self.null_count + other.null_count,
            distinct=self.distinct.merge(other.distinct),
        )
        lows = [v for v in (self.min_value, other.min_value) if v is not None]
        highs = [v for v in (self.max_value, other.max_value) if v is not None]
        merged.min_value = min(lows) if lows else None
        merged.max_value = max(highs) if highs else None
        if self.histogram is not None and other.histogram is not None:
            merged.histogram = self.histogram.merge(other.histogram)
        else:
            merged.histogram = self.histogram or other.histogram
        return merged

    # -- serialization -----------------------------------------------------------------
    def as_dict(self) -> dict:
        """Compact serialized form (zero/None fields omitted — these live on
        the metadata page of every component, so bytes matter)."""
        payload = {"path": self.path, "count": self.count}
        for name in ("numeric_count", "string_count", "bool_count", "null_count"):
            value = getattr(self, name)
            if value:
                payload[name] = value
        if self.min_value is not None:
            payload["min_value"] = self.min_value
            payload["max_value"] = self.max_value
        if self.histogram is not None:
            payload["histogram"] = self.histogram.as_dict()
        if self.distinct.bitmap:
            payload["distinct"] = self.distinct.as_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ColumnStatistics":
        return cls(
            path=payload["path"],
            count=payload.get("count", 0),
            numeric_count=payload.get("numeric_count", 0),
            string_count=payload.get("string_count", 0),
            bool_count=payload.get("bool_count", 0),
            null_count=payload.get("null_count", 0),
            min_value=payload.get("min_value"),
            max_value=payload.get("max_value"),
            histogram=EquiWidthHistogram.from_dict(payload.get("histogram")),
            distinct=DistinctCountSketch.from_dict(payload.get("distinct")),
        )


class ColumnStatisticsBuilder:
    """Accumulates one column's values during a component build.

    Numeric values are buffered so the equi-width histogram can be built with
    exact bounds in :meth:`finish`; strings and booleans update counters and
    the distinct sketch immediately.
    """

    __slots__ = ("path", "stats", "_numeric_values")

    def __init__(self, path: str) -> None:
        self.path = path
        self.stats = ColumnStatistics(path=path)
        self._numeric_values: List[float] = []

    def observe(self, value) -> None:
        """Record one present value (callers never pass MISSING or containers)."""
        stats = self.stats
        if value is None:
            stats.count += 1
            stats.null_count += 1
            return
        stats.count += 1
        stats.distinct.add(value)
        if isinstance(value, bool):
            stats.bool_count += 1
        elif isinstance(value, (int, float)):
            stats.numeric_count += 1
            # NaN/inf would poison histogram bounds; they still count toward
            # numeric_count and the distinct sketch above.
            if isinstance(value, int) or math.isfinite(value):
                self._numeric_values.append(value)
        elif isinstance(value, str):
            stats.string_count += 1

    def finish(self) -> ColumnStatistics:
        """Finalize: build the histogram and return the statistics."""
        if self._numeric_values:
            self.stats.min_value = min(self._numeric_values)
            self.stats.max_value = max(self._numeric_values)
            self.stats.histogram = EquiWidthHistogram.build(self._numeric_values)
            self._numeric_values = []
        return self.stats


def collect_document_statistics(
    builders: Dict[str, ColumnStatisticsBuilder], document: dict, prefix: str = ""
) -> None:
    """Fold one document's atomic, array-free field values into ``builders``.

    Used by the row-layout component builders (the columnar builders read the
    shredded column buffers directly).  Arrays are skipped entirely so that
    row- and column-collected statistics describe the same population: the
    array-free paths the pushdown/optimizer layers can use.
    """
    for name, value in document.items():
        path = f"{prefix}{name}" if prefix else name
        if isinstance(value, dict):
            collect_document_statistics(builders, value, f"{path}.")
        elif isinstance(value, (list, tuple)):
            continue
        else:
            builder = builders.get(path)
            if builder is None:
                builder = builders[path] = ColumnStatisticsBuilder(path)
            builder.observe(value)
