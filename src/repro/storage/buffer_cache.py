"""Buffer cache: an LRU page cache shared by every component of a node.

The cache serves two roles in the reproduction, mirroring §2.1.1 and §4.5.2:

* queries read component pages through it (hits avoid device reads, which is
  why the ``sensors`` dataset's APAX/AMAX queries become CPU-bound once the
  whole dataset fits in the 10 GB cache of the paper's setup);
* the AMAX writer *confiscates* pages from it to buffer growing megapages
  instead of using a dedicated memory budget (§4.5.2) — modelled here by the
  :meth:`confiscate` / :meth:`return_confiscated` budget accounting.

The cache is shared by concurrent reader threads, background flush/merge
workers, and parallel partition scans, so every structural operation takes
the internal lock (an ``OrderedDict`` cannot survive concurrent
``move_to_end`` / eviction).  Page *contents* are immutable bytes, safe to
hand out without copying.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Tuple

from ..model.errors import StorageError
from .device import ComponentFile


class BufferCache:
    """A simple LRU cache of ``(file name, page id) -> page bytes``."""

    def __init__(self, capacity_pages: int = 1024) -> None:
        if capacity_pages <= 0:
            raise StorageError("buffer cache needs at least one page")
        self.capacity_pages = capacity_pages
        self._pages: "OrderedDict[Tuple[str, int], bytes]" = OrderedDict()
        self._confiscated = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Optional eviction counter child, wired up by the owning Datastore
        #: (the cache itself has no device to reach a registry through).
        self._eviction_counter = None

    # -- reads ------------------------------------------------------------------
    def read_page(self, component_file: ComponentFile, page_id: int) -> bytes:
        """Read a page through the cache, recording hit/miss statistics."""
        key = (component_file.name, page_id)
        device = component_file.device
        stats = device.stats
        with self._lock:
            cached = self._pages.get(key)
            if cached is not None:
                self._pages.move_to_end(key)
                self.hits += 1
                stats.record_cache(True)
                device.note_cache(True)
                return cached
            self.misses += 1
            stats.record_cache(False)
            device.note_cache(False)
        # The device read happens outside the lock (it may sleep under the
        # wall-clock disk model); a racing reader of the same page just
        # performs a duplicate read and the second insert wins harmlessly.
        data = component_file.read_page(page_id)
        with self._lock:
            self._insert_locked(key, data)
        return data

    def invalidate_file(self, name: str) -> None:
        """Drop every cached page of a deleted component."""
        with self._lock:
            stale = [key for key in self._pages if key[0] == name]
            for key in stale:
                del self._pages[key]

    def _insert_locked(self, key: Tuple[str, int], data: bytes) -> None:
        self._pages[key] = data
        self._pages.move_to_end(key)
        while len(self._pages) + self._confiscated > self.capacity_pages and self._pages:
            self._pages.popitem(last=False)
            self.evictions += 1
            if self._eviction_counter is not None:
                self._eviction_counter.inc()

    # -- confiscation (AMAX temporary buffers, §4.5.2) ------------------------------
    def confiscate(self, pages: int = 1) -> None:
        """Reserve cache pages as temporary write buffers."""
        if pages < 0:
            raise StorageError("cannot confiscate a negative number of pages")
        with self._lock:
            self._confiscated += pages
            while (
                len(self._pages) + self._confiscated > self.capacity_pages
                and self._pages
            ):
                self._pages.popitem(last=False)
                self.evictions += 1
                if self._eviction_counter is not None:
                    self._eviction_counter.inc()

    def return_confiscated(self, pages: int = 1) -> None:
        """Give confiscated pages back to the cache."""
        with self._lock:
            self._confiscated = max(0, self._confiscated - pages)

    @property
    def confiscated_pages(self) -> int:
        return self._confiscated

    @property
    def cached_pages(self) -> int:
        return len(self._pages)

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
