"""Plan splitting for scatter-gather: shard-local fragment + merge fragment.

A query is split into what every shard executes (the *local fragment*, still
a plain :class:`~repro.query.plan.Query`, so each shard runs its own
cost-based access-path selection, pushdown, and executor over its slice of
the data) and what the coordinator does with the per-shard results (the
*merge fragment*).  The split is a pure function of the query — coordinator
and shards each call :func:`split_query` on the same SQL++ text and arrive
at the identical split, so no plan serialization crosses the wire.

Split rules, by the first pipeline breaker:

* **AGGREGATE** — each shard computes partial aggregates; the coordinator
  merges one row per shard.  COUNT partials sum; SUM/MIN/MAX partials fold
  with the oracle's own operators (so SQL++'s cross-type behavior — e.g.
  mixed int/str MIN raising ``TypeError`` — is preserved); AVG is decomposed
  into a SUM partial plus an internal COUNTV partial (the count of
  *contributing* numeric values) and recombined as ``sum/count`` — the
  standard algebraic-aggregate decomposition.
* **GROUP BY** — each shard groups locally with the same partial aggregate
  list; the coordinator merges groups by key (a group's rows live on many
  shards, so any ORDER BY/LIMIT after the GROUP BY must run *after* the
  merge, never per shard).
* **neither** (streaming SELECT) — shards run the whole breaker chain
  including any per-shard ORDER BY + LIMIT top-K; the coordinator
  concatenates and re-applies ORDER BY/LIMIT over the union.
* **unknown breakers** (e.g. WINDOW) — any breaker type outside
  :data:`SHARD_SAFE_BREAKERS` routes the query to the ``raw`` fallback
  *explicitly*: shards stream bare pipeline rows and the coordinator runs
  the entire breaker chain, so a breaker this module has never heard of can
  slow a query down but never silently drop it from the plan.
* **joins and subqueries** — a hash join's build table and a subquery's
  inner rows must see the *whole* dataset, not one shard's slice, so these
  queries become ``kind="fetch"``: the coordinator pulls the referenced
  datasets from every shard into a local temporary store and runs the
  unmodified query there.  The one provably shard-local exception: a single
  join whose probe and build keys are both the *primary key* of their
  dataset — primary keys route placement (``shard_for_key``), keys are
  int/str only, and equal keys hash identically, so every matching pair is
  co-resident and the join distributes untouched.

Float caveat: shard-parallel SUM/AVG folds per-shard subtotals, which can
differ from the single-process left-fold in the last ulp for floats.
Integer aggregates — and the COUNT/MIN/MAX suites of the paper's Figures
11/14 — are exact.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..query.executor import _hashable, rep_ranks
from ..query.expressions import Field, Subquery, Var
from ..query.plan import (
    AggregateNode,
    GroupByNode,
    JoinNode,
    LimitNode,
    OrderByNode,
    ProjectNode,
    Query,
)

#: Breaker types this module knows how to place; anything else (a WINDOW, or
#: a breaker added after this comment was written) falls back to ``raw``.
SHARD_SAFE_BREAKERS = (
    GroupByNode,
    AggregateNode,
    OrderByNode,
    LimitNode,
    ProjectNode,
)

#: Separator of internal partial-column names (``avg`` decomposition); SQL++
#: output names are identifiers or ``$N``, so ``#`` can never collide.
PARTIAL_SEPARATOR = "#"


@dataclass
class MergeAggregate:
    """How to recombine one output aggregate from per-shard partial columns."""

    name: str
    function: str
    #: Column names of the partials in the shard rows: ``(name,)`` for
    #: count/sum/min/max, ``(name#sum, name#n)`` for avg.
    columns: Tuple[str, ...]


@dataclass
class SplitPlan:
    """The outcome of :func:`split_query`: local fragment + merge recipe."""

    #: ``"aggregate"`` / ``"groupby"`` (partial-aggregate pushdown),
    #: ``"stream"`` (shards run all breakers, coordinator concatenates),
    #: ``"raw"`` (no pushdown: shards stream pipeline rows, the coordinator
    #: runs every breaker — the conservative fallback), or ``"fetch"``
    #: (joins/subqueries: the coordinator pulls whole datasets and runs the
    #: unmodified query locally — no shard-local fragment at all).
    kind: str
    #: What each shard executes (shard-side optimizer/pushdown still apply);
    #: None for ``fetch``, which has no shard-local fragment.
    local_query: Optional[Query] = None
    #: Group-key output names (``groupby`` kind only).
    key_names: List[str] = field(default_factory=list)
    #: Aggregate merge recipes (``aggregate``/``groupby`` kinds).
    aggregates: List[MergeAggregate] = field(default_factory=list)
    #: Breakers the coordinator runs after merging (oracle breaker nodes).
    post_breakers: List[object] = field(default_factory=list)
    #: Datasets the coordinator must pull before executing (``fetch`` only).
    fetch_datasets: List[str] = field(default_factory=list)

    def describe(self) -> str:
        """One line per merge-fragment step (rendered by distributed EXPLAIN)."""
        lines = []
        if self.kind == "groupby":
            aggregates = ", ".join(
                f"{a.name}={a.function}({'+'.join(a.columns)})" for a in self.aggregates
            )
            lines.append(
                f"MERGE-GROUPBY keys=[{', '.join(self.key_names)}] "
                f"aggregates=[{aggregates}]"
            )
        elif self.kind == "aggregate":
            aggregates = ", ".join(
                f"{a.name}={a.function}({'+'.join(a.columns)})" for a in self.aggregates
            )
            lines.append(f"MERGE-AGGREGATE {aggregates}")
        elif self.kind == "stream":
            lines.append("MERGE-CONCAT (shards ran all breakers)")
        elif self.kind == "fetch":
            lines.append(
                "FETCH-AND-EXECUTE at coordinator "
                f"(datasets: {', '.join(self.fetch_datasets)})"
            )
        else:
            lines.append("MERGE-CONCAT (raw rows; no pushdown)")
        from ..query.plan import _describe_breaker

        for op in self.post_breakers:
            lines.append(_describe_breaker(op))
        return "\n".join(lines)


def _partial_aggregates(
    aggregates: List[Tuple[str, str, Optional[object]]]
) -> Tuple[List[Tuple[str, str, Optional[object]]], List[MergeAggregate]]:
    """Decompose output aggregates into shard partials + merge recipes."""
    partials: List[Tuple[str, str, Optional[object]]] = []
    merges: List[MergeAggregate] = []
    for name, function, expression in aggregates:
        if function == "avg":
            sum_column = f"{name}{PARTIAL_SEPARATOR}sum"
            count_column = f"{name}{PARTIAL_SEPARATOR}n"
            partials.append((sum_column, "sum", expression))
            partials.append((count_column, "countv", expression))
            merges.append(MergeAggregate(name, "avg", (sum_column, count_column)))
        else:
            partials.append((name, function, expression))
            merges.append(MergeAggregate(name, function, (name,)))
    return partials, merges


def _clone_with_breakers(query: Query, breakers: List[object]) -> Query:
    """A shallow copy of the builder with a replacement breaker chain.

    The partial breaker nodes are constructed here, already resolved — they
    bypass :meth:`Query._resolve_aggregates` (which gates on the public
    :data:`~repro.query.plan.AGGREGATE_FUNCTIONS`, and ``countv`` is
    internal-only).
    """
    local = copy.copy(query)
    local._pipeline = list(query._pipeline)
    local._breakers = breakers
    return local


def _raw_local(query: Query) -> Query:
    """The shard fragment for the ``raw`` fallback: pipeline only.

    The breakers run at the coordinator, but scan pushdown on the stripped
    fragment would no longer see the fields they reference and prune them
    from the streamed rows.  Pin the ORIGINAL query's projection (computed
    with the full breaker chain in place) on the fragment instead.
    """
    local = _clone_with_breakers(query, [])
    fields = query._pushdown_fields()
    if fields is None:
        local.project_all()
    else:
        local.project_fields(list(fields))
    return local


def referenced_datasets(query: Query) -> List[str]:
    """Every dataset a query touches: scan, joins, and (nested) subqueries."""
    names: List[str] = []

    def walk_query(q: Query) -> None:
        if q.dataset_name not in names:
            names.append(q.dataset_name)
        for op in q._pipeline:
            if isinstance(op, JoinNode) and op.dataset not in names:
                names.append(op.dataset)
        for subquery in _collect_subqueries(q):
            inner = subquery.compiled.query
            if inner is not None:
                walk_query(inner)

    walk_query(query)
    return names


def _collect_subqueries(query: Query) -> List[Subquery]:
    """Top-level Subquery expressions of one builder query (not nested ones)."""
    from ..query.plan import collect_expressions

    found: List[Subquery] = []

    def walk(expression) -> None:
        if isinstance(expression, Subquery):
            found.append(expression)
            return  # its inner query is walked separately by the caller
        for child in expression.children():
            walk(child)

    for expression in collect_expressions(query._pipeline, query._breakers):
        walk(expression)
    return found


def _pk_field_of(expression, variable: str, pk: Optional[str]) -> bool:
    """Is ``expression`` exactly ``Field(Var(variable), pk)`` (one step)?"""
    return (
        pk is not None
        and isinstance(expression, Field)
        and isinstance(expression.base, Var)
        and expression.base.name == variable
        and tuple(expression.path.steps) == (pk,)
    )


def _co_hashed_join(
    query: Query, pk_fields: Optional[Dict[str, str]]
) -> bool:
    """A single pk==pk join is shard-local: placement hashes the primary key,
    keys are int/str only, and equal keys land on the same shard."""
    if pk_fields is None:
        return False
    joins = [op for op in query._pipeline if isinstance(op, JoinNode)]
    if len(joins) != 1 or not isinstance(query._pipeline[0], JoinNode):
        return False
    join = query._pipeline[0]
    return _pk_field_of(
        join.probe_key, query.variable, pk_fields.get(query.dataset_name)
    ) and _pk_field_of(join.build_key, join.variable, pk_fields.get(join.dataset))


def split_query(
    query: Query, pk_fields: Optional[Dict[str, str]] = None
) -> SplitPlan:
    """Split a builder query into its shard-local and merge fragments.

    ``pk_fields`` maps dataset name → primary-key field; it enables the
    co-hashed pk==pk join exception.  Coordinator and shards must pass
    equivalent maps so both sides derive the identical split.
    """
    has_subquery = bool(_collect_subqueries(query))
    joins = [op for op in query._pipeline if isinstance(op, JoinNode)]
    if has_subquery or (joins and not _co_hashed_join(query, pk_fields)):
        # A shard sees only its slice of the build/inner datasets, so the
        # whole query must run where the complete data can be assembled.
        return SplitPlan(
            kind="fetch",
            fetch_datasets=referenced_datasets(query),
        )
    breakers = list(query._breakers)
    if not all(isinstance(op, SHARD_SAFE_BREAKERS) for op in breakers):
        # An unknown breaker type (WINDOW, or anything newer than this
        # module): route to the raw fallback *explicitly* — shards stream
        # pipeline rows, the coordinator runs the full oracle breaker chain.
        # Never run an unknown breaker per shard or drop it from the merge.
        return SplitPlan(
            kind="raw",
            local_query=_raw_local(query),
            post_breakers=breakers,
        )
    first_breaker_index = None
    for index, op in enumerate(breakers):
        if isinstance(op, (GroupByNode, AggregateNode)):
            first_breaker_index = index
            break
    if first_breaker_index is None:
        # Streaming SELECT: shards run everything; the coordinator re-applies
        # the order-sensitive suffix over the concatenated union (a shard's
        # ORDER BY+LIMIT is a correct per-shard top-K).
        post = [op for op in breakers if isinstance(op, (OrderByNode, LimitNode))]
        return SplitPlan(
            kind="stream",
            local_query=_clone_with_breakers(query, list(breakers)),
            post_breakers=post,
        )
    prefix = breakers[:first_breaker_index]
    if not all(isinstance(op, ProjectNode) for op in prefix):
        # An ORDER BY/LIMIT *before* the aggregation (builder-constructed
        # plans only; lowering never emits this) is not distributable without
        # global ordering — fall back to streaming raw rows and running every
        # breaker at the coordinator.  Correct, just no pushdown.
        return SplitPlan(
            kind="raw",
            local_query=_raw_local(query),
            post_breakers=list(breakers),
        )
    node = breakers[first_breaker_index]
    suffix = breakers[first_breaker_index + 1 :]
    if isinstance(node, AggregateNode):
        partials, merges = _partial_aggregates(node.aggregates)
        local = _clone_with_breakers(query, prefix + [AggregateNode(partials)])
        return SplitPlan(
            kind="aggregate",
            local_query=local,
            aggregates=merges,
            post_breakers=suffix,
        )
    partials, merges = _partial_aggregates(node.aggregates)
    local = _clone_with_breakers(
        query, prefix + [GroupByNode(list(node.keys), partials)]
    )
    return SplitPlan(
        kind="groupby",
        local_query=local,
        key_names=[name for name, _ in node.keys],
        aggregates=merges,
        post_breakers=suffix,
    )


# ======================================================================================
# Merging
# ======================================================================================


def _merge_partials(function: str, partials: List[object]):
    """Recombine one aggregate's per-shard partials, oracle-faithfully.

    ``None`` partials come from shards whose slice had no contributing
    values (the oracle's SUM/MIN/MAX of nothing is NULL) and are skipped;
    the survivors fold with the same operators the row-at-a-time aggregator
    uses, so e.g. MIN over int partials from one shard and str partials from
    another raises ``TypeError`` exactly like the single-process engine.
    """
    if function == "count":
        return sum(partials)
    present = [value for value in partials if value is not None]
    if not present:
        return None
    if function == "sum":
        total = present[0]
        for value in present[1:]:
            total = total + value
        return total
    if function == "min":
        return min(present)
    if function == "max":
        return max(present)
    raise ValueError(f"unmergeable aggregate function {function!r}")


def _finalize(merge: MergeAggregate, columns: Dict[str, List[object]]):
    if merge.function == "avg":
        sum_column, count_column = merge.columns
        count = sum(columns[count_column])
        if not count:
            return None
        total = _merge_partials("sum", columns[sum_column])
        return total / count
    return _merge_partials(merge.function, columns[merge.columns[0]])


def merge_rows(split: SplitPlan, shard_rows: List[List[dict]]) -> List[dict]:
    """Combine per-shard result rows according to the split's merge recipe.

    The caller runs ``split.post_breakers`` (via
    :func:`repro.query.executor.run_breakers`) over the returned rows —
    including, for the streaming kinds, the re-applied ORDER BY/LIMIT.
    """
    if split.kind == "fetch":
        raise ValueError(
            "fetch-kind queries run entirely at the coordinator; "
            "there are no shard partials to merge"
        )
    if split.kind in ("stream", "raw"):
        merged: List[dict] = []
        for rows in shard_rows:
            merged.extend(rows)
        return merged
    if split.kind == "aggregate":
        columns: Dict[str, List[object]] = {}
        for rows in shard_rows:
            for row in rows:  # exactly one row per shard
                for column, value in row.items():
                    columns.setdefault(column, []).append(value)
        return [
            {merge.name: _finalize(merge, columns) for merge in split.aggregates}
        ]
    # groupby: merge partial groups by key tuple.  ``_hashable`` conflates
    # 1 / 1.0 / True (and MISSING/None), so groups split across shards can
    # carry *different* raw representatives; picking the minimum under
    # ``rep_ranks`` — the same total order each shard's GROUP BY used — makes
    # the merged representative independent of shard arrival order and equal
    # to the single-process oracle's choice (min is associative).
    groups: Dict[tuple, list] = {}  # key -> [key_values, columns, raw key tuple]
    order: List[tuple] = []
    for rows in shard_rows:
        for row in rows:
            raw = tuple(row[name] for name in split.key_names)
            key = tuple(_hashable(value) for value in raw)
            entry = groups.get(key)
            if entry is None:
                entry = [dict(zip(split.key_names, raw)), {}, raw]
                groups[key] = entry
                order.append(key)
            elif rep_ranks(raw) < rep_ranks(entry[2]):
                entry[0] = dict(zip(split.key_names, raw))
                entry[2] = raw
            columns = entry[1]
            for merge in split.aggregates:
                for column in merge.columns:
                    columns.setdefault(column, []).append(row[column])
    results: List[dict] = []
    for key in order:
        key_values, columns, _ = groups[key]
        merged_row = dict(key_values)
        for merge in split.aggregates:
            merged_row[merge.name] = _finalize(merge, columns)
        results.append(merged_row)
    return results
