"""Sharding: hash-partitioned scatter-gather over multiple engine processes.

``repro.shard`` lifts PR 4's intra-process partition parallelism across
processes: a :class:`~repro.shard.coordinator.ShardedDatastore` routes point
operations to the owning shard by the same stable CRC-32 key hash the engine
already uses for intra-store partitioning
(:func:`repro.lsm.keys.stable_key_hash`), and runs queries as scatter-gather
with partial-aggregate pushdown (:mod:`repro.shard.partial`) so the wire
moves aggregates, not rows.  Each shard is an independent ``python -m
repro.server`` engine process with its own directory, manifests, and WAL —
per-shard recovery is exactly the single-store
:meth:`~repro.store.datastore.Datastore.open` path.
"""

from .coordinator import ShardCluster, ShardedDatastore, shard_for_key
from .partial import SplitPlan, merge_rows, split_query

__all__ = [
    "ShardCluster",
    "ShardedDatastore",
    "SplitPlan",
    "merge_rows",
    "shard_for_key",
    "split_query",
]
