"""Shard coordinator: hash routing, scatter-gather, and cluster management.

:class:`ShardedDatastore` is the client-side coordinator.  It holds a small
pool of wire connections per shard, routes point operations (insert, delete,
lookup) to the owning shard by :func:`shard_for_key` — the same stable
CRC-32 hash the engine uses for intra-store partitioning, just modulo the
shard count instead of the partition count — and executes queries as
scatter-gather: every shard runs the same shard-local fragment
(:func:`repro.shard.partial.split_query`), their partial rows stream back
concurrently, and the coordinator merges
(:func:`repro.shard.partial.merge_rows`) and finishes the plan.

:class:`ShardCluster` is the process manager: it spawns one ``python -m
repro.server`` engine per shard, each with its own storage directory
(independent manifests and WAL — per-shard recovery is the ordinary
single-store open path), and supports killing and restarting individual
shards for fault-injection tests.

:class:`CoordinatorSessionHandler` plugs the coordinator into the wire
server, so ``python -m repro.server --shards N`` serves the *sharded* store
over the very same protocol a single engine speaks.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..lsm.keys import stable_key_hash
from ..model.errors import DatasetError
from ..net.client import DEFAULT_TIMEOUT, RemoteError, StatementResult, WireClient
from ..net.protocol import WireError
from ..obs import (
    MetricsRegistry,
    QueryTrace,
    Span,
    activate,
    annotate,
    current_trace,
    new_query_id,
    render_trace,
    span,
)
from ..query.executor import run_breakers
from ..storage.stats import IOStats
from .partial import SplitPlan, merge_rows, referenced_datasets, split_query

#: Alias used when fetching whole datasets for coordinator-side execution.
_FETCH_ALIAS = "doc"

#: Error codes after which a pooled connection cannot be reused (the
#: response stream may be desynchronized or the peer is gone).
_POISON_CODES = ("ConnectionError", "ServerShutdown", "WireError")

#: Documents per insert request when bulk-loading through the coordinator.
INSERT_CHUNK = 500


def shard_for_key(key, num_shards: int) -> int:
    """The shard owning ``key``: stable CRC-32 key hash modulo shard count."""
    return stable_key_hash(key) % num_shards


class _ClientPool:
    """A bounded pool of wire clients to one shard.

    Checkout blocks when ``capacity`` clients are in flight; connections that
    hit transport-level errors are discarded instead of returned, so a shard
    restart naturally cycles in fresh connections.
    """

    def __init__(
        self,
        host: str,
        port: int,
        capacity: int = 4,
        timeout: float = DEFAULT_TIMEOUT,
    ) -> None:
        self.host = host
        self.port = port
        self.capacity = capacity
        self.timeout = timeout
        self._idle: List[WireClient] = []
        self._created = 0
        self._closed = False
        self._lock = threading.Condition()

    @contextmanager
    def connection(self):
        client = self._checkout()
        try:
            yield client
        except RemoteError as error:
            if error.code in _POISON_CODES:
                self._discard(client)
            else:
                # A clean server-side statement error: the stream is intact.
                self._checkin(client)
            raise
        except BaseException:
            self._discard(client)
            raise
        else:
            self._checkin(client)

    def _checkout(self) -> WireClient:
        with self._lock:
            while True:
                if self._closed:
                    raise RemoteError(
                        f"connection pool for {self.host}:{self.port} is closed",
                        code="ConnectionError",
                    )
                if self._idle:
                    return self._idle.pop()
                if self._created < self.capacity:
                    self._created += 1
                    break
                self._lock.wait()
        try:
            return WireClient(self.host, self.port, timeout=self.timeout)
        except BaseException as error:
            with self._lock:
                self._created -= 1
                self._lock.notify()
            if isinstance(error, OSError):
                raise RemoteError(
                    f"cannot connect to shard at {self.host}:{self.port}: {error}",
                    code="ConnectionError",
                ) from error
            raise

    def _checkin(self, client: WireClient) -> None:
        with self._lock:
            if self._closed:
                self._created -= 1
            else:
                self._idle.append(client)
            self._lock.notify()
        if self._closed:
            client.close()

    def _discard(self, client: WireClient) -> None:
        client.close()
        with self._lock:
            self._created -= 1
            self._lock.notify()

    def close(self) -> None:
        with self._lock:
            self._closed = True
            idle, self._idle = self._idle, []
            self._lock.notify_all()
        for client in idle:
            client.close()


@dataclass
class ShardQueryStats:
    """What the last scatter-gather query moved, for pushdown verification.

    ``rows_transferred`` counts the rows that actually crossed the wire from
    shards to coordinator — for a pushed-down COUNT(*) over N shards this is
    exactly N (one partial row per shard), regardless of dataset size.
    ``pages_read`` sums the per-shard page touches (device reads plus buffer
    cache hits, including each shard's parallel scan-pool workers).
    """

    kind: str
    shards: int
    rows_transferred: int
    rows_returned: int
    pages_read: int


class ShardedDatastore:
    """Client-side coordinator over N engine-server shards.

    Mirrors the single-process :class:`~repro.store.datastore.Datastore`
    query/DML surface closely enough that differential tests can run the
    same workload against both; ``io_stats``/``io_snapshot`` accumulate the
    per-request I/O the shards report in their done frames.
    """

    def __init__(
        self,
        addresses: Sequence[Tuple[str, int]],
        pool_capacity: int = 4,
        timeout: float = DEFAULT_TIMEOUT,
        gather_workers: Optional[int] = None,
        observability: bool = True,
    ) -> None:
        if not addresses:
            raise ValueError("at least one shard address is required")
        self.addresses: List[Tuple[str, int]] = [
            (host, int(port)) for host, port in addresses
        ]
        self.num_shards = len(self.addresses)
        self._pool_capacity = pool_capacity
        self._timeout = timeout
        self._pools = [
            _ClientPool(host, port, pool_capacity, timeout)
            for host, port in self.addresses
        ]
        self._gather = ThreadPoolExecutor(
            max_workers=gather_workers or max(4, 2 * self.num_shards),
            thread_name_prefix="gather",
        )
        self._io = IOStats()
        self._pk_fields: Dict[str, str] = {}
        #: Stats of the most recent :meth:`query` (None before the first).
        self.last_query_stats: Optional[ShardQueryStats] = None
        #: Coordinator-side metrics: per-shard request/row-transfer counters
        #: (plus wire counters when this registry backs a WireServer).
        self.metrics = MetricsRegistry(enabled=observability)
        self._m_shard_requests = self.metrics.counter("repro_shard_requests_total")
        self._m_shard_rows = self.metrics.counter(
            "repro_shard_rows_transferred_total"
        )
        #: Stitched span tree of the most recent traced :meth:`query`.
        self.last_trace: Optional[QueryTrace] = None

    # -- plumbing ----------------------------------------------------------------------
    @property
    def io_stats(self) -> IOStats:
        return self._io

    def io_snapshot(self) -> IOStats:
        return self._io.snapshot()

    def _request(self, shard: int, payload: dict) -> StatementResult:
        pool = self._pools[shard]
        self._m_shard_requests.labels(shard=str(shard)).inc()
        try:
            with pool.connection() as client:
                result = client.request(payload)
        except RemoteError as error:
            if error.code in _POISON_CODES:
                raise RemoteError(
                    f"shard {shard} ({pool.host}:{pool.port}): {error}",
                    code=error.code,
                    query_id=error.query_id,
                ) from error
            raise
        io = result.io
        if io:
            self._io.add(IOStats.from_dict(io))
        if result.rows:
            self._m_shard_rows.labels(shard=str(shard)).inc(len(result.rows))
        return result

    def _scatter(self, payload: dict) -> List[StatementResult]:
        """Send one request to every shard concurrently; results in shard order."""
        futures = [
            self._gather.submit(self._request, shard, dict(payload))
            for shard in range(self.num_shards)
        ]
        return [future.result() for future in futures]

    # -- observability -----------------------------------------------------------------
    @contextmanager
    def traced_statement(self, text: str, executor: str = "codegen",
                         query_id: Optional[str] = None):
        """Trace one coordinator statement (the distributed counterpart of
        :meth:`repro.store.datastore.Datastore.traced_statement`).

        Yields None when observability is off; re-yields the active trace
        when called reentrantly.  On exit records the query counter/latency
        histogram and publishes ``self.last_trace``.
        """
        if not self.metrics.enabled:
            yield None
            return
        existing = current_trace()
        if existing is not None:
            yield existing
            return
        trace = QueryTrace(query_id=query_id, text=text)
        try:
            with activate(trace):
                yield trace
        finally:
            trace.root.attrs.setdefault("executor", executor)
            trace.root.attrs.setdefault("shards", self.num_shards)
            self.metrics.counter("repro_queries_total").labels(
                executor=executor
            ).inc()
            self.metrics.histogram("repro_query_seconds").labels(
                executor=executor
            ).observe(trace.root.duration_s)
            self.last_trace = trace

    def metrics_text(self) -> str:
        """The coordinator's metrics in Prometheus text exposition format."""
        return self.metrics.render_text()

    @staticmethod
    def _stitch_shard_trace(scatter_span, shard: int, done: dict) -> None:
        """Attach one shard's serialized span tree under the scatter span."""
        if scatter_span is None:
            return
        trace_dict = done.get("trace")
        if not trace_dict:
            return
        shard_span = Span.from_dict(trace_dict.get("root") or {"name": "statement"})
        shard_span.name = "shard"
        shard_span.attrs["shard"] = shard
        scatter_span.add_child(shard_span)

    # -- queries -----------------------------------------------------------------------
    def query(
        self,
        text: str,
        executor: str = "codegen",
        pushdown: bool = True,
        batch_size: Optional[int] = None,
        query_id: Optional[str] = None,
    ) -> list:
        """Run one SQL++ SELECT as scatter-gather with partial-agg pushdown.

        When observability is on the whole statement is traced: the shards'
        span trees (returned inside their done frames) are stitched under the
        coordinator's ``scatter`` span, and the merge fragment's breakers are
        recorded under ``merge`` — one tree for the distributed query,
        published as ``self.last_trace``.
        """
        from ..sqlpp import compile_query

        with self.traced_statement(
            text, executor=executor, query_id=query_id
        ) as trace:
            compiled = compile_query(text)
            if compiled.query is None:
                # FROM-less: evaluated locally, no shard touches a dataset.
                rows = compiled.execute(None, executor=executor)
                self.last_query_stats = ShardQueryStats(
                    kind="local",
                    shards=0,
                    rows_transferred=0,
                    rows_returned=len(rows),
                    pages_read=0,
                )
                return rows
            with span("optimize", distributed=True):
                split = split_query(
                    compiled.query, pk_fields=self._split_pk_fields(compiled)
                )
            if split.kind == "fetch":
                return self._fetch_and_execute(
                    compiled, split, executor, pushdown, batch_size
                )
            payload = {
                "op": "statement",
                "text": text,
                "mode": "partial",
                "executor": executor,
                "pushdown": pushdown,
            }
            if trace is not None:
                payload["query_id"] = trace.query_id
            if batch_size is not None:
                payload["batch_size"] = batch_size
            with span("scatter", shards=self.num_shards) as scatter_span:
                results = self._scatter(payload)
                for shard, result in enumerate(results):
                    self._stitch_shard_trace(scatter_span, shard, result.done)
            shard_rows = [result.rows for result in results]
            pages = sum(
                int(result.io.get("pages_read", 0))
                + int(result.io.get("cache_hits", 0))
                for result in results
            )
            transferred = sum(len(rows) for rows in shard_rows)
            with span("merge", kind=split.kind):
                merged = merge_rows(split, shard_rows)
                rows = run_breakers(iter(merged), split.post_breakers)
                if compiled.select_value:
                    rows = [row[compiled.value_column] for row in rows]
                annotate(rows_in=transferred, rows_out=len(rows))
            self.last_query_stats = ShardQueryStats(
                kind=split.kind,
                shards=self.num_shards,
                rows_transferred=transferred,
                rows_returned=len(rows),
                pages_read=pages,
            )
            return rows

    def _split_pk_fields(self, compiled) -> Dict[str, str]:
        """Primary keys of every dataset the query references.

        Shards derive the split with their complete dataset registry; the
        coordinator resolves the same map here (refreshing its cache over the
        wire when needed) so both sides place co-hashed joins identically.
        """
        pk_fields: Dict[str, str] = {}
        for dataset in referenced_datasets(compiled.query):
            try:
                pk_fields[dataset] = self._primary_key(dataset)
            except DatasetError:
                pass  # the query itself will fail with the real error
        return pk_fields

    def _fetch_and_execute(
        self, compiled, split: SplitPlan, executor, pushdown, batch_size
    ) -> list:
        """Run a join/subquery query at the coordinator over fetched data.

        Every referenced dataset is pulled whole from all shards into a
        temporary local datastore, then the unmodified compiled query runs
        there — correctness first; ``rows_transferred`` exposes the cost.
        """
        from ..store.datastore import Datastore

        transferred = 0
        pages = 0
        temp = Datastore()
        try:
            for dataset in split.fetch_datasets:
                temp.create_dataset(
                    dataset, primary_key_field=self._primary_key(dataset)
                )
                results = self._scatter(
                    {
                        "op": "statement",
                        "text": (
                            f"SELECT VALUE {_FETCH_ALIAS} "
                            f"FROM {dataset} AS {_FETCH_ALIAS};"
                        ),
                        "executor": executor,
                    }
                )
                documents = [row for result in results for row in result.rows]
                pages += sum(
                    int(result.io.get("pages_read", 0))
                    + int(result.io.get("cache_hits", 0))
                    for result in results
                )
                transferred += len(documents)
                if documents:
                    temp.dataset(dataset).insert_many(documents)
            rows = compiled.execute(
                temp,
                executor=executor,
                pushdown=pushdown,
                batch_size=batch_size,
            )
        finally:
            temp.close()
        self.last_query_stats = ShardQueryStats(
            kind="fetch",
            shards=self.num_shards,
            rows_transferred=transferred,
            rows_returned=len(rows),
            pages_read=pages,
        )
        return rows

    def explain(
        self, text: str, executor: str = "codegen", analyze: bool = False
    ) -> str:
        """Render the distributed plan: merge fragment + one shard's fragment."""
        from ..sqlpp import compile_query

        compiled = compile_query(text)
        if compiled.query is None:
            return compiled.explain(None)
        split = split_query(compiled.query, pk_fields=self._split_pk_fields(compiled))
        if split.kind == "fetch":
            lines = [
                f"DISTRIBUTED SCATTER-GATHER over {self.num_shards} shards "
                f"(kind=fetch)",
                "MERGE FRAGMENT (coordinator):",
            ]
            lines.extend("  " + line for line in split.describe().splitlines())
            lines.append("COORDINATOR PLAN (over the fetched datasets):")
            lines.extend("  " + line for line in compiled.explain(None).splitlines())
            return "\n".join(lines)
        # With observability on, ANALYZE runs the real scatter-gather below
        # and renders the stitched trace — the shard fragment is then shown
        # without its own per-shard analyze run.
        stitch = analyze and self.metrics.enabled
        shard_plan = self._request(
            0,
            {
                "op": "explain",
                "text": text,
                "mode": "partial",
                "executor": executor,
                "analyze": analyze and not stitch,
            },
        ).done["text"]
        lines = [
            f"DISTRIBUTED SCATTER-GATHER over {self.num_shards} shards "
            f"(kind={split.kind})",
            "MERGE FRAGMENT (coordinator):",
        ]
        lines.extend("  " + line for line in split.describe().splitlines())
        lines.append("SHARD FRAGMENT (every shard; shard 0 shown):")
        lines.extend("  " + line for line in shard_plan.splitlines())
        if stitch:
            self.query(text, executor=executor)
            if self.last_trace is not None:
                lines.append("")
                lines.append("ANALYZE TRACE:")
                lines.extend(render_trace(self.last_trace).splitlines())
        return "\n".join(lines)

    def split_for(self, text: str) -> Optional[SplitPlan]:
        """The split this coordinator would use for ``text`` (None = FROM-less)."""
        from ..sqlpp import compile_query

        compiled = compile_query(text)
        if compiled.query is None:
            return None
        return split_query(compiled.query, pk_fields=self._split_pk_fields(compiled))

    # -- DDL / DML ---------------------------------------------------------------------
    def create_dataset(
        self,
        name: str,
        layout: str = "amax",
        primary_key_field: Optional[str] = None,
    ) -> None:
        """Create the dataset on every shard (same name, layout, and key)."""
        self._scatter(
            {
                "op": "create_dataset",
                "name": name,
                "layout": layout,
                "primary_key_field": primary_key_field,
            }
        )
        self._pk_fields[name] = primary_key_field or "id"

    def _primary_key(self, dataset: str) -> str:
        cached = self._pk_fields.get(dataset)
        if cached is not None:
            return cached
        for row in self.list_datasets():  # refreshes the cache as a side effect
            if row["name"] == dataset:
                return row.get("primary_key", "id")
        raise DatasetError(f"unknown dataset {dataset!r}")

    def shard_for(self, dataset: str, key) -> int:
        """Which shard owns this primary key."""
        del dataset  # routing depends only on the key today
        return shard_for_key(key, self.num_shards)

    def insert(self, dataset: str, document: dict) -> Optional[int]:
        """Insert one document on its owning shard; returns that shard's
        commit sequence (sequences are per-shard, like per-process)."""
        pk = self._primary_key(dataset)
        try:
            key = document[pk]
        except (TypeError, KeyError):
            raise DatasetError(
                f"document is missing the primary key field {pk!r}"
            ) from None
        shard = shard_for_key(key, self.num_shards)
        result = self._request(
            shard, {"op": "insert", "dataset": dataset, "documents": [document]}
        )
        return result.done.get("sequence")

    def insert_many(self, dataset: str, documents: Sequence[dict]) -> int:
        """Bulk insert: group by owning shard, load all shards concurrently."""
        pk = self._primary_key(dataset)
        by_shard: Dict[int, List[dict]] = {}
        for document in documents:
            try:
                key = document[pk]
            except (TypeError, KeyError):
                raise DatasetError(
                    f"document is missing the primary key field {pk!r}"
                ) from None
            by_shard.setdefault(shard_for_key(key, self.num_shards), []).append(
                document
            )
        futures = []
        for shard, docs in by_shard.items():
            for start in range(0, len(docs), INSERT_CHUNK):
                chunk = docs[start : start + INSERT_CHUNK]
                futures.append(
                    self._gather.submit(
                        self._request,
                        shard,
                        {"op": "insert", "dataset": dataset, "documents": chunk},
                    )
                )
        return sum(future.result().done["count"] for future in futures)

    def delete(self, dataset: str, key) -> Optional[int]:
        shard = shard_for_key(key, self.num_shards)
        result = self._request(shard, {"op": "delete", "dataset": dataset, "key": key})
        return result.done.get("sequence")

    def point_lookup(self, dataset: str, key, fields: Optional[List[str]] = None):
        shard = shard_for_key(key, self.num_shards)
        result = self._request(
            shard, {"op": "lookup", "dataset": dataset, "key": key, "fields": fields}
        )
        return result.done.get("document")

    def count(self, dataset: str) -> int:
        results = self._scatter({"op": "count", "dataset": dataset})
        return sum(result.done["count"] for result in results)

    def list_datasets(self) -> List[dict]:
        """Union of every shard's datasets, record counts summed across shards."""
        results = self._scatter({"op": "list_datasets"})
        merged: Dict[str, dict] = {}
        order: List[str] = []
        for result in results:
            for row in result.rows:
                name = row["name"]
                if name in merged:
                    merged[name]["records"] += row.get("records", 0)
                else:
                    merged[name] = dict(row)
                    order.append(name)
                self._pk_fields.setdefault(name, row.get("primary_key", "id"))
        return [merged[name] for name in order]

    def checkpoint(self) -> None:
        self._scatter({"op": "checkpoint"})

    def recovery_info(self, shard: int) -> Optional[dict]:
        return self._request(shard, {"op": "recovery_info"}).done.get("recovery")

    def ping(self) -> None:
        self._scatter({"op": "ping"})

    # -- topology ----------------------------------------------------------------------
    def reconnect_shard(
        self, shard: int, address: Optional[Tuple[str, int]] = None
    ) -> None:
        """Drop the shard's pooled connections (e.g. after a restart).

        Pass ``address`` when the restarted shard came up on a new port.
        """
        if address is not None:
            self.addresses[shard] = (address[0], int(address[1]))
        old = self._pools[shard]
        host, port = self.addresses[shard]
        self._pools[shard] = _ClientPool(
            host, port, self._pool_capacity, self._timeout
        )
        old.close()

    def shutdown_shards(self) -> None:
        """Ask every shard server to shut down gracefully over the wire."""
        for shard in range(self.num_shards):
            try:
                self._request(shard, {"op": "shutdown"})
            except RemoteError:
                pass  # already down, or closed the socket mid-goodbye

    def close(self) -> None:
        self._gather.shutdown(wait=True)
        for pool in self._pools:
            pool.close()

    def __enter__(self) -> "ShardedDatastore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class CoordinatorSessionHandler:
    """Wire-server request handler backed by a :class:`ShardedDatastore`.

    Speaks the same ops as :class:`~repro.net.server.EngineSessionHandler`,
    so ``repro.shell --connect`` works identically against a coordinator.
    Multi-statement transactions are single-shard by design — BEGIN over the
    coordinator is rejected with a pointer to connect to the owning shard.
    """

    def __init__(self, sharded: ShardedDatastore) -> None:
        self.sharded = sharded
        #: The in-flight request's query identifier (see EngineSessionHandler).
        self.current_query_id: Optional[str] = None

    def handle(self, request: dict) -> Tuple[Optional[list], dict]:
        op = request.get("op", "statement")
        self.current_query_id = request.get("query_id") or new_query_id()
        handler = getattr(self, f"_op_{op}", None)
        if handler is None:
            raise WireError(f"unknown request op {op!r}")
        rows, done = handler(request)
        done.setdefault("query_id", self.current_query_id)
        return rows, done

    def close(self) -> Optional[str]:
        return None  # no per-session transaction state on the coordinator

    # -- ops ---------------------------------------------------------------------------
    def _op_statement(self, request: dict) -> Tuple[Optional[list], dict]:
        from ..model.errors import SqlppError
        from ..sqlpp import (
            BeginStatement,
            CommitStatement,
            DeleteStatement,
            InsertStatement,
            RollbackStatement,
            constant_value,
            parse_any,
        )

        if request.get("mode", "full") == "partial":
            raise WireError(
                "partial mode is shard-side only; the coordinator runs the merge"
            )
        text = request["text"]
        executor = request.get("executor", "codegen")
        statement = parse_any(text)
        before = self.sharded.io_snapshot()
        rows = status = sequence = explain_text = scatter = None
        if isinstance(statement, (BeginStatement, CommitStatement, RollbackStatement)):
            raise SqlppError(
                "transactions are not supported through the shard coordinator "
                "(writes auto-commit per shard; connect to the owning shard "
                f"for multi-statement transactions) at {statement.where}",
                statement.line,
                statement.column,
            )
        if isinstance(statement, InsertStatement):
            value = constant_value(statement.documents)
            documents = value if isinstance(value, list) else [value]
            if not documents or not all(
                isinstance(document, dict) for document in documents
            ):
                raise SqlppError(
                    "INSERT expects an object literal or a non-empty array of "
                    f"objects at {statement.documents.where}",
                    statement.documents.line,
                    statement.documents.column,
                )
            if len(documents) == 1:
                sequence = self.sharded.insert(statement.dataset, documents[0])
                status = "INSERT 1"
            else:
                inserted = self.sharded.insert_many(statement.dataset, documents)
                status = f"INSERT {inserted}"
        elif isinstance(statement, DeleteStatement):
            pk = self.sharded._primary_key(statement.dataset)
            if statement.key_field != pk:
                raise SqlppError(
                    f"DELETE key field `{statement.key_field}` is not the "
                    f"primary key `{pk}` of dataset "
                    f"{statement.dataset!r} at {statement.where}",
                    statement.line,
                    statement.column,
                )
            sequence = self.sharded.delete(
                statement.dataset, constant_value(statement.key)
            )
            status = "DELETE 1"
        trace_dict = None
        if not isinstance(statement, (InsertStatement, DeleteStatement)):
            rows = self.sharded.query(
                text,
                executor=executor,
                pushdown=request.get("pushdown", True),
                batch_size=request.get("batch_size"),
                query_id=self.current_query_id,
            )
            if request.get("explain"):
                explain_text = self.sharded.explain(text, executor=executor)
            stats = self.sharded.last_query_stats
            if stats is not None:
                scatter = {
                    "kind": stats.kind,
                    "shards": stats.shards,
                    "rows_transferred": stats.rows_transferred,
                }
            if request.get("trace") and self.sharded.last_trace is not None:
                trace_dict = self.sharded.last_trace.to_dict()
        delta = self.sharded.io_stats.delta_since(before)
        done = {"type": "done", "io": delta.as_dict(), "shards": self.sharded.num_shards}
        if trace_dict is not None:
            done["trace"] = trace_dict
        if rows is not None:
            done["result"] = "rows"
            done["rows_returned"] = len(rows)
        else:
            done["result"] = "status"
            done["status"] = status
        if sequence is not None:
            done["sequence"] = sequence
        if explain_text is not None:
            done["explain"] = explain_text
        if scatter is not None:
            done["scatter"] = scatter
        return rows, done

    def _op_explain(self, request: dict) -> Tuple[Optional[list], dict]:
        text = self.sharded.explain(
            request["text"],
            executor=request.get("executor", "codegen"),
            analyze=request.get("analyze", False),
        )
        return None, {"type": "done", "text": text}

    def _op_create_dataset(self, request: dict) -> Tuple[Optional[list], dict]:
        self.sharded.create_dataset(
            request["name"],
            layout=request.get("layout", "amax"),
            primary_key_field=request.get("primary_key_field"),
        )
        return None, {"type": "done"}

    def _op_insert(self, request: dict) -> Tuple[Optional[list], dict]:
        documents = request["documents"]
        before = self.sharded.io_snapshot()
        if len(documents) == 1:
            sequence = self.sharded.insert(request["dataset"], documents[0])
            count = 1
        else:
            sequence = None
            count = self.sharded.insert_many(request["dataset"], documents)
        delta = self.sharded.io_stats.delta_since(before)
        return None, {
            "type": "done",
            "count": count,
            "sequence": sequence,
            "io": delta.as_dict(),
        }

    def _op_delete(self, request: dict) -> Tuple[Optional[list], dict]:
        sequence = self.sharded.delete(request["dataset"], request["key"])
        return None, {"type": "done", "sequence": sequence}

    def _op_lookup(self, request: dict) -> Tuple[Optional[list], dict]:
        before = self.sharded.io_snapshot()
        document = self.sharded.point_lookup(
            request["dataset"], request["key"], request.get("fields")
        )
        delta = self.sharded.io_stats.delta_since(before)
        return None, {
            "type": "done",
            "found": document is not None,
            "document": document,
            "io": delta.as_dict(),
        }

    def _op_count(self, request: dict) -> Tuple[Optional[list], dict]:
        return None, {"type": "done", "count": self.sharded.count(request["dataset"])}

    def _op_list_datasets(self, request: dict) -> Tuple[Optional[list], dict]:
        rows = self.sharded.list_datasets()
        return rows, {"type": "done", "result": "rows", "rows_returned": len(rows)}

    def _op_checkpoint(self, request: dict) -> Tuple[Optional[list], dict]:
        self.sharded.checkpoint()
        return None, {"type": "done"}

    def _op_recovery_info(self, request: dict) -> Tuple[Optional[list], dict]:
        shard = request.get("shard", 0)
        return None, {
            "type": "done",
            "recovery": self.sharded.recovery_info(shard),
        }

    def _op_metrics(self, request: dict) -> Tuple[Optional[list], dict]:
        """Coordinator-side metrics (per-shard routing/transfer + wire)."""
        return None, {"type": "done", "text": self.sharded.metrics_text()}


class ShardCluster:
    """Spawn and manage N engine-server shard processes.

    Each shard gets its own directory under ``data_root`` (``shard-0``,
    ``shard-1``, ...) holding its manifests and WAL; a killed shard restarts
    from that directory through the ordinary single-store recovery path.
    Startup uses a ready-file handshake: the server binds port 0 and writes
    ``{"host", "port", "pid"}`` once it is accepting connections.
    """

    def __init__(
        self,
        num_shards: int,
        data_root,
        host: str = "127.0.0.1",
        server_args: Sequence[str] = (),
        startup_timeout: float = 60.0,
    ) -> None:
        if num_shards < 1:
            raise ValueError("at least one shard is required")
        self.num_shards = num_shards
        self.data_root = Path(data_root)
        self.host = host
        self.server_args = list(server_args)
        self.startup_timeout = startup_timeout
        self.processes: List[Optional[subprocess.Popen]] = [None] * num_shards
        self.addresses: List[Optional[Tuple[str, int]]] = [None] * num_shards
        self._env = dict(os.environ)
        # Shard subprocesses must import this very checkout of the package.
        import repro as _repro

        source_root = str(Path(_repro.__file__).resolve().parents[1])
        existing = self._env.get("PYTHONPATH")
        self._env["PYTHONPATH"] = (
            source_root if not existing else source_root + os.pathsep + existing
        )
        self.data_root.mkdir(parents=True, exist_ok=True)
        try:
            for shard in range(num_shards):
                self._spawn(shard)
        except BaseException:
            self.terminate()
            raise

    def shard_dir(self, shard: int) -> Path:
        return self.data_root / f"shard-{shard}"

    def _ready_file(self, shard: int) -> Path:
        return self.data_root / f"shard-{shard}.ready.json"

    def _spawn(self, shard: int) -> None:
        ready = self._ready_file(shard)
        if ready.exists():
            ready.unlink()
        argv = [
            sys.executable,
            "-m",
            "repro.server",
            "--host",
            self.host,
            "--port",
            "0",
            "--store",
            str(self.shard_dir(shard)),
            "--ready-file",
            str(ready),
            *self.server_args,
        ]
        process = subprocess.Popen(argv, env=self._env)
        deadline = time.monotonic() + self.startup_timeout
        while True:
            if process.poll() is not None:
                raise RuntimeError(
                    f"shard {shard} exited with status {process.returncode} "
                    "during startup"
                )
            if ready.exists():
                try:
                    payload = json.loads(ready.read_text())
                except (ValueError, OSError):
                    payload = None  # written but not yet complete
                if payload:
                    self.processes[shard] = process
                    self.addresses[shard] = (payload["host"], payload["port"])
                    return
            if time.monotonic() > deadline:
                process.kill()
                process.wait()
                raise RuntimeError(
                    f"shard {shard} did not become ready within "
                    f"{self.startup_timeout}s"
                )
            time.sleep(0.02)

    def live_addresses(self) -> List[Tuple[str, int]]:
        return [address for address in self.addresses if address is not None]

    def connect(self, **kwargs) -> ShardedDatastore:
        """A coordinator over this cluster's current shard addresses."""
        return ShardedDatastore(self.live_addresses(), **kwargs)

    def kill_shard(self, shard: int) -> None:
        """SIGKILL a shard (crash injection — no drain, no checkpoint)."""
        process = self.processes[shard]
        if process is None:
            return
        process.kill()
        process.wait()
        self.processes[shard] = None
        self.addresses[shard] = None

    def terminate_shard(self, shard: int) -> None:
        """SIGTERM a shard and wait for its graceful drain-and-checkpoint."""
        process = self.processes[shard]
        if process is None:
            return
        process.terminate()
        try:
            process.wait(timeout=30)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()
        self.processes[shard] = None
        self.addresses[shard] = None

    def restart_shard(self, shard: int) -> Tuple[str, int]:
        """Start a killed shard again from its directory (WAL replay etc.)."""
        if self.processes[shard] is not None:
            self.terminate_shard(shard)
        self._spawn(shard)
        return self.addresses[shard]

    def terminate(self, timeout: float = 30.0) -> None:
        """Gracefully stop every shard (SIGTERM, then SIGKILL stragglers)."""
        for process in self.processes:
            if process is not None and process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for shard, process in enumerate(self.processes):
            if process is None:
                continue
            remaining = max(0.1, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
            self.processes[shard] = None
            self.addresses[shard] = None

    def __enter__(self) -> "ShardCluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()
