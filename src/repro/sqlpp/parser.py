"""Recursive-descent parser for the supported SQL++ subset.

Grammar (see ``docs/QUERY_LANGUAGE.md`` for the prose version)::

    statement   := select_body [ ";" ]
    select_body := SELECT ( VALUE expr | item ("," item)* )
                   [ FROM ident AS ident join* clause* ]
                   [ GROUP BY group_key ("," group_key)* ]
                   [ ORDER BY order_item ("," order_item)* ]
                   [ LIMIT INT ]
    item        := expr [ OVER window ] [ AS ident ]
    window      := "(" [ PARTITION BY expr ("," expr)* ]
                       [ ORDER BY expr [ASC|DESC] ("," expr [ASC|DESC])* ] ")"
    join        := "," ident AS ident
                 | JOIN ident AS ident ON expr
    clause      := UNNEST expr AS ident
                 | LET ident "=" expr ("," ident "=" expr)*
                 | WHERE expr
    group_key   := expr [ AS ident ]
    order_item  := ident [ ASC | DESC ]

    expr        := and_expr ( OR and_expr )*
    and_expr    := cmp_expr ( AND cmp_expr )*
    cmp_expr    := SOME ident IN path_expr SATISFIES expr
                 | EXISTS path_expr
                 | path_expr IN path_expr
                 | path_expr [ cmp_op path_expr ]
    path_expr   := primary ( "." name | "[" "*" "]" | "[" STRING "]" )*
    primary     := literal | array | object | ident | call
                 | "(" select_body ")" | "(" expr ")"

Clauses may repeat and interleave (``WHERE`` before a later ``UNNEST`` is
legal here, unlike AsterixDB) — the written order becomes the pipeline order,
which keeps text plans structurally identical to hand-built ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..model.errors import SqlppError
from . import ast
from .lexer import Token, tokenize

_COMPARE_OPS = {"=", "==", "!=", "<>", "<", "<=", ">", ">="}

#: Keywords additionally accepted as *output-column names* (AS aliases and
#: ORDER BY items).  Only words that can never begin the next clause in those
#: positions are safe; ``t.value`` already derives the column name ``value``,
#: so the same spelling must be addressable.
_NAME_KEYWORDS = frozenset({"VALUE", "SOME", "IN", "SATISFIES", "EXISTS", "MISSING"})


def parse(text: str) -> ast.SelectStatement:
    """Parse one SQL++ SELECT statement into its AST.

    Raises:
        SqlppError: On any lexical or syntactic offence, carrying the 1-based
            line/column of the unexpected token.
    """
    return _Parser(tokenize(text)).parse_statement()


#: Leading identifiers (not keywords — see the note in repro.sqlpp.ast) that
#: start a transaction or DML statement in :func:`parse_any`.
_STATEMENT_WORDS = frozenset({"BEGIN", "COMMIT", "ROLLBACK", "INSERT", "DELETE"})


def parse_any(text: str) -> "ast.Statement":
    """Parse one statement of any supported kind (the shell's entry point).

    SELECT statements go through :func:`parse` unchanged; BEGIN / COMMIT /
    ROLLBACK / INSERT / DELETE are recognized from their leading identifier.

    Raises:
        SqlppError: On any lexical or syntactic offence, with position.
    """
    parser = _Parser(tokenize(text))
    token = parser.current
    if token.kind == "IDENT" and token.value.upper() in _STATEMENT_WORDS:
        return parser.parse_command_statement()
    return parser.parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token]) -> None:
        self.tokens = tokens
        self.index = 0

    # -- token plumbing -----------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def error(self, message: str, token: Optional[Token] = None) -> SqlppError:
        token = token or self.current
        return SqlppError(
            f"{message} at line {token.line} col {token.column}",
            token.line,
            token.column,
        )

    def at_keyword(self, *words: str) -> bool:
        return self.current.kind == "KEYWORD" and self.current.value in words

    def accept_keyword(self, *words: str) -> Optional[Token]:
        if self.at_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise self.error(f"expected {word}, found {self.current.describe()}")
        return token

    def at_punct(self, char: str) -> bool:
        return self.current.kind == "PUNCT" and self.current.value == char

    def accept_punct(self, char: str) -> Optional[Token]:
        if self.at_punct(char):
            return self.advance()
        return None

    def expect_punct(self, char: str) -> Token:
        token = self.accept_punct(char)
        if token is None:
            raise self.error(f"expected {char!r}, found {self.current.describe()}")
        return token

    def expect_ident(self, what: str) -> Token:
        if self.current.kind != "IDENT":
            raise self.error(f"expected {what}, found {self.current.describe()}")
        return self.advance()

    def at_word(self, word: str) -> bool:
        """An identifier compared case-insensitively (statement words like
        INTO are not lexer keywords; see the note in repro.sqlpp.ast)."""
        return self.current.kind == "IDENT" and self.current.value.upper() == word

    def accept_word(self, word: str) -> Optional[Token]:
        if self.at_word(word):
            return self.advance()
        return None

    def expect_word(self, word: str) -> Token:
        token = self.accept_word(word)
        if token is None:
            raise self.error(f"expected {word}, found {self.current.describe()}")
        return token

    def expect_name(self, what: str) -> Tuple[str, Token]:
        """An output-column name: an identifier, or a safe keyword (lowercased)."""
        token = self.current
        if token.kind == "IDENT":
            self.advance()
            return token.value, token
        if token.kind == "KEYWORD" and token.value in _NAME_KEYWORDS:
            self.advance()
            return str(token.value).lower(), token
        raise self.error(f"expected {what}, found {token.describe()}")

    # -- statement ---------------------------------------------------------------------
    def parse_statement(self) -> ast.SelectStatement:
        statement = self.parse_select_body()
        self.accept_punct(";")
        if self.current.kind != "EOF":
            raise self.error(f"unexpected {self.current.describe()} after statement end")
        return statement

    def parse_select_body(self) -> ast.SelectStatement:
        """One SELECT without the trailing ``;``/EOF check (subqueries reuse it)."""
        start = self.expect_keyword("SELECT")
        select_value = self.accept_keyword("VALUE") is not None
        items = [self.parse_select_item()]
        if select_value and self.at_punct(","):
            raise self.error("SELECT VALUE takes exactly one expression")
        while self.accept_punct(","):
            items.append(self.parse_select_item())
        dataset = alias = None
        joins: List[ast.JoinClause] = []
        pipeline: List[ast.PipelineClause] = []
        if self.accept_keyword("FROM"):
            dataset = self.expect_ident("a dataset name").value
            self.expect_keyword("AS")
            alias = self.expect_ident("an alias after AS").value
            while True:
                if self.accept_punct(","):
                    token = self.expect_ident("a dataset name after ','")
                    self.expect_keyword("AS")
                    join_alias = self.expect_ident("an alias after AS").value
                    joins.append(
                        ast.JoinClause(
                            token.line, token.column, token.value, join_alias, None
                        )
                    )
                elif self.at_word("JOIN"):
                    token = self.advance()
                    join_dataset = self.expect_ident("a dataset name after JOIN").value
                    self.expect_keyword("AS")
                    join_alias = self.expect_ident("an alias after AS").value
                    self.expect_word("ON")
                    condition = self.parse_expression()
                    joins.append(
                        ast.JoinClause(
                            token.line,
                            token.column,
                            join_dataset,
                            join_alias,
                            condition,
                        )
                    )
                else:
                    break
            pipeline = self.parse_pipeline_clauses()
        group_by = self.parse_group_by()
        order_by = self.parse_order_by()
        limit = self.parse_limit()
        return ast.SelectStatement(
            start.line,
            start.column,
            select_value=select_value,
            select_items=tuple(items),
            dataset=dataset,
            alias=alias,
            joins=tuple(joins),
            pipeline=tuple(pipeline),
            group_by=group_by,
            order_by=order_by,
            limit=limit,
        )

    # -- transaction and DML statements -------------------------------------------------
    def parse_command_statement(self) -> "ast.Statement":
        """BEGIN/COMMIT/ROLLBACK/INSERT/DELETE (dispatched by parse_any)."""
        start = self.advance()
        word = start.value.upper()
        if word == "BEGIN":
            self.accept_word("TRANSACTION")
            statement: ast.Statement = ast.BeginStatement(start.line, start.column)
        elif word == "COMMIT":
            statement = ast.CommitStatement(start.line, start.column)
        elif word == "ROLLBACK":
            statement = ast.RollbackStatement(start.line, start.column)
        elif word == "INSERT":
            statement = self.parse_insert(start)
        else:
            statement = self.parse_delete(start)
        self.accept_punct(";")
        if self.current.kind != "EOF":
            raise self.error(f"unexpected {self.current.describe()} after statement end")
        return statement

    def parse_insert(self, start: Token) -> ast.InsertStatement:
        self.expect_word("INTO")
        dataset = self.expect_ident("a dataset name after INSERT INTO").value
        if not (self.at_punct("{") or self.at_punct("[")):
            raise self.error(
                "expected an object literal (or an array of objects) to INSERT,"
                f" found {self.current.describe()}"
            )
        documents = self.parse_expression()
        return ast.InsertStatement(start.line, start.column, dataset, documents)

    def parse_delete(self, start: Token) -> ast.DeleteStatement:
        self.expect_keyword("FROM")
        dataset = self.expect_ident("a dataset name after DELETE FROM").value
        self.expect_keyword("WHERE")
        key_field = self.expect_ident("the primary-key field in DELETE ... WHERE").value
        operator = self.current
        if not (operator.kind == "OP" and operator.value in ("=", "==")):
            raise self.error(
                "expected '=' comparing the primary key in DELETE ... WHERE,"
                f" found {operator.describe()}"
            )
        self.advance()
        key = self.parse_expression()
        return ast.DeleteStatement(start.line, start.column, dataset, key_field, key)

    def parse_select_item(self) -> ast.SelectItem:
        token = self.current
        expression = self.parse_expression()
        window = None
        if self.accept_word("OVER"):
            window = self.parse_window_spec()
        alias = None
        if self.accept_keyword("AS"):
            alias, _ = self.expect_name("an alias after AS")
        return ast.SelectItem(token.line, token.column, expression, alias, window)

    def parse_window_spec(self) -> ast.WindowSpec:
        """The parenthesized body after OVER: PARTITION BY / ORDER BY lists."""
        start = self.expect_punct("(")
        partition: List[ast.ExprNode] = []
        order: List[ast.WindowOrderItem] = []
        if self.at_word("PARTITION"):
            self.advance()
            self.expect_keyword("BY")
            partition.append(self.parse_expression())
            while self.accept_punct(","):
                partition.append(self.parse_expression())
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            while True:
                expression = self.parse_expression()
                descending = False
                if self.accept_keyword("DESC"):
                    descending = True
                else:
                    self.accept_keyword("ASC")
                order.append(
                    ast.WindowOrderItem(
                        expression.line, expression.column, expression, descending
                    )
                )
                if not self.accept_punct(","):
                    break
        self.expect_punct(")")
        return ast.WindowSpec(
            start.line, start.column, tuple(partition), tuple(order)
        )

    def parse_pipeline_clauses(self) -> List[ast.PipelineClause]:
        clauses: List[ast.PipelineClause] = []
        while True:
            token = self.current
            if self.accept_keyword("UNNEST"):
                expression = self.parse_expression()
                self.expect_keyword("AS")
                alias_token = self.expect_ident("an alias after AS")
                # The clause carries the alias position: binder errors about
                # the alias (duplicates) should point at the alias itself.
                clauses.append(
                    ast.UnnestClause(
                        alias_token.line, alias_token.column, expression, alias_token.value
                    )
                )
            elif self.accept_keyword("LET"):
                while True:
                    name_token = self.expect_ident("a variable name after LET")
                    equals = self.current
                    if not (equals.kind == "OP" and equals.value in ("=", "==")):
                        raise self.error("expected '=' in LET binding")
                    self.advance()
                    expression = self.parse_expression()
                    clauses.append(
                        ast.LetClause(
                            name_token.line,
                            name_token.column,
                            name_token.value,
                            expression,
                        )
                    )
                    if not self.accept_punct(","):
                        break
            elif self.accept_keyword("WHERE"):
                predicate = self.parse_expression()
                clauses.append(ast.WhereClause(token.line, token.column, predicate))
            else:
                return clauses

    def parse_group_by(self) -> Tuple[ast.GroupKey, ...]:
        if not self.accept_keyword("GROUP"):
            return ()
        self.expect_keyword("BY")
        keys = []
        while True:
            token = self.current
            expression = self.parse_expression()
            alias = None
            if self.accept_keyword("AS"):
                alias, _ = self.expect_name("an alias after AS")
            keys.append(ast.GroupKey(token.line, token.column, expression, alias))
            if not self.accept_punct(","):
                return tuple(keys)

    def parse_order_by(self) -> Tuple[ast.OrderItem, ...]:
        if not self.accept_keyword("ORDER"):
            return ()
        self.expect_keyword("BY")
        items = []
        while True:
            name, token = self.expect_name("an output column name in ORDER BY")
            descending = False
            if self.accept_keyword("DESC"):
                descending = True
            else:
                self.accept_keyword("ASC")
            items.append(ast.OrderItem(token.line, token.column, name, descending))
            if not self.accept_punct(","):
                return tuple(items)

    def parse_limit(self) -> Optional[int]:
        if not self.accept_keyword("LIMIT"):
            return None
        token = self.current
        if token.kind != "INT" or token.value < 0:
            raise self.error("expected a non-negative integer after LIMIT")
        self.advance()
        return token.value

    # -- expressions -------------------------------------------------------------------
    def parse_expression(self) -> ast.ExprNode:
        return self.parse_or()

    def parse_or(self) -> ast.ExprNode:
        first = self.parse_and()
        if not self.at_keyword("OR"):
            return first
        operands = [first]
        while self.accept_keyword("OR"):
            operands.append(self.parse_and())
        return ast.OrExpr(first.line, first.column, tuple(operands))

    def parse_and(self) -> ast.ExprNode:
        first = self.parse_comparison()
        if not self.at_keyword("AND"):
            return first
        operands = [first]
        while self.accept_keyword("AND"):
            operands.append(self.parse_comparison())
        return ast.AndExpr(first.line, first.column, tuple(operands))

    def parse_comparison(self) -> ast.ExprNode:
        token = self.current
        if self.accept_keyword("SOME"):
            item = self.expect_ident("an item variable after SOME").value
            self.expect_keyword("IN")
            collection = self.parse_path_expression()
            self.expect_keyword("SATISFIES")
            predicate = self.parse_expression()
            return ast.SomeExpr(token.line, token.column, item, collection, predicate)
        if self.accept_keyword("EXISTS"):
            collection = self.parse_path_expression()
            return ast.ExistsExpr(token.line, token.column, collection)
        if self.at_keyword("NOT"):
            raise self.error("NOT is not supported; rewrite with the inverse comparison")
        left = self.parse_path_expression()
        if self.accept_keyword("IN"):
            collection = self.parse_path_expression()
            return ast.InExpr(left.line, left.column, left, collection)
        if self.current.kind == "OP" and self.current.value in _COMPARE_OPS:
            op = self.advance().value
            right = self.parse_path_expression()
            return ast.CompareExpr(left.line, left.column, op, left, right)
        return left

    def parse_path_expression(self) -> ast.ExprNode:
        expression = self.parse_primary()
        steps: List[str] = []
        while True:
            if self.accept_punct("."):
                token = self.current
                # Keywords are legal as field names after a dot (``t.value``).
                if token.kind in ("IDENT", "KEYWORD"):
                    self.advance()
                    steps.append(
                        str(token.value).lower()
                        if token.kind == "KEYWORD"
                        else token.value
                    )
                else:
                    raise self.error("expected a field name after '.'")
            elif self.at_punct("["):
                if self._bracket_starts_step(expression, steps):
                    self.advance()
                    if self.accept_punct("*"):
                        self.expect_punct("]")
                        steps.append("[*]")
                    elif self.current.kind == "STRING":
                        steps.append(self.advance().value)
                        self.expect_punct("]")
                    elif self.current.kind == "INT":
                        raise self.error(
                            "numeric array indexing is not supported (use [*])"
                        )
                    else:
                        raise self.error("expected '*' or a string inside '[...]'")
                else:
                    break
            else:
                break
        if not steps:
            return expression
        return ast.PathExpr(
            expression.line, expression.column, expression, tuple(steps)
        )

    def _bracket_starts_step(self, expression, steps) -> bool:
        """A '[' continues a path only after a navigable expression.

        After a fresh literal (``SELECT 1 [ ...``) a bracket is a syntax
        error downstream, not a path step; after idents, paths, calls, and
        parenthesized expressions it is navigation.
        """
        if steps:
            return True
        return isinstance(
            expression, (ast.IdentRef, ast.PathExpr, ast.CallExpr, ast.ObjectExpr)
        )

    def parse_primary(self) -> ast.ExprNode:
        token = self.current
        if token.kind in ("INT", "FLOAT", "STRING"):
            self.advance()
            return ast.LiteralExpr(token.line, token.column, token.value)
        if self.accept_keyword("TRUE"):
            return ast.LiteralExpr(token.line, token.column, True)
        if self.accept_keyword("FALSE"):
            return ast.LiteralExpr(token.line, token.column, False)
        if self.accept_keyword("NULL") or self.accept_keyword("MISSING"):
            return ast.LiteralExpr(token.line, token.column, None)
        if self.accept_punct("("):
            if self.at_keyword("SELECT"):
                statement = self.parse_select_body()
                self.expect_punct(")")
                return ast.SubqueryExpr(token.line, token.column, statement)
            expression = self.parse_expression()
            self.expect_punct(")")
            return expression
        if self.accept_punct("["):
            items = []
            if not self.at_punct("]"):
                items.append(self.parse_expression())
                while self.accept_punct(","):
                    items.append(self.parse_expression())
            self.expect_punct("]")
            return ast.ArrayExpr(token.line, token.column, tuple(items))
        if self.accept_punct("{"):
            pairs = []
            if not self.at_punct("}"):
                pairs.append(self.parse_object_pair())
                while self.accept_punct(","):
                    pairs.append(self.parse_object_pair())
            self.expect_punct("}")
            return ast.ObjectExpr(token.line, token.column, tuple(pairs))
        if token.kind == "IDENT":
            self.advance()
            if self.accept_punct("("):
                return self.parse_call(token)
            return ast.IdentRef(token.line, token.column, token.value)
        raise self.error(f"expected an expression, found {token.describe()}")

    def parse_object_pair(self) -> Tuple[str, ast.ExprNode]:
        token = self.current
        if token.kind not in ("STRING", "IDENT"):
            raise self.error("expected an object key (string or identifier)")
        self.advance()
        self.expect_punct(":")
        return (str(token.value), self.parse_expression())

    def parse_call(self, name_token: Token) -> ast.CallExpr:
        if self.accept_punct("*"):
            self.expect_punct(")")
            return ast.CallExpr(
                name_token.line, name_token.column, name_token.value, (), star=True
            )
        args = []
        if not self.at_punct(")"):
            args.append(self.parse_expression())
            while self.accept_punct(","):
                args.append(self.parse_expression())
        self.expect_punct(")")
        return ast.CallExpr(
            name_token.line, name_token.column, name_token.value, tuple(args)
        )
