"""The typed SQL++ AST produced by the parser.

Every node carries the 1-based ``line``/``column`` of the token that started
it, so the binder can point error messages at the exact source location.  The
AST is deliberately close to the textual grammar; lowering onto the engine's
:class:`~repro.query.plan.QueryPlan` nodes happens in
:mod:`repro.sqlpp.lower` after the binder resolved every name.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union


@dataclass(frozen=True)
class Node:
    """Base of every AST node: the source position it started at."""

    line: int
    column: int

    @property
    def where(self) -> str:
        return f"line {self.line} col {self.column}"


# -- expressions -------------------------------------------------------------------------


@dataclass(frozen=True)
class LiteralExpr(Node):
    """A constant: number, string, TRUE/FALSE, NULL."""

    value: object


@dataclass(frozen=True)
class IdentRef(Node):
    """A bare identifier — an alias reference (or an output-column name)."""

    name: str


@dataclass(frozen=True)
class PathExpr(Node):
    """Navigation on a base expression: dotted fields, ``[*]``, ``["field"]``."""

    base: "ExprNode"
    steps: Tuple[str, ...]  # field names and the array step "[*]"


@dataclass(frozen=True)
class ArrayExpr(Node):
    """An array literal ``[e1, e2, ...]`` (elements must be constant)."""

    items: Tuple["ExprNode", ...]


@dataclass(frozen=True)
class ObjectExpr(Node):
    """An object literal ``{"k": v, ...}`` (values must be constant)."""

    pairs: Tuple[Tuple[str, "ExprNode"], ...]


@dataclass(frozen=True)
class CallExpr(Node):
    """A function call; ``star`` marks ``COUNT(*)``-style calls."""

    name: str
    args: Tuple["ExprNode", ...]
    star: bool = False


@dataclass(frozen=True)
class CompareExpr(Node):
    """A binary comparison (``=``/``==``, ``!=``/``<>``, ``<``, ``<=``, ``>``, ``>=``)."""

    op: str
    lhs: "ExprNode"
    rhs: "ExprNode"


@dataclass(frozen=True)
class AndExpr(Node):
    operands: Tuple["ExprNode", ...]


@dataclass(frozen=True)
class OrExpr(Node):
    operands: Tuple["ExprNode", ...]


@dataclass(frozen=True)
class SomeExpr(Node):
    """``SOME item IN collection SATISFIES predicate``."""

    item: str
    collection: "ExprNode"
    predicate: "ExprNode"


@dataclass(frozen=True)
class ExistsExpr(Node):
    """``EXISTS collection`` — true when the collection has at least one item."""

    collection: "ExprNode"


@dataclass(frozen=True)
class InExpr(Node):
    """``needle IN collection`` — membership with SQL++ equality semantics."""

    needle: "ExprNode"
    collection: "ExprNode"


@dataclass(frozen=True)
class SubqueryExpr(Node):
    """A parenthesized SELECT used as a value: ``(SELECT ...)``."""

    statement: "SelectStatement"


ExprNode = Union[
    LiteralExpr,
    IdentRef,
    PathExpr,
    ArrayExpr,
    ObjectExpr,
    CallExpr,
    CompareExpr,
    AndExpr,
    OrExpr,
    SomeExpr,
    ExistsExpr,
    InExpr,
    SubqueryExpr,
]


# -- clauses -----------------------------------------------------------------------------


@dataclass(frozen=True)
class WindowOrderItem(Node):
    """One window ORDER BY key: a full expression plus direction."""

    expression: ExprNode
    descending: bool


@dataclass(frozen=True)
class WindowSpec(Node):
    """The ``OVER (PARTITION BY ... ORDER BY ...)`` clause of a SELECT item."""

    partition_by: Tuple[ExprNode, ...] = ()
    order_by: Tuple[WindowOrderItem, ...] = ()


@dataclass(frozen=True)
class SelectItem(Node):
    """One projection: expression plus optional ``AS`` alias.

    ``window`` is set when the item carries an ``OVER (...)`` clause — the
    expression is then a window-function call evaluated per partition.
    """

    expression: ExprNode
    alias: Optional[str]
    window: Optional[WindowSpec] = None


@dataclass(frozen=True)
class UnnestClause(Node):
    """``UNNEST expr AS alias`` — one output row per array element."""

    expression: ExprNode
    alias: str


@dataclass(frozen=True)
class LetClause(Node):
    """``LET name = expr`` — bind a derived value per row."""

    name: str
    expression: ExprNode


@dataclass(frozen=True)
class WhereClause(Node):
    predicate: ExprNode


PipelineClause = Union[UnnestClause, LetClause, WhereClause]


@dataclass(frozen=True)
class GroupKey(Node):
    """One GROUP BY key with its (possibly defaulted) output name."""

    expression: ExprNode
    alias: Optional[str]


@dataclass(frozen=True)
class OrderItem(Node):
    """One ORDER BY key: an output-column name plus direction."""

    name: str
    descending: bool


@dataclass(frozen=True)
class JoinClause(Node):
    """One additional FROM source: comma join or explicit ``JOIN ... ON``.

    ``condition`` is the ON predicate; None for comma joins, whose equality
    conjunct the lowering extracts from the WHERE clause.
    """

    dataset: str
    alias: str
    condition: Optional[ExprNode] = None


@dataclass(frozen=True)
class SelectStatement(Node):
    """A full SELECT statement of the supported subset.

    ``dataset``/``alias`` are None for FROM-less queries (``SELECT 1;``).
    ``joins`` holds the additional FROM sources in written order.
    ``pipeline`` preserves the written order of UNNEST/LET/WHERE clauses.
    """

    select_value: bool
    select_items: Tuple[SelectItem, ...]
    dataset: Optional[str] = None
    alias: Optional[str] = None
    joins: Tuple[JoinClause, ...] = ()
    pipeline: Tuple[PipelineClause, ...] = ()
    group_by: Tuple[GroupKey, ...] = ()
    order_by: Tuple[OrderItem, ...] = ()
    limit: Optional[int] = None


# -- transaction and DML statements ------------------------------------------------------
#
# BEGIN/COMMIT/ROLLBACK/INSERT/DELETE are *not* lexer keywords: promoting
# them would steal those spellings from field paths (``t.delete`` is a legal
# path today).  The parser recognizes them as the leading identifier of a
# statement instead, so expressions are untouched.


@dataclass(frozen=True)
class BeginStatement(Node):
    """``BEGIN [TRANSACTION];`` — open a multi-statement transaction."""


@dataclass(frozen=True)
class CommitStatement(Node):
    """``COMMIT;`` — validate and atomically apply the open transaction."""


@dataclass(frozen=True)
class RollbackStatement(Node):
    """``ROLLBACK;`` — abort the open transaction, discarding its writes."""


@dataclass(frozen=True)
class InsertStatement(Node):
    """``INSERT INTO dataset <object-or-array-literal>;``.

    ``documents`` is the unevaluated literal (an :class:`ObjectExpr`, or an
    :class:`ArrayExpr` of objects); executors fold it with the binder's
    constant evaluator so non-constant elements fail with exact positions.
    """

    dataset: str
    documents: ExprNode


@dataclass(frozen=True)
class DeleteStatement(Node):
    """``DELETE FROM dataset WHERE <field> = <literal>;`` (primary-key delete)."""

    dataset: str
    key_field: str
    key: ExprNode


Statement = Union[
    SelectStatement,
    BeginStatement,
    CommitStatement,
    RollbackStatement,
    InsertStatement,
    DeleteStatement,
]
