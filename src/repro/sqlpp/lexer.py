"""The SQL++ lexer: text → a stream of position-tagged tokens.

Hand-written (no regex tables) so error positions are exact and the token
rules stay readable.  Keywords are matched case-insensitively and surfaced as
``KEYWORD`` tokens carrying their canonical uppercase spelling; identifiers
keep their original case.  ``--`` starts a comment running to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..model.errors import SqlppError

#: Reserved words of the supported subset (canonical uppercase spellings).
KEYWORDS = frozenset(
    {
        "SELECT", "VALUE", "FROM", "AS", "UNNEST", "LET", "WHERE",
        "AND", "OR", "NOT", "GROUP", "BY", "ORDER", "ASC", "DESC",
        "LIMIT", "SOME", "IN", "SATISFIES", "EXISTS",
        "TRUE", "FALSE", "NULL", "MISSING",
    }
)

#: Multi-character operators first so maximal munch works.
_OPERATORS = ("==", "!=", "<>", "<=", ">=", "=", "<", ">")
_PUNCTUATION = "()[]{},.;:*"

_ESCAPES = {"n": "\n", "t": "\t", "r": "\r", '"': '"', "'": "'", "\\": "\\", "/": "/"}


@dataclass(frozen=True)
class Token:
    """One lexical token with its 1-based source position."""

    kind: str  # KEYWORD | IDENT | INT | FLOAT | STRING | OP | PUNCT | EOF
    value: object
    line: int
    column: int

    def describe(self) -> str:
        if self.kind == "EOF":
            return "end of input"
        if self.kind == "KEYWORD":
            return str(self.value)
        if self.kind == "STRING":
            return f"string {self.value!r}"
        return repr(str(self.value))


class _Scanner:
    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    def error(self, message: str) -> SqlppError:
        return SqlppError(
            f"{message} at line {self.line} col {self.column}", self.line, self.column
        )

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def advance(self) -> str:
        char = self.text[self.pos]
        self.pos += 1
        if char == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return char


def tokenize(text: str) -> List[Token]:
    """Lex ``text`` into tokens (always ending with an EOF token).

    Raises:
        SqlppError: On an unterminated string or an unexpected character,
            with the 1-based line/column of the offence.
    """
    scanner = _Scanner(text)
    tokens: List[Token] = []
    while scanner.pos < len(scanner.text):
        char = scanner.peek()
        if char in " \t\r\n":
            scanner.advance()
            continue
        if char == "-" and scanner.peek(1) == "-":  # comment to end of line
            while scanner.pos < len(scanner.text) and scanner.peek() != "\n":
                scanner.advance()
            continue
        line, column = scanner.line, scanner.column
        if char.isalpha() or char == "_":
            word = _scan_word(scanner)
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, line, column))
            else:
                tokens.append(Token("IDENT", word, line, column))
            continue
        if char.isdigit() or (
            char == "-" and (scanner.peek(1).isdigit() or scanner.peek(1) == ".")
        ):
            tokens.append(_scan_number(scanner, line, column))
            continue
        if char in "'\"":
            tokens.append(_scan_string(scanner, line, column))
            continue
        two = char + scanner.peek(1)
        if two in _OPERATORS:
            scanner.advance()
            scanner.advance()
            tokens.append(Token("OP", two, line, column))
            continue
        if char in _OPERATORS:
            scanner.advance()
            tokens.append(Token("OP", char, line, column))
            continue
        if char in _PUNCTUATION:
            scanner.advance()
            tokens.append(Token("PUNCT", char, line, column))
            continue
        raise scanner.error(f"unexpected character {char!r}")
    tokens.append(Token("EOF", None, scanner.line, scanner.column))
    return tokens


def _scan_word(scanner: _Scanner) -> str:
    out = []
    while scanner.pos < len(scanner.text):
        char = scanner.peek()
        if char.isalnum() or char == "_":
            out.append(scanner.advance())
        else:
            break
    return "".join(out)


def _scan_number(scanner: _Scanner, line: int, column: int) -> Token:
    out = []
    if scanner.peek() == "-":
        out.append(scanner.advance())
    is_float = False
    while scanner.pos < len(scanner.text):
        char = scanner.peek()
        if char.isdigit():
            out.append(scanner.advance())
        elif char == "." and scanner.peek(1).isdigit():
            # A dot not followed by a digit is path navigation, not a fraction.
            is_float = True
            out.append(scanner.advance())
        elif char in "eE" and (
            scanner.peek(1).isdigit()
            or (scanner.peek(1) in "+-" and scanner.peek(2).isdigit())
        ):
            is_float = True
            out.append(scanner.advance())
            if scanner.peek() in "+-":
                out.append(scanner.advance())
        else:
            break
    literal = "".join(out)
    try:
        value: object = float(literal) if is_float else int(literal)
    except ValueError:  # pragma: no cover - the scan rules prevent this
        raise SqlppError(
            f"malformed number {literal!r} at line {line} col {column}", line, column
        ) from None
    return Token("FLOAT" if is_float else "INT", value, line, column)


def _scan_string(scanner: _Scanner, line: int, column: int) -> Token:
    quote = scanner.advance()
    out = []
    while True:
        if scanner.pos >= len(scanner.text):
            raise SqlppError(
                f"unterminated string at line {line} col {column}", line, column
            )
        char = scanner.advance()
        if char == "\\":
            if scanner.pos >= len(scanner.text):
                raise SqlppError(
                    f"unterminated string at line {line} col {column}", line, column
                )
            escape = scanner.advance()
            out.append(_ESCAPES.get(escape, escape))
            continue
        if char == quote:
            if scanner.peek() == quote:  # doubled quote escapes itself
                out.append(scanner.advance())
                continue
            break
        out.append(char)
    return Token("STRING", "".join(out), line, column)
