"""SQL++ query-language frontend: lexer → parser → binder → lowering.

The paper's whole workload is written in SQL++; this package lets every one
of those queries be stated in its original declarative form and still flow
through the engine's existing machinery (pushdown, the cost-based optimizer,
both executors, parallel scans), because lowering targets the same
:class:`~repro.query.plan.Query` builder a user would call by hand.

Entry points:

* :func:`compile_query` — text → :class:`CompiledQuery` (parse + bind + lower);
* :func:`parse` — text → typed AST with source positions (for tooling);
* ``Datastore.query("SELECT ...")`` / ``Datastore.explain(...)`` — the
  store-level surface built on top of this package;
* ``python -m repro.shell`` — the interactive shell.

Example:
    >>> from repro.sqlpp import compile_query
    >>> compiled = compile_query('''
    ...     SELECT t AS t, COUNT(*) AS cnt
    ...     FROM gamers AS g
    ...     UNNEST g.games AS t
    ...     GROUP BY t
    ...     ORDER BY cnt DESC
    ...     LIMIT 10;
    ... ''')
    >>> print(compiled.query.explain())
    SCAN gamers AS $g (fields=['games'])
      PUSHDOWN paths=[games]
    UNNEST $t <- Field(Var('g'), 'games')
    GROUPBY keys=[t=Var('t')] aggregates=[cnt=count(*)]
    ORDERBY cnt DESC
    LIMIT 10
    EXECUTOR codegen (fused column batches of 1024)
"""

from ..model.errors import SqlppError, UnknownFunctionError
from .ast import (
    BeginStatement,
    CommitStatement,
    DeleteStatement,
    InsertStatement,
    RollbackStatement,
    SelectStatement,
    Statement,
)
from .binder import Scope, bind_expression, constant_value
from .lexer import Token, tokenize
from .lower import CompiledQuery, compile_query, compile_statement
from .parser import parse, parse_any

__all__ = [
    "BeginStatement",
    "CommitStatement",
    "CompiledQuery",
    "DeleteStatement",
    "InsertStatement",
    "RollbackStatement",
    "Scope",
    "SelectStatement",
    "SqlppError",
    "Statement",
    "Token",
    "UnknownFunctionError",
    "bind_expression",
    "compile_query",
    "compile_statement",
    "constant_value",
    "parse",
    "parse_any",
    "tokenize",
]
