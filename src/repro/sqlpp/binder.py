"""Name resolution: SQL++ AST expressions → engine expressions.

The binder walks AST expressions with an ordered *scope* of the aliases bound
so far (FROM alias, UNNEST aliases, LET names, quantifier item variables) and
produces the engine's :mod:`repro.query.expressions` objects:

* a bare identifier must name an in-scope alias (``Var``),
* a path rooted at an alias becomes ``Field(Var(alias), path)``,
* calls resolve against the shared function registry (aggregates are rejected
  here — they are legal only in the SELECT clause, which
  :mod:`repro.sqlpp.lower` handles itself),
* errors carry the exact source position and the live scope, e.g.
  ``unknown alias `g` at line 2 col 14; in scope: t, x``.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..model.errors import SqlppError
from ..model.path import FieldPath
from ..query.expressions import (
    And,
    Call,
    Compare,
    Expression,
    Field,
    FUNCTIONS,
    InList,
    Literal,
    Or,
    SomeSatisfies,
    Var,
)
from ..query.plan import AGGREGATE_FUNCTIONS
from . import ast

#: Parser comparison spellings → engine operators.
_OP_CANON = {"=": "==", "==": "==", "<>": "!=", "!=": "!=",
             "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Scope:
    """The ordered set of variables visible to an expression."""

    def __init__(self, names: Optional[List[str]] = None) -> None:
        self._names: List[str] = list(names or [])

    def __contains__(self, name: str) -> bool:
        return name in self._names

    def add(self, name: str, node: ast.Node) -> None:
        if name in self._names:
            raise SqlppError(
                f"duplicate alias `{name}` at {node.where}; "
                f"already bound by FROM/UNNEST/LET",
                node.line,
                node.column,
            )
        self._names.append(name)

    def child(self, extra: str) -> "Scope":
        """A nested scope with one more variable (quantifier items may shadow)."""
        return Scope(self._names + [extra])

    def names(self) -> List[str]:
        """The bound names, in binding order (outer scope of subqueries)."""
        return list(self._names)

    def describe(self) -> str:
        return ", ".join(self._names) if self._names else "(empty)"


def unknown_alias_error(name: str, node: ast.Node, scope: Scope) -> SqlppError:
    return SqlppError(
        f"unknown alias `{name}` at {node.where}; in scope: {scope.describe()}",
        node.line,
        node.column,
    )


def bind_expression(node: ast.ExprNode, scope: Scope) -> Expression:
    """Resolve one AST expression against ``scope`` into an engine expression.

    Raises:
        SqlppError: Unknown aliases or functions, aggregates outside SELECT,
            and non-constant array/object literals — all with positions.
    """
    if isinstance(node, ast.LiteralExpr):
        return Literal(node.value)
    if isinstance(node, ast.IdentRef):
        if node.name not in scope:
            raise unknown_alias_error(node.name, node, scope)
        return Var(node.name)
    if isinstance(node, ast.PathExpr):
        base = node.base
        if isinstance(base, ast.IdentRef):
            if base.name not in scope:
                raise unknown_alias_error(base.name, base, scope)
            return Field(Var(base.name), FieldPath(node.steps))
        return Field(bind_expression(base, scope), FieldPath(node.steps))
    if isinstance(node, (ast.ArrayExpr, ast.ObjectExpr)):
        return Literal(_constant_value(node))
    if isinstance(node, ast.CallExpr):
        return _bind_call(node, scope)
    if isinstance(node, ast.CompareExpr):
        return Compare(
            _OP_CANON[node.op],
            bind_expression(node.lhs, scope),
            bind_expression(node.rhs, scope),
        )
    if isinstance(node, ast.AndExpr):
        return And(*[bind_expression(operand, scope) for operand in node.operands])
    if isinstance(node, ast.OrExpr):
        return Or(*[bind_expression(operand, scope) for operand in node.operands])
    if isinstance(node, ast.SomeExpr):
        collection = bind_expression(node.collection, scope)
        predicate = bind_expression(node.predicate, scope.child(node.item))
        return SomeSatisfies(collection, node.item, predicate)
    if isinstance(node, ast.ExistsExpr):
        # EXISTS c ≡ "c is a non-empty collection": array_count yields NULL
        # for non-arrays and the filter semantics treat NULL as false.
        return Compare(">", Call("array_count", bind_expression(node.collection, scope)), Literal(0))
    if isinstance(node, ast.InExpr):
        return InList(
            bind_expression(node.needle, scope),
            bind_expression(node.collection, scope),
        )
    if isinstance(node, ast.SubqueryExpr):
        # Lazy import: lowering calls back into the binder for inner clauses.
        from .lower import compile_subquery

        return compile_subquery(node, scope)
    raise SqlppError(  # pragma: no cover - the parser emits no other nodes
        f"unsupported expression at {node.where}", node.line, node.column
    )


def _bind_call(node: ast.CallExpr, scope: Scope) -> Expression:
    name = node.name.lower()
    if name in AGGREGATE_FUNCTIONS:
        raise SqlppError(
            f"aggregate function {node.name.upper()} at {node.where} is only "
            f"allowed in the SELECT clause of a grouped or aggregate query",
            node.line,
            node.column,
        )
    if node.star:
        raise SqlppError(
            f"'*' argument at {node.where} is only valid in COUNT(*)",
            node.line,
            node.column,
        )
    if name not in FUNCTIONS:
        raise SqlppError(
            f"unknown function `{node.name}` at {node.where}; available "
            f"built-ins: {', '.join(sorted(FUNCTIONS))}",
            node.line,
            node.column,
        )
    return Call(name, *[bind_expression(argument, scope) for argument in node.args])


def constant_value(node: ast.ExprNode):
    """Fold a constant literal tree to its Python value (public surface).

    Used by DML execution (INSERT documents, DELETE keys) in the shell:
    non-constant elements raise :class:`SqlppError` at their exact position.
    """
    return _constant_value(node)


def _constant_value(node: ast.ExprNode):
    """Fold a constant literal tree (arrays/objects) to its Python value."""
    if isinstance(node, ast.LiteralExpr):
        return node.value
    if isinstance(node, ast.ArrayExpr):
        return [_constant_value(item) for item in node.items]
    if isinstance(node, ast.ObjectExpr):
        out: Dict[str, object] = {}
        for key, value in node.pairs:
            out[key] = _constant_value(value)
        return out
    raise SqlppError(
        f"array/object literals must be constant; found a non-literal element "
        f"at {node.where}",
        node.line,
        node.column,
    )
