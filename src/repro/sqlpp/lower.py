"""Lowering: bound SQL++ AST → the engine's fluent :class:`Query` builder.

The compiled query is a thin wrapper around the *same* ``Query`` object a
user would build by hand, so every parsed query flows unchanged through
pushdown (:mod:`repro.query.pushdown`), cost-based access-path selection
(:mod:`repro.query.optimizer`), both executors, and parallel scans.  Clause
order becomes pipeline order; GROUP BY aggregates come from the SELECT list
(as in SQL++), and a trailing PROJECT is added only when the SELECT list does
not match the grouped row shape exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import List, Optional, Tuple

from typing import Set

from ..model.errors import QueryError, SqlppError
from ..model.values import MISSING
from ..query.expressions import Expression, Subquery, Var
from ..query.plan import AGGREGATE_FUNCTIONS, Query, QueryPlan, WINDOW_FUNCTIONS
from . import ast
from .binder import Scope, bind_expression
from .parser import parse

#: Output column name of ``SELECT VALUE`` projections (internal, unwrapped).
VALUE_COLUMN_FALLBACK = "$1"


@dataclass
class CompiledQuery:
    """A parsed, bound, and lowered SQL++ statement, ready to execute.

    ``query`` is the engine's fluent builder (None for FROM-less statements,
    which evaluate without touching a datastore); ``select_value`` marks
    ``SELECT VALUE`` queries whose rows unwrap to bare values.
    """

    text: str
    statement: ast.SelectStatement
    query: Optional[Query] = None
    select_value: bool = False
    value_column: Optional[str] = None
    #: FROM-less statements: the named constant expressions to evaluate.
    constant_columns: List[Tuple[str, Expression]] = dataclass_field(
        default_factory=list
    )
    #: Output column names in SELECT order (drives subquery value shaping).
    output_columns: List[str] = dataclass_field(default_factory=list)

    # -- execution ---------------------------------------------------------------------
    def execute(
        self,
        store=None,
        executor: str = "codegen",
        pushdown: bool = True,
        optimize: Optional[bool] = None,
        batch_size: Optional[int] = None,
    ) -> list:
        """Run the query; returns rows (dicts), or bare values for SELECT VALUE."""
        if self.query is None:
            row = {
                name: _none_if_missing(expression.evaluate({}))
                for name, expression in self.constant_columns
            }
            rows = [row]
            if self.statement.limit is not None:
                rows = rows[: self.statement.limit]
        else:
            if store is None:
                raise QueryError(
                    "this query reads a dataset; pass the datastore to execute against"
                )
            rows = self.query.execute(
                store,
                executor=executor,
                pushdown=pushdown,
                optimize=optimize,
                batch_size=batch_size,
            )
        if self.select_value:
            return [row[self.value_column] for row in rows]
        return rows

    def explain(
        self,
        store=None,
        pushdown: bool = True,
        analyze: bool = False,
        executor: str = "codegen",
    ) -> str:
        """Render the plan (with costs/alternatives when a store is given)."""
        if self.query is None:
            names = ", ".join(name for name, _ in self.constant_columns)
            return f"VALUES [{names}] (no datastore access)"
        return self.query.explain(
            store, pushdown=pushdown, analyze=analyze, executor=executor
        )

    def build_plan(self, pushdown: bool = True) -> QueryPlan:
        """The logical plan (see :meth:`repro.query.plan.Query.build_plan`)."""
        if self.query is None:
            raise QueryError("FROM-less statements have no dataset plan")
        return self.query.build_plan(pushdown=pushdown)


def _none_if_missing(value):
    return None if value is MISSING else value


def compile_query(text: str) -> CompiledQuery:
    """Parse, bind, and lower one SQL++ statement.

    Raises:
        SqlppError: On any syntax or binding offence, with source positions.

    Example:
        >>> compiled = compile_query("SELECT COUNT(*) FROM d AS t WHERE t.a = 1;")
        >>> print(compiled.query.explain())
        SCAN d AS $t (fields=['a'])
          PUSHDOWN paths=[a]; predicates=[a == 1]
        FILTER Compare(Field(Var('t'), 'a') == Literal(1))
        AGGREGATE count=count(*)
        EXECUTOR codegen (fused column batches of 1024)
    """
    from ..obs import span

    with span("parse"):
        statement = parse(text)
    with span("bind"):
        return compile_statement(statement, text)


def compile_statement(
    statement: ast.SelectStatement,
    text: str = "",
    outer_names: Tuple[str, ...] = (),
) -> CompiledQuery:
    """Lower a parsed statement (see :func:`compile_query`).

    ``outer_names`` seeds the scope with the enclosing query's aliases when
    the statement is a subquery — references to them mark it as correlated.
    """
    if statement.dataset is None:
        return _compile_constant(statement, text)
    return _compile_dataset_query(statement, text, outer_names)


def compile_subquery(node: ast.SubqueryExpr, scope: Scope) -> Subquery:
    """Lower a parenthesized SELECT used as a value into a Subquery expression.

    The inner statement compiles through the normal pipeline with the outer
    aliases in scope; the names it actually references decide correlation.
    ``scalar`` marks single-aggregate subqueries whose value is the bare
    aggregate (``(SELECT MAX(u.a) FROM m AS u)``); ``column`` unwraps
    single-column non-VALUE row shapes for IN/scalar positions.
    """
    statement = node.statement
    outer = tuple(scope.names())
    compiled = compile_statement(statement, outer_names=outer)
    correlated = tuple(
        sorted(set(outer) & _statement_referenced_names(statement))
    )
    only = statement.select_items[0] if len(statement.select_items) == 1 else None
    scalar = (
        only is not None
        and not statement.group_by
        and only.window is None
        and _aggregate_name(only.expression) is not None
    )
    column = None
    if not statement.select_value and len(compiled.output_columns) == 1:
        column = compiled.output_columns[0]
    return Subquery(compiled, correlated=correlated, scalar=scalar, column=column)


def _expr_names(node: ast.ExprNode) -> Set[str]:
    """Every alias name an expression references (quantifier items excluded)."""
    if isinstance(node, ast.IdentRef):
        return {node.name}
    if isinstance(node, ast.PathExpr):
        return _expr_names(node.base)
    if isinstance(node, ast.CallExpr):
        return set().union(*[_expr_names(a) for a in node.args]) if node.args else set()
    if isinstance(node, ast.CompareExpr):
        return _expr_names(node.lhs) | _expr_names(node.rhs)
    if isinstance(node, (ast.AndExpr, ast.OrExpr)):
        return set().union(*[_expr_names(o) for o in node.operands])
    if isinstance(node, ast.SomeExpr):
        return _expr_names(node.collection) | (
            _expr_names(node.predicate) - {node.item}
        )
    if isinstance(node, ast.ExistsExpr):
        return _expr_names(node.collection)
    if isinstance(node, ast.InExpr):
        return _expr_names(node.needle) | _expr_names(node.collection)
    if isinstance(node, ast.SubqueryExpr):
        return _statement_referenced_names(node.statement)
    if isinstance(node, ast.ArrayExpr):
        return set().union(*[_expr_names(i) for i in node.items]) if node.items else set()
    if isinstance(node, ast.ObjectExpr):
        return (
            set().union(*[_expr_names(v) for _, v in node.pairs])
            if node.pairs
            else set()
        )
    return set()


def _statement_referenced_names(statement: ast.SelectStatement) -> Set[str]:
    """The free alias names of a statement: referenced minus locally bound."""
    names: Set[str] = set()
    bound: Set[str] = set()
    if statement.alias is not None:
        bound.add(statement.alias)
    for join in statement.joins:
        bound.add(join.alias)
        if join.condition is not None:
            names |= _expr_names(join.condition)
    for clause in statement.pipeline:
        if isinstance(clause, ast.UnnestClause):
            names |= _expr_names(clause.expression)
            bound.add(clause.alias)
        elif isinstance(clause, ast.LetClause):
            names |= _expr_names(clause.expression)
            bound.add(clause.name)
        else:
            names |= _expr_names(clause.predicate)
    for item in statement.select_items:
        names |= _expr_names(item.expression)
        if item.window is not None:
            for expression in item.window.partition_by:
                names |= _expr_names(expression)
            for order_item in item.window.order_by:
                names |= _expr_names(order_item.expression)
    for key in statement.group_by:
        names |= _expr_names(key.expression)
    return names - bound


# ======================================================================================
# FROM-less statements (SELECT 1;)
# ======================================================================================


def _compile_constant(statement: ast.SelectStatement, text: str) -> CompiledQuery:
    scope = Scope()
    columns: List[Tuple[str, Expression]] = []
    for index, item in enumerate(statement.select_items):
        if _aggregate_name(item.expression) is not None:
            raise SqlppError(
                f"aggregate at {item.where} requires a FROM clause",
                item.line,
                item.column,
            )
        name = _output_name(item, index)
        columns.append((name, bind_expression(item.expression, scope)))
    _reject_duplicate_names(columns, statement)
    if statement.pipeline or statement.group_by or statement.order_by:
        raise SqlppError(
            f"FROM-less SELECT supports no other clauses (at {statement.where})",
            statement.line,
            statement.column,
        )
    compiled = CompiledQuery(
        text,
        statement,
        constant_columns=columns,
        output_columns=[name for name, _ in columns],
    )
    if statement.select_value:
        compiled.select_value = True
        compiled.value_column = columns[0][0]
    return compiled


# ======================================================================================
# Dataset queries
# ======================================================================================


def _compile_dataset_query(
    statement: ast.SelectStatement,
    text: str,
    outer_names: Tuple[str, ...] = (),
) -> CompiledQuery:
    scope = Scope(list(outer_names))
    scope.add(statement.alias, statement)
    query = Query(statement.dataset, statement.alias)
    consumed = _lower_joins(statement, scope, query)
    for clause in statement.pipeline:
        if isinstance(clause, ast.UnnestClause):
            expression = bind_expression(clause.expression, scope)
            scope.add(clause.alias, clause)
            query.unnest(clause.alias, expression)
        elif isinstance(clause, ast.LetClause):
            expression = bind_expression(clause.expression, scope)
            scope.add(clause.name, clause)
            query.assign(clause.name, expression)
        elif isinstance(clause, ast.WhereClause):
            # Top-level conjuncts become separate FILTER operators, exactly
            # like chained ``.where()`` calls on the builder.  Conjuncts the
            # join lowering consumed as equi-join conditions are dropped: the
            # hash join's key match is exactly that equality.
            for conjunct in _top_level_conjuncts(clause.predicate):
                if id(conjunct) in consumed:
                    continue
                query.where(bind_expression(conjunct, scope))
    if statement.group_by and any(
        item.window is not None for item in statement.select_items
    ):
        raise SqlppError(
            f"window functions cannot be combined with GROUP BY "
            f"(at {statement.where})",
            statement.line,
            statement.column,
        )
    if statement.group_by:
        output_names = _lower_group_by(statement, scope, query)
    else:
        output_names = _lower_select(statement, scope, query)
    _lower_order_limit(statement, query, output_names)
    compiled = CompiledQuery(
        text, statement, query=query, output_columns=list(output_names)
    )
    if statement.select_value:
        compiled.select_value = True
        compiled.value_column = output_names[0]
    return compiled


def _lower_joins(statement: ast.SelectStatement, scope: Scope, query: Query):
    """Lower the FROM clause's extra sources into hash-join operators.

    Explicit ``JOIN ... ON`` conditions must be a single equality; comma
    joins take the first WHERE conjunct equating the new alias with already
    bound sources (pure cross products are unsupported).  Returns the ids of
    WHERE conjuncts consumed as join conditions.
    """
    consumed = set()
    if not statement.joins:
        return consumed
    where_conjuncts: List[ast.ExprNode] = []
    for clause in statement.pipeline:
        if isinstance(clause, ast.WhereClause):
            where_conjuncts.extend(_top_level_conjuncts(clause.predicate))
    for join in statement.joins:
        bound = set(scope.names())
        conjunct = None
        if join.condition is not None:
            conjunct = join.condition
            if not _is_equi_condition(conjunct, join.alias, bound):
                raise SqlppError(
                    f"JOIN ... ON at {join.where} must be a single equality "
                    f"comparing `{join.alias}` with already bound sources",
                    join.line,
                    join.column,
                )
        else:
            for candidate in where_conjuncts:
                if id(candidate) in consumed:
                    continue
                if _is_equi_condition(candidate, join.alias, bound):
                    conjunct = candidate
                    consumed.add(id(candidate))
                    break
            if conjunct is None:
                raise SqlppError(
                    f"comma join of `{join.dataset}` AS `{join.alias}` at "
                    f"{join.where} needs a WHERE equality linking it to the "
                    f"other sources (cross products are unsupported)",
                    join.line,
                    join.column,
                )
        build_ast, probe_ast = _split_equi_condition(conjunct, join.alias)
        probe_key = bind_expression(probe_ast, scope)
        build_key = bind_expression(build_ast, Scope([join.alias]))
        scope.add(join.alias, join)
        query.join(join.dataset, join.alias, probe_key, build_key)
    return consumed


def _is_equi_condition(
    node: ast.ExprNode, alias: str, bound: Set[str]
) -> bool:
    """Is ``node`` an equality with one side on ``alias`` and one on ``bound``?"""
    if not (isinstance(node, ast.CompareExpr) and node.op in ("=", "==")):
        return False
    lhs, rhs = _expr_names(node.lhs), _expr_names(node.rhs)
    if lhs == {alias}:
        return rhs <= bound
    if rhs == {alias}:
        return lhs <= bound
    return False


def _split_equi_condition(node: ast.CompareExpr, alias: str):
    """Split a checked equi-join condition into (build side, probe side)."""
    if _expr_names(node.lhs) == {alias}:
        return node.lhs, node.rhs
    return node.rhs, node.lhs


def _top_level_conjuncts(node: ast.ExprNode):
    if isinstance(node, ast.AndExpr):
        for operand in node.operands:
            yield from _top_level_conjuncts(operand)
    else:
        yield node


def _fingerprint(node: ast.ExprNode):
    """A position-free structural key, for matching SELECT items to group keys."""
    if isinstance(node, ast.LiteralExpr):
        return ("lit", type(node.value).__name__, node.value)
    if isinstance(node, ast.IdentRef):
        return ("var", node.name)
    if isinstance(node, ast.PathExpr):
        return ("path", _fingerprint(node.base), node.steps)
    if isinstance(node, ast.CallExpr):
        return ("call", node.name.lower(), node.star,
                tuple(_fingerprint(a) for a in node.args))
    if isinstance(node, ast.CompareExpr):
        return ("cmp", node.op, _fingerprint(node.lhs), _fingerprint(node.rhs))
    if isinstance(node, (ast.AndExpr, ast.OrExpr)):
        kind = "and" if isinstance(node, ast.AndExpr) else "or"
        return (kind, tuple(_fingerprint(o) for o in node.operands))
    if isinstance(node, ast.SomeExpr):
        return ("some", node.item, _fingerprint(node.collection),
                _fingerprint(node.predicate))
    if isinstance(node, ast.ExistsExpr):
        return ("exists", _fingerprint(node.collection))
    if isinstance(node, ast.InExpr):
        return ("in", _fingerprint(node.needle), _fingerprint(node.collection))
    if isinstance(node, ast.SubqueryExpr):
        # Subqueries never structurally match a group key; identity is enough.
        return ("subquery", id(node))
    if isinstance(node, ast.ArrayExpr):
        return ("array", tuple(_fingerprint(i) for i in node.items))
    if isinstance(node, ast.ObjectExpr):
        return ("object", tuple((k, _fingerprint(v)) for k, v in node.pairs))
    return ("other", id(node))  # pragma: no cover - all node kinds are covered


def _aggregate_name(node: ast.ExprNode) -> Optional[str]:
    """The lowercase aggregate function name when the node is a top-level call."""
    if isinstance(node, ast.CallExpr) and node.name.lower() in AGGREGATE_FUNCTIONS:
        return node.name.lower()
    return None


def _derived_name(node: ast.ExprNode) -> Optional[str]:
    """The implicit output name SQL++ gives an unaliased expression."""
    if isinstance(node, ast.IdentRef):
        return node.name
    if isinstance(node, ast.PathExpr):
        for step in reversed(node.steps):
            if step != "[*]":
                return step
    if isinstance(node, ast.CallExpr):
        name = node.name.lower()
        return "count" if (node.star and name == "count") else name
    return None


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    derived = _derived_name(item.expression)
    return derived if derived else f"${index + 1}"


def _reject_duplicate_names(columns, statement: ast.SelectStatement) -> None:
    seen = set()
    for name, _ in columns:
        if name in seen:
            raise SqlppError(
                f"duplicate output column `{name}` at {statement.where}; "
                f"disambiguate with AS",
                statement.line,
                statement.column,
            )
        seen.add(name)


def _bind_aggregate(
    node: ast.CallExpr, scope: Scope
) -> Tuple[str, Optional[Expression]]:
    """One SELECT-clause aggregate call → (function, bound argument)."""
    function = node.name.lower()
    if function == "count":
        if not node.star:
            raise SqlppError(
                f"only COUNT(*) is supported at {node.where} "
                f"(COUNT(expr) is not implemented)",
                node.line,
                node.column,
            )
        return function, None
    if node.star or len(node.args) != 1:
        raise SqlppError(
            f"{node.name.upper()} at {node.where} takes exactly one argument",
            node.line,
            node.column,
        )
    return function, bind_expression(node.args[0], scope)


def _lower_select(
    statement: ast.SelectStatement, scope: Scope, query: Query
) -> List[str]:
    """SELECT without GROUP BY: a projection or an aggregate-only query."""
    if any(item.window is not None for item in statement.select_items):
        return _lower_windows(statement, scope, query)
    aggregate_flags = [
        _aggregate_name(item.expression) is not None
        for item in statement.select_items
    ]
    if any(aggregate_flags):
        if not all(aggregate_flags):
            first_plain = statement.select_items[aggregate_flags.index(False)]
            raise SqlppError(
                f"cannot mix aggregates and plain expressions without GROUP BY "
                f"(at {first_plain.where})",
                first_plain.line,
                first_plain.column,
            )
        aggregates = []
        for index, item in enumerate(statement.select_items):
            function, argument = _bind_aggregate(item.expression, scope)
            name = item.alias or ("count" if function == "count" else function)
            aggregates.append((name, function, argument))
        _reject_duplicate_names([(n, None) for n, _, _ in aggregates], statement)
        query.aggregate(aggregates)
        return [name for name, _, _ in aggregates]
    columns = []
    for index, item in enumerate(statement.select_items):
        name = _output_name(item, index)
        columns.append((name, bind_expression(item.expression, scope)))
    _reject_duplicate_names(columns, statement)
    query.select(columns)
    return [name for name, _ in columns]


def _lower_windows(
    statement: ast.SelectStatement, scope: Scope, query: Query
) -> List[str]:
    """SELECT with OVER items: shared WINDOW operators plus a projection.

    Items with identical ``OVER`` specs share one :class:`WindowNode` (the
    partition/order work runs once); the final PROJECT reads the window
    columns by name and evaluates the plain items, which still see the
    source variables because WINDOW augments rows rather than reshaping them.
    """
    groups: dict = {}  # spec key -> [columns, partition exprs, order pairs]
    group_order: List[tuple] = []
    output: List[Tuple[str, Expression]] = []
    names: List[str] = []
    for index, item in enumerate(statement.select_items):
        name = _output_name(item, index)
        if item.window is not None:
            function, argument = _bind_window_call(item.expression, scope)
            key = _window_spec_key(item.window)
            if key not in groups:
                groups[key] = [
                    [],
                    [bind_expression(e, scope) for e in item.window.partition_by],
                    [
                        (bind_expression(oi.expression, scope), oi.descending)
                        for oi in item.window.order_by
                    ],
                ]
                group_order.append(key)
            groups[key][0].append((name, function, argument))
            output.append((name, Var(name)))
        else:
            if _aggregate_name(item.expression) is not None:
                raise SqlppError(
                    f"aggregate at {item.where} needs an OVER clause (or GROUP "
                    f"BY) when the SELECT list contains window functions",
                    item.line,
                    item.column,
                )
            output.append((name, bind_expression(item.expression, scope)))
        names.append(name)
    _reject_duplicate_names([(n, None) for n in names], statement)
    for key in group_order:
        columns, partition_by, order_by = groups[key]
        query.window(columns, partition_by=partition_by, order_by=order_by)
    query.select(output)
    return names


def _bind_window_call(
    node: ast.ExprNode, scope: Scope
) -> Tuple[str, Optional[Expression]]:
    """One ``fn(...) OVER (...)`` SELECT item → (function, bound argument)."""
    if not (
        isinstance(node, ast.CallExpr) and node.name.lower() in WINDOW_FUNCTIONS
    ):
        raise SqlppError(
            f"OVER at {node.where} requires a window-function call "
            f"({', '.join(sorted(WINDOW_FUNCTIONS))})",
            node.line,
            node.column,
        )
    function = node.name.lower()
    if function == "row_number":
        if node.args:
            raise SqlppError(
                f"ROW_NUMBER at {node.where} takes no arguments",
                node.line,
                node.column,
            )
        return function, None
    if function == "count":
        if not node.star:
            raise SqlppError(
                f"only COUNT(*) is supported at {node.where} "
                f"(COUNT(expr) is not implemented)",
                node.line,
                node.column,
            )
        return function, None
    if node.star or len(node.args) != 1:
        raise SqlppError(
            f"{node.name.upper()} at {node.where} takes exactly one argument",
            node.line,
            node.column,
        )
    return function, bind_expression(node.args[0], scope)


def _window_spec_key(spec: ast.WindowSpec):
    """A position-free key so identical OVER specs share one WindowNode."""
    return (
        tuple(_fingerprint(e) for e in spec.partition_by),
        tuple(
            (_fingerprint(oi.expression), oi.descending) for oi in spec.order_by
        ),
    )


def _lower_group_by(
    statement: ast.SelectStatement, scope: Scope, query: Query
) -> List[str]:
    """GROUP BY: keys from the GROUP BY clause, aggregates from SELECT."""
    keys: List[Tuple[str, Expression]] = []
    for key in statement.group_by:
        name = key.alias or _derived_name(key.expression)
        if not name:
            raise SqlppError(
                f"GROUP BY key at {key.where} needs an AS alias "
                f"(no name can be derived from the expression)",
                key.line,
                key.column,
            )
        keys.append((name, bind_expression(key.expression, scope)))
    key_names = [name for name, _ in keys]
    _reject_duplicate_names(keys, statement)

    key_fingerprints = {
        _fingerprint(key.expression): name
        for key, (name, _) in zip(statement.group_by, keys)
    }
    aggregates: List[Tuple[str, str, Optional[Expression]]] = []
    selected: List[Tuple[str, str]] = []  # (output name, grouped-row source name)
    for item in statement.select_items:
        if _aggregate_name(item.expression) is not None:
            function, argument = _bind_aggregate(item.expression, scope)
            name = item.alias or ("count" if function == "count" else function)
            aggregates.append((name, function, argument))
            selected.append((name, name))
        elif isinstance(item.expression, ast.IdentRef) and (
            item.expression.name in key_names
        ):
            selected.append((item.alias or item.expression.name, item.expression.name))
        elif _fingerprint(item.expression) in key_fingerprints:
            # The item repeats a grouping expression (``SELECT t.title ...
            # GROUP BY t.title``): it references that key's output column.
            source = key_fingerprints[_fingerprint(item.expression)]
            selected.append((item.alias or source, source))
        else:
            raise SqlppError(
                f"under GROUP BY, SELECT items must be group keys or aggregates; "
                f"the item at {item.where} is neither (group keys: "
                f"{', '.join(key_names)})",
                item.line,
                item.column,
            )
    _reject_duplicate_names([(n, None) for n, _ in selected], statement)
    query.group_by(key=keys, aggregates=aggregates)

    # The grouped row is keys (in GROUP BY order) then aggregates; skipping
    # the PROJECT is only transparent when the SELECT list is exactly that
    # shape — same names, same order.
    grouped_shape = key_names + [name for name, _, _ in aggregates]
    renamed = any(name != source for name, source in selected)
    if renamed or [source for _, source in selected] != grouped_shape:
        # The SELECT list does not match the grouped row shape — project it.
        from ..query.expressions import Var

        query.select([(name, Var(source)) for name, source in selected])
        return [name for name, _ in selected]
    return key_names + [name for name, _, _ in aggregates]


def _lower_order_limit(
    statement: ast.SelectStatement, query: Query, output_names: List[str]
) -> None:
    if statement.order_by:
        # SELECT VALUE still has one (derived or aliased) output column; the
        # unwrap to bare values happens after the sort, so ordering by that
        # name is fine and the unknown-column check below covers the rest.
        for item in statement.order_by:
            if item.name not in output_names:
                raise SqlppError(
                    f"ORDER BY references unknown output column `{item.name}` at "
                    f"{item.where}; output columns: {', '.join(output_names)}",
                    item.line,
                    item.column,
                )
        # The engine sorts one key per (stable) ORDERBY operator: applying the
        # minor keys first makes the leftmost written key the primary order.
        for item in reversed(statement.order_by):
            query.order_by(item.name, descending=item.descending)
    if statement.limit is not None:
        query.limit(statement.limit)
