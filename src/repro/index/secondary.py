"""Secondary indexes and the primary-key index (§4.6).

Secondary indexes map a field value to the primary keys of the records holding
it.  They are LSM-like: mutations buffer in memory and spill to immutable
sorted runs whose serialized size is accounted on the storage device (their
on-disk size is independent of the primary index's layout, as the paper
notes for Figure 12a).

Maintaining a secondary index under updates requires fetching the *old* value
of an updated record from the primary index so the stale entry can be
anti-mattered — that point lookup is the ingestion cost the paper measures in
§6.3.2.  The :class:`PrimaryKeyIndex` (a keys-only secondary index) lets the
ingestion path skip the primary-index lookup when the key has never been seen.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..model.errors import StorageError
from ..model.path import FieldPath, get_path
from ..model.values import MISSING
from ..storage.device import StorageDevice


def _serialize_run(entries: Sequence[tuple]) -> bytes:
    return json.dumps(entries, separators=(",", ":"), default=str).encode("utf-8")


class _Run:
    """One immutable sorted run of (value, pk, antimatter) entries."""

    def __init__(self, entries: List[tuple], device: StorageDevice, name: str) -> None:
        self.entries = sorted(entries, key=lambda entry: (entry[0], str(entry[1])))
        self.file = device.create_file(name)
        payload = _serialize_run(self.entries)
        page_size = device.page_size
        for start in range(0, max(len(payload), 1), page_size):
            self.file.append_page(payload[start:start + page_size])
        self._values = [entry[0] for entry in self.entries]

    def search(self, low, high) -> Iterable[tuple]:
        start = 0 if low is None else bisect.bisect_left(self._values, low)
        stop = len(self.entries) if high is None else bisect.bisect_right(self._values, high)
        return self.entries[start:stop]

    @property
    def size_bytes(self) -> int:
        return self.file.size_bytes

    def destroy(self) -> None:
        self.file.device.delete_file(self.file.name)


class SecondaryIndex:
    """A value → primary-key index over one field path."""

    def __init__(
        self,
        name: str,
        path: "FieldPath | str",
        device: StorageDevice,
        buffer_limit: int = 50_000,
    ) -> None:
        self.name = name
        self.path = FieldPath.of(path)
        self.device = device
        self.buffer_limit = buffer_limit
        self._buffer: List[tuple] = []  # (value, pk, antimatter)
        self._runs: List[_Run] = []  # newest first
        self._run_counter = 0
        self.lookups = 0

    # -- maintenance -----------------------------------------------------------------
    def extract(self, document: Optional[dict]):
        """The indexed value of a document (None when missing/unindexable)."""
        if document is None:
            return None
        value = get_path(document, self.path)
        if value is MISSING or isinstance(value, (dict, list)):
            return None
        return value

    def insert(self, value, primary_key) -> None:
        if value is None:
            return
        self._buffer.append((value, primary_key, False))
        self._maybe_spill()

    def delete(self, value, primary_key) -> None:
        if value is None:
            return
        self._buffer.append((value, primary_key, True))
        self._maybe_spill()

    def _maybe_spill(self) -> None:
        if len(self._buffer) >= self.buffer_limit:
            self.flush()

    def flush(self) -> None:
        if not self._buffer:
            return
        self._run_counter += 1
        run = _Run(self._buffer, self.device, f"{self.name}-run{self._run_counter}")
        self._runs.insert(0, run)
        self._buffer = []

    # -- search -----------------------------------------------------------------------
    def search_range(self, low=None, high=None) -> List[object]:
        """Primary keys whose indexed value lies in ``[low, high]`` (reconciled)."""
        self.lookups += 1
        decided: dict = {}
        sources: List[Iterable[tuple]] = []
        buffered = [
            entry
            for entry in reversed(self._buffer)
            if (low is None or entry[0] >= low) and (high is None or entry[0] <= high)
        ]
        sources.append(buffered)
        for run in self._runs:
            sources.append(run.search(low, high))
        for source in sources:
            for value, primary_key, antimatter in source:
                identity = (value, primary_key)
                if identity not in decided:
                    decided[identity] = antimatter
        return [
            primary_key
            for (value, primary_key), antimatter in decided.items()
            if not antimatter
        ]

    # -- statistics --------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        return sum(run.size_bytes for run in self._runs)

    @property
    def entry_count(self) -> int:
        return len(self._buffer) + sum(len(run.entries) for run in self._runs)

    def destroy(self) -> None:
        for run in self._runs:
            run.destroy()
        self._runs = []
        self._buffer = []


class PrimaryKeyIndex:
    """A keys-only index used to avoid point lookups for never-seen keys (§4.6)."""

    def __init__(self, name: str, device: StorageDevice, buffer_limit: int = 100_000) -> None:
        self.name = name
        self.device = device
        self.buffer_limit = buffer_limit
        self._keys: Set[object] = set()
        self._pending: List[object] = []
        self._runs: List[_Run] = []
        self._run_counter = 0

    def insert(self, key) -> None:
        if key in self._keys:
            return
        self._keys.add(key)
        self._pending.append(key)
        if len(self._pending) >= self.buffer_limit:
            self.flush()

    def flush(self) -> None:
        if not self._pending:
            return
        self._run_counter += 1
        run = _Run(
            [(key, key, False) for key in self._pending],
            self.device,
            f"{self.name}-run{self._run_counter}",
        )
        self._runs.insert(0, run)
        self._pending = []

    def __contains__(self, key) -> bool:
        return key in self._keys

    @property
    def size_bytes(self) -> int:
        return sum(run.size_bytes for run in self._runs)

    @property
    def key_count(self) -> int:
        return len(self._keys)

    def destroy(self) -> None:
        for run in self._runs:
            run.destroy()
        self._runs = []
        self._keys = set()
        self._pending = []
